#!/usr/bin/env python
"""The ``make typecheck`` driver.

Runs mypy with the strict ``[tool.mypy]`` configuration when mypy is
installed (the CI path, via the ``dev`` extra).  In environments
without mypy — the package has no typing-tool runtime dependency — it
falls back to the stdlib annotation gate
(:mod:`repro.lint.annotations`), which enforces the
complete-signatures half of the policy (``disallow_untyped_defs`` +
``disallow_incomplete_defs``) with nothing but ``ast``.  Either way a
non-zero exit means the typing gate failed.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: the strict modules of the typing policy (docs/development.md).
STRICT_TARGETS = [
    "src/repro/core",
    "src/repro/convolution",
    "src/repro/faults",
    "src/repro/parallel",
    "src/repro/streaming",
    "src/repro/lint",
    "src/repro/pipeline.py",
    "src/repro/cli.py",
    "src/repro/__init__.py",
]


def main() -> int:
    os.chdir(REPO)
    if importlib.util.find_spec("mypy") is not None:
        return subprocess.call(
            [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"]
        )
    print("mypy not installed; running the stdlib annotation gate instead")
    sys.path.insert(0, str(REPO / "src"))
    from repro.lint.annotations import main as annotations_main

    return annotations_main(STRICT_TARGETS)


if __name__ == "__main__":
    sys.exit(main())

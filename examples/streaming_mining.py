"""Streaming scenario: one-pass mining of data that never fits in memory.

Two one-pass modes beyond plain batch mining:

* **out-of-core batch** — the series lives in a file; a
  :class:`ChunkedReader` streams it block by block through the blocked
  correlation kernel (the paper's "external FFT" remark), producing the
  same evidence table as in-memory mining;
* **online** — symbols arrive one at a time; an :class:`OnlineMiner`
  maintains the evidence incrementally, so periodicities can be watched
  as they strengthen (the paper's data-stream motivation, and the
  incremental extension of its reference [4]).

Run:  python examples/streaming_mining.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import OnlineMiner, SpectralMiner
from repro.data import generate_periodic, apply_noise
from repro.streaming import ChunkedReader, write_symbol_file


def main() -> None:
    rng = np.random.default_rng(2004)
    series = apply_noise(
        generate_periodic(length=120_000, period=48, sigma=8, rng=rng),
        ratio=0.1,
        kinds="R",
        rng=rng,
    )

    # --- out-of-core: mine from a file without loading it wholesale ----
    with tempfile.TemporaryDirectory() as tmp:
        path = write_symbol_file(series, Path(tmp) / "stream.txt")
        size = path.stat().st_size
        reader = ChunkedReader(path, alphabet=series.alphabet, block_size=8_192)
        miner = SpectralMiner(psi=0.5, max_period=256)
        table = miner.periodicity_table_out_of_core(iter(reader), series)
        print(f"out-of-core mining of {size / 1024:.0f} KiB on disk "
              f"(8 KiB blocks): confidence at 48 = {table.confidence(48):.2f}")
        in_memory = miner.periodicity_table(series)
        print(f"identical to in-memory mining: {table == in_memory}")

    # --- online: watch the evidence build up as symbols arrive ---------
    online = OnlineMiner(series.alphabet, max_period=64)
    checkpoints = (500, 2_000, 10_000, 30_000)
    position = 0
    print("\nonline mining (confidence at the true period 48 over time):")
    for checkpoint in checkpoints:
        online.extend_codes(series.codes[position:checkpoint])
        position = checkpoint
        print(f"  after {checkpoint:>6} symbols: {online.confidence(48):.2f}")

    hits = online.periodicities(0.6)
    periods = sorted({h.period for h in hits})
    print(f"\nperiods with support >= 0.6 so far: {periods}")


if __name__ == "__main__":
    main()

"""Fleet scenario: population-level periods, significance, and warping.

Extends the paper's per-series mining to the deployment questions a
real CIMEG-style grid operator would ask:

* Which periods hold across the *fleet* of customers, not just one
  meter?  (`repro.analysis.aggregate`)
* Which detected periodicities are statistically meaningful rather
  than threshold artefacts?  (`repro.analysis.significance`)
* Is the rhythm still there when the data suffers dropped/duplicated
  readings — the insertion/deletion noise that breaks rigid positional
  matching?  (`repro.baselines.warping`)

Run:  python examples/fleet_monitoring.py
"""

import numpy as np

from repro.analysis import consensus_periods, mine_many, significant_periods
from repro.baselines import WarpingDetector
from repro.core import SpectralMiner
from repro.data import PowerConsumptionSimulator, apply_noise


def main() -> None:
    # --- fleet consensus ------------------------------------------------
    fleet = [
        PowerConsumptionSimulator(
            low_day=int(seed % 7),  # each customer has their own habit day
        ).series(np.random.default_rng(seed))
        for seed in range(8)
    ]
    tables = mine_many(fleet, psi=0.4, max_period=40)
    consensus = consensus_periods(tables, psi=0.6, min_prevalence=0.75)
    print("fleet of 8 customers, periods holding in >= 75% of them:")
    for entry in consensus[:6]:
        print(
            f"  period {entry.period:>3}: {entry.detections}/{entry.series_count} "
            f"customers, mean confidence {entry.mean_confidence:.2f}"
        )
    weekly = [c.period for c in consensus if c.period % 7 == 0]
    print(f"weekly structure is fleet-wide: {sorted(weekly)[:4]}")

    # --- significance filtering -----------------------------------------
    customer = fleet[0]
    table = SpectralMiner(psi=0.5, max_period=40).periodicity_table(customer)
    raw = table.candidate_periods(0.5)
    significant = significant_periods(customer, table, psi=0.5, alpha=1e-3)
    print(
        f"\none customer: {len(raw)} candidate periods at psi=0.5, "
        f"{len(significant)} survive the binomial null test: "
        f"{significant[:8]}"
    )

    # --- warped verification under sensor faults -------------------------
    rng = np.random.default_rng(99)
    faulty = apply_noise(customer, 0.15, "I-D", rng)  # dropped + duplicated days
    rigid = SpectralMiner(max_period=10).periodicity_table(faulty).confidence(7)
    warped = WarpingDetector(band=3).confidence(faulty, 7)
    print(
        f"\nafter 15% dropped/duplicated readings: rigid confidence at "
        f"period 7 = {rigid:.2f}, warped confidence = {warped:.2f}"
    )
    print("-> the weekly rhythm is still observable once local drift is allowed")


if __name__ == "__main__":
    main()

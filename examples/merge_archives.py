"""Archive scenario: merge-mine monthly chunks without re-reading data.

A store keeps hourly transaction archives by month.  Mining the whole
history monolithically means re-reading every archive; merge mining
(after the paper's reference [4]) mines each archive once, exchanges
only the compact hit-set structures, and produces *exactly* the
monolithic result — here verified side by side.

Run:  python examples/merge_archives.py
"""

import numpy as np

from repro.baselines import MaxSubpatternMiner, MergeMiner
from repro.core import SymbolSequence
from repro.data import RetailTransactionsSimulator

PERIOD = 24
MONTHS = 5
DAYS_PER_MONTH = 30


def main() -> None:
    rng = np.random.default_rng(2004)
    history = RetailTransactionsSimulator(days=MONTHS * DAYS_PER_MONTH).series(rng)
    chunk_hours = DAYS_PER_MONTH * 24
    archives = [
        history[m * chunk_hours : (m + 1) * chunk_hours] for m in range(MONTHS)
    ]
    print(f"{MONTHS} monthly archives of {chunk_hours} hours each")

    merged = MergeMiner(min_confidence=0.5, max_arity=4).merge_mine(
        archives, PERIOD
    )
    monolithic = MaxSubpatternMiner(min_confidence=0.5, max_arity=4).mine(
        history, PERIOD
    )
    identical = {(p.slots, round(p.support, 9)) for p in merged} == {
        (p.slots, round(p.support, 9)) for p in monolithic
    }
    print(f"\nmerged result identical to monolithic mining: {identical}")
    print(f"patterns found: {len(merged)}")

    print("\nstrongest daily patterns (from the merged archives):")
    for pattern in merged[:5]:
        print(
            f"  {pattern.to_string(history.alphabet)}  "
            f"support {pattern.support:.2f}"
        )

    # What each archive contributes: the per-chunk trees are tiny
    # compared to the raw data they summarise.
    miner = MaxSubpatternMiner(min_confidence=0.5)
    tree = miner.build_tree(archives[0], PERIOD)
    print(
        f"\none archive = {archives[0].length} symbols; its exchanged "
        f"hit-set tree holds {tree.node_count} nodes"
    )


if __name__ == "__main__":
    main()

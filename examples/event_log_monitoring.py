"""Event-log scenario: finding periodic jobs in a noisy event stream.

The paper's second data model (Sect. 2.1) is a log of nominal event
types, e.g. from network monitoring.  This example plants a heartbeat
(every 60 slots) and a flaky poller (every 15 slots, 90% reliable) into
background traffic, then:

* mines them out with the obscure-patterns miner — periods discovered,
  phases located, reliabilities estimated by the support;
* runs the Ma-Hellerstein inter-arrival baseline on the same log and on
  the paper's adversarial example (occurrences at 0, 4, 5, 7, 10 whose
  true period 5 never appears as an adjacent gap) to show why
  adjacent-gap detection misses valid periods.

Run:  python examples/event_log_monitoring.py
"""

import numpy as np

from repro import SpectralMiner, SymbolSequence
from repro.baselines import MaHellerstein
from repro.data import EventLogSimulator, PlantedEvent


def main() -> None:
    rng = np.random.default_rng(2004)
    simulator = EventLogSimulator(
        length=6000,
        planted=(
            PlantedEvent("H", period=60, phase=0, reliability=0.98),
            PlantedEvent("B", period=15, phase=7, reliability=0.90),
        ),
    )
    log = simulator.series(rng)
    print(f"event log: n={log.length} slots, alphabet {log.alphabet.symbols}")

    table = SpectralMiner(psi=0.5, max_period=200).periodicity_table(log)
    hits = [
        h for h in table.periodicities(0.7)
        if str(h.symbol(table.alphabet)) in ("H", "B")
    ]
    # A true period resurfaces at every multiple (harmonics); report each
    # planted event at its *base* (smallest detected) period.
    base = {}
    for hit in hits:
        symbol = str(hit.symbol(table.alphabet))
        if symbol not in base or hit.period < base[symbol].period:
            base[symbol] = hit
    print("\nobscure-patterns miner, psi=0.70 (base periods):")
    for symbol, hit in sorted(base.items()):
        harmonics = sorted({h.period for h in hits
                            if str(h.symbol(table.alphabet)) == symbol})
        print(
            f"  event {symbol!r}: period {hit.period:>3}, phase {hit.position:>2}, "
            f"support {hit.support:.2f}  (also at multiples {harmonics[1:4]}...)"
        )

    # The planted jobs are found at their base periods with the right
    # phases; the supports estimate the planted reliabilities (an H beat
    # survives a pair only if both consecutive occurrences fired).
    print("\n(planted: H every 60 @ phase 0, 98% reliable; "
          "B every 15 @ phase 7, 90% reliable)")

    baseline = MaHellerstein(confidence=0.99)
    flagged = {c.period for c in baseline.candidates(log)}
    print(f"\nMa-Hellerstein flags gap values: {sorted(flagged)[:10]}")

    # The paper's Sect. 1.1 example: period 5 hides from adjacent gaps.
    tricky = ["x"] * 12
    for position in (0, 4, 5, 7, 10):
        tricky[position] = "s"
    tricky_series = SymbolSequence.from_symbols(tricky)
    s_code = tricky_series.alphabet.code("s")
    gaps = MaHellerstein().adjacent_gaps(tricky_series, s_code)
    print(
        f"\npaper's example (s at 0, 4, 5, 7, 10): adjacent gaps {gaps.tolist()} "
        "— the underlying period 5 is never examined by the baseline,"
    )
    tricky_table = SpectralMiner().periodicity_table(tricky_series)
    f2_at_5 = tricky_table.f2(5, s_code, 0)
    print(f"while the miner's evidence at period 5 counts F2 = {f2_at_5} "
          "consecutive matches (positions 0->5->10).")


if __name__ == "__main__":
    main()

"""Quickstart: mine obscure periodic patterns from a symbol series.

Walks the paper's own running example (the series ``abcabbabcb``)
through the public API: build a series, mine it without specifying any
period, and read back the discovered periods, symbol periodicities, and
patterns.  Also shows that the exact convolution miner (the paper's
algorithm, big-integer witnesses included) and the scalable spectral
miner return identical evidence.

Run:  python examples/quickstart.py
"""

from repro import ConvolutionMiner, SpectralMiner, SymbolSequence, mine
from repro.core import decode_witness

PSI = 2 / 3  # the periodicity threshold used in the paper's Sect. 2 examples


def main() -> None:
    series = SymbolSequence.from_string("abcabbabcb")
    print(f"series: {series.to_string()}   (n={series.length}, sigma={series.sigma})")

    # One call mines everything: the period is *discovered*, not given.
    result = mine(series, psi=PSI)
    print(f"\ncandidate periods at psi={PSI:.2f}: {list(result.candidate_periods)}")

    print("\nsymbol periodicities (Definition 1):")
    for hit in result.periodicities:
        symbol = hit.symbol(result.alphabet)
        print(
            f"  symbol {symbol!r} is periodic with period {hit.period} "
            f"at position {hit.position}  (support {hit.support:.2f} "
            f"= F2 {hit.f2} / {hit.pairs} pairs)"
        )

    print("\nperiodic patterns (Definitions 2-3), period 3:")
    for pattern in result.patterns_for(3):
        print(f"  {pattern.to_string(result.alphabet)}   support {pattern.support:.2f}")

    # Under the hood: the paper's convolution produces witness powers of
    # two; each one decodes to a single symbol match.
    witnesses = ConvolutionMiner().witness_sets(series)
    print(f"\nwitness set W_3 = {sorted(witnesses[3].tolist())} (paper: {{18, 16, 9, 7}})")
    for w in sorted(witnesses[3].tolist()):
        decoded = decode_witness(w, series.length, series.sigma, period=3)
        symbol = series.alphabet.symbol(decoded.symbol_code)
        print(
            f"  2^{w:<2} -> symbol {symbol!r} matched at positions "
            f"{decoded.earlier_index} and {decoded.earlier_index + 3} "
            f"(pattern position {decoded.position})"
        )

    # Both miners produce the same evidence table.
    exact = ConvolutionMiner().periodicity_table(series)
    spectral = SpectralMiner().periodicity_table(series)
    print(f"\nexact miner == spectral miner: {exact == spectral}")


if __name__ == "__main__":
    main()

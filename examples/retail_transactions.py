"""Retail scenario: daily/weekly rhythms and an obscure DST period.

Recreates the paper's Wal-Mart use case: 15 months of hourly transaction
counts, discretized at the paper's thresholds (0 tx/h = very low, then
200-transaction bands), mined with no period supplied.  The expected
periods — 24 hours (daily) and 168 hours (weekly) — surface on their
own, and with daylight-saving enabled the miner also finds the obscure
off-by-one-hour periods that the paper traced to "the daylight savings
hour" (its famous 3961-hour period).

Run:  python examples/retail_transactions.py
"""

import numpy as np

from repro import SpectralMiner
from repro.data import RetailTransactionsSimulator

LEVEL_MEANING = {
    "a": "zero transactions",
    "b": "< 200 tx/hour",
    "c": "200-400 tx/hour",
    "d": "400-600 tx/hour",
    "e": "> 600 tx/hour",
}


def main() -> None:
    rng = np.random.default_rng(2004)
    simulator = RetailTransactionsSimulator(days=456, dst=True)
    series = simulator.series(rng)
    print(f"15 months of hourly transactions: n={series.length} hours")

    miner = SpectralMiner(psi=0.4, max_period=400)
    table = miner.periodicity_table(series)

    print("\nperiod confidences (min threshold that still detects):")
    for period, label in ((24, "daily"), (168, "weekly"), (48, "2-day"), (23, "none")):
        print(f"  period {period:>3} ({label:<6}): {table.confidence(period):.2f}")

    periods = table.candidate_periods(0.6, min_pairs=2)
    daily = [p for p in periods if p % 24 == 0]
    print(f"\ncandidate periods at psi=0.60: {len(periods)}; "
          f"multiples of 24 among them: {daily[:6]}...")

    # The paper's obscure-period finding: DST shifts the day profile by
    # one hour for half the year, so shifts of the form 24k +/- 1 that
    # span the change-over align the two regimes.
    off_by_one = [
        p for p in table.candidate_periods(0.5, min_pairs=2)
        if p % 24 in (1, 23) and p > 24
    ]
    print(f"obscure off-by-one-hour periods (DST artefact): {off_by_one[:8]}")

    print("\nhourly habits (period 24, psi=0.80):")
    for hit in table.periodicities(0.8, period=24):
        level = str(hit.symbol(table.alphabet))
        print(
            f"  {LEVEL_MEANING[level]:<18} at hour {hit.position:>2} "
            f"for {hit.support * 100:.0f}% of the days"
        )


if __name__ == "__main__":
    main()

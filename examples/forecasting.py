"""Forecasting scenario: predicting consumption from mined periodicity.

The paper's very first sentence motivates periodicity mining "as a tool
for forecasting and predicting the future behavior of time series
data".  This example closes that loop on the CIMEG-like power data:

* fit a :class:`PeriodicForecaster` on eleven months of daily levels,
  letting it *discover* the conditioning period;
* predict the final month and score against the honest baseline
  (always predict the most common level);
* show the per-day predictive distributions for the next week, which
  expose the bimodal "thrifty day" the miner found in the data.

Run:  python examples/forecasting.py
"""

import numpy as np

from repro.analysis import PeriodicForecaster, evaluate_forecaster
from repro.data import PowerConsumptionSimulator

LEVELS = "abcde"
WEEKDAY = ("1st", "2nd", "3rd", "4th", "5th", "6th", "7th")


def main() -> None:
    rng = np.random.default_rng(2004)
    series = PowerConsumptionSimulator(days=365).series(rng)
    horizon = 28  # hold out four weeks

    evaluation = evaluate_forecaster(series, horizon=horizon, max_period=40)
    print(
        f"hold-out accuracy over the last {horizon} days: "
        f"{evaluation.accuracy:.2f} vs mode baseline "
        f"{evaluation.baseline_accuracy:.2f} (lift {evaluation.lift:+.2f})"
    )

    forecaster = PeriodicForecaster(max_period=40).fit(series[: 365 - horizon])
    print(f"\ndiscovered conditioning period: {forecaster.period} days")

    print("\nnext week's most likely levels and their probabilities:")
    probabilities = forecaster.probabilities(7)
    predictions = forecaster.predict(7)
    for day, (symbol, distribution) in enumerate(zip(predictions, probabilities)):
        top = float(distribution.max())
        runner_up = LEVELS[int(np.argsort(distribution)[-2])]
        print(
            f"  {WEEKDAY[(365 - horizon + day) % 7]} day of week: level "
            f"{symbol!r} (p={top:.2f}, runner-up {runner_up!r})"
        )

    # The thrifty-day position is visibly bimodal: its distribution puts
    # real mass on both 'a' (habit active) and the mid levels (lapsed).
    entropy = -(probabilities * np.log(np.maximum(probabilities, 1e-12))).sum(axis=1)
    print(
        f"\nmost uncertain upcoming day (the bimodal habit): "
        f"{WEEKDAY[int((365 - horizon + int(entropy.argmax())) % 7)]} "
        f"(entropy {entropy.max():.2f} nats)"
    )


if __name__ == "__main__":
    main()

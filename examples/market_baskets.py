"""Market-basket scenario: rules that only hold at certain hours.

The cyclic-association-rules strand of related work ([17] in the paper)
asks a different question over the same retail domain: not "when is the
hourly volume periodic" but "which *purchase rules* hold cyclically".
This example plants two such rules into synthetic transaction data —
"coffee implies pastry in morning units", "bread implies milk every
sixth unit" — and recovers them, cycles and all, with the
:class:`repro.rules.CyclicRuleMiner`.

Run:  python examples/market_baskets.py
"""

import numpy as np

from repro.rules import (
    CyclicRuleMiner,
    MarketBasketSimulator,
    PlantedCycle,
    association_rules,
    frequent_itemsets,
)


def main() -> None:
    simulator = MarketBasketSimulator(
        units=72,
        transactions_per_unit=150,
        planted=(
            PlantedCycle(("coffee",), "pastry", period=4, offset=1),
            PlantedCycle(("bread",), "milk", period=6, offset=0, strength=0.9),
        ),
        anchor_rate=0.5,
    )
    units = simulator.generate(np.random.default_rng(2004))
    print(f"{len(units)} time units, ~{len(units[0])} transactions each")

    # A single unit's classic Apriori view:
    morning = units[1]  # unit 1 = offset 1 mod 4: the coffee->pastry hour
    itemsets = frequent_itemsets(morning, min_support=0.25)
    rules = association_rules(itemsets, len(morning), min_confidence=0.7)
    print("\nrules holding in unit 1 (a planted 'morning' unit):")
    for rule in rules[:4]:
        print(f"  {rule.render()}")

    # The cyclic view across every unit:
    miner = CyclicRuleMiner(min_support=0.25, min_confidence=0.7, max_period=12)
    cyclic = miner.mine(units)
    print("\ncyclic rules across all units (minimal cycles):")
    for rule in cyclic[:6]:
        print(f"  {rule.render()}")

    planted = {(4, 1), (6, 0)}
    recovered = {
        (c.period, c.offset) for rule in cyclic for c in rule.cycles
    }
    print(f"\nplanted cycles {sorted(planted)} recovered: {planted <= recovered}")


if __name__ == "__main__":
    main()

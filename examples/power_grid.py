"""Power-grid scenario: weekly consumption habits of one customer.

Recreates the paper's CIMEG use case end to end: simulate a year of
daily power consumption, discretize it with the paper's five expert
levels ("very low is less than 6000 Watts/Day, and each level has a
2000 Watts range"), mine with *no* period supplied, and interpret the
findings in domain terms — exactly the reading the paper gives its
"(a,3)" pattern: "less than 6000 Watts/Day occur in the 4th day of the
week for 50% of the days".

Run:  python examples/power_grid.py
"""

import numpy as np

from repro import mine
from repro.data import PowerConsumptionSimulator

LEVEL_MEANING = {
    "a": "very low (< 6000 W/day)",
    "b": "low (6000-8000 W/day)",
    "c": "medium (8000-10000 W/day)",
    "d": "high (10000-12000 W/day)",
    "e": "very high (> 12000 W/day)",
}

WEEKDAY = ("1st", "2nd", "3rd", "4th", "5th", "6th", "7th")


def main() -> None:
    rng = np.random.default_rng(2004)
    simulator = PowerConsumptionSimulator(days=365)
    watts = simulator.values(rng)
    series = simulator.discretizer.discretize(watts)
    print(
        f"one year of daily consumption: n={series.length} days, "
        f"mean {watts.mean():.0f} W/day, levels a-e"
    )

    # Mine without any period hint; let the algorithm discover the week.
    # Patterns are materialised for the base week only: at multiples of 7
    # every weekly position repeats, so Definition 3's Cartesian space is
    # astronomically large there and adds nothing over the period-7 view.
    result = mine(series, psi=0.5, max_period=60, periods=[7], max_arity=5)
    periods = list(result.candidate_periods)
    print(f"\ncandidate periods at psi=0.50: {periods}")
    weekly = [p for p in periods if p % 7 == 0]
    print(f"weekly structure discovered: {weekly} (all multiples of 7: "
          f"{all(p % 7 == 0 for p in weekly) and bool(weekly)})")

    print("\nweekly habits (period 7, single-symbol patterns):")
    for hit in result.table.periodicities(0.5, period=7):
        level = str(hit.symbol(result.alphabet))
        print(
            f"  {LEVEL_MEANING[level]:<28} on the {WEEKDAY[hit.position]} day "
            f"of the week for {hit.support * 100:.0f}% of the weeks"
        )

    print("\ncomposite weekly patterns (period 7, top by support):")
    multi = [p for p in result.patterns_for(7) if p.arity >= 2]
    for pattern in sorted(multi, key=lambda p: (-p.arity, -p.support))[:5]:
        print(
            f"  {pattern.to_string(result.alphabet)}   "
            f"support {pattern.support * 100:.0f}%"
        )

    # The habitual thrifty day is a *partial* periodicity: strong enough
    # to mine at moderate thresholds, absent at strict ones.
    for psi in (0.8, 0.6, 0.4):
        hits = result.table.periodicities(psi, period=7)
        has_low = any(
            str(h.symbol(result.alphabet)) == "a" for h in hits
        )
        print(
            f"\npsi={psi:.1f}: {len(hits)} weekly periodicities; "
            f"very-low habit visible: {has_low}"
        )


if __name__ == "__main__":
    main()

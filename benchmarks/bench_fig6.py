"""Fig. 6 — resilience of the miner to noise.

Regenerates both panels (uniform P=25 and normal P=32) across all seven
noise combinations and ratios 0-50%, and asserts the paper's findings:
replacement noise degrades gracefully (still detectable at a 40%
threshold under 50% noise), while insertion/deletion mixes collapse to
the 5-10% confidence regime.
"""

import pytest

from repro.experiments import Fig6Config, ascii_plot, format_series, run_fig6

from _bench_utils import record

PANEL_A = Fig6Config(
    distribution="uniform", period=25, runs=2, length=20_000,
    ratios=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
)
PANEL_B = Fig6Config(
    distribution="normal", period=32, runs=2, length=20_000,
    ratios=(0.0, 0.1, 0.2, 0.3, 0.4, 0.5),
)


def _check_panel(series):
    # Replacement: graceful degradation, monotone-ish, tolerable at 50%.
    replacement = series["R"]
    assert replacement[0.0] == pytest.approx(1.0)
    assert replacement[0.5] > 0.2  # "tolerate 50% replacement noise at 40%
    #                                 periodicity threshold" (approx band)
    assert replacement[0.1] > replacement[0.5]
    # Insertion/deletion: collapse fast but stay in the small-threshold
    # regime the paper calls "5% to 10% ... not uncommon".
    for combo in ("I", "D", "I-D", "R-I-D"):
        assert series[combo][0.3] < 0.3
        assert series[combo][0.3] > 0.01
    # Replacement always beats the shifting noise kinds.
    for ratio in (0.2, 0.4):
        assert replacement[ratio] > series["I-D"][ratio]


@pytest.mark.benchmark(group="fig6")
def test_fig6a_uniform_p25(benchmark):
    series = benchmark.pedantic(lambda: run_fig6(PANEL_A), rounds=1, iterations=1)
    record(
        "fig6a",
        format_series(series, "noise ratio", "conf",
                      title="Fig. 6(a) Uniform, Period=25: resilience to noise"),
    )
    record(
        "fig6a_chart",
        ascii_plot(series, y_min=0.0, y_max=1.0,
                   title="Fig. 6(a) (confidence vs noise ratio)"),
    )
    _check_panel(series)


@pytest.mark.benchmark(group="fig6")
def test_fig6b_normal_p32(benchmark):
    series = benchmark.pedantic(lambda: run_fig6(PANEL_B), rounds=1, iterations=1)
    record(
        "fig6b",
        format_series(series, "noise ratio", "conf",
                      title="Fig. 6(b) Normal, Period=32: resilience to noise"),
    )
    _check_panel(series)

"""Fig. 5 — time behaviour versus series length.

Times the periodicity-detection phases of the miner and the
periodic-trends baseline on doubling retail-data sizes and asserts the
paper's findings: the miner wins at every size, and both algorithms grow
near-linearly on the log-log plot (doubling n far less than quadruples
either time).

The two per-size kernels are additionally registered as individual
pytest-benchmark measurements so the harness records calibrated timings
for the largest size.
"""

import numpy as np
import pytest

from repro.baselines import PeriodicTrends
from repro.core import SpectralMiner
from repro.data import RetailTransactionsSimulator
from repro.experiments import Fig5Config, format_table, run_fig5
from repro.experiments.fig5 import _retail_series

from _bench_utils import record

SWEEP = Fig5Config(
    sizes=(8_192, 16_384, 32_768, 65_536, 131_072),
    max_period=512,
    repeats=3,
    sketch_dimensions=16,
)

_LARGEST = 131_072


@pytest.fixture(scope="module")
def large_series():
    return _retail_series(_LARGEST, np.random.default_rng(2004))


@pytest.mark.benchmark(group="fig5-sweep")
def test_fig5_sweep(benchmark):
    rows = benchmark.pedantic(lambda: run_fig5(SWEEP), rounds=1, iterations=1)
    record(
        "fig5",
        format_table(
            ["n (symbols)", "miner (s)", "periodic trends (s)", "speedup"],
            [
                [r.size, f"{r.miner_seconds:.4f}", f"{r.trends_seconds:.4f}",
                 f"{r.trends_seconds / max(r.miner_seconds, 1e-12):.1f}x"]
                for r in rows
            ],
            title="Fig. 5: time behaviour (doubling sizes, best of repeats)",
        ),
    )
    for row in rows:
        assert row.miner_seconds < row.trends_seconds, (
            f"miner must outperform trends at n={row.size}"
        )
    # Near-linear growth: 16x more data costs well under 16 * 4 = 64x time.
    first, last = rows[0], rows[-1]
    scale = last.size / first.size
    assert last.miner_seconds < 4 * scale * first.miner_seconds
    assert last.trends_seconds < 4 * scale * first.trends_seconds


@pytest.mark.benchmark(group="fig5-kernels")
def test_fig5_kernel_miner(benchmark, large_series):
    miner = SpectralMiner(psi=0.7, max_period=512)
    pairs = benchmark(lambda: miner.candidate_period_symbols(large_series, 0.7))
    assert any(p % 24 == 0 for p, _ in pairs)


@pytest.mark.benchmark(group="fig5-kernels")
def test_fig5_kernel_trends(benchmark, large_series):
    trends = PeriodicTrends(
        method="sketch", dimensions=16, rng=np.random.default_rng(7)
    )
    result = benchmark(lambda: trends.analyse(large_series, max_shift=512))
    assert len(result.ranked_periods) == 512

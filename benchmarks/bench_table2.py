"""Table 2 — periodic single-symbol patterns at the expected periods.

Regenerates the period-24 (retail) and period-7 (power) single-symbol
pattern tables per threshold and asserts the paper's structure: strict
nesting across thresholds, very-low overnight retail patterns at high
thresholds, and the power data's habitual-day pattern in the 50-60%
band (the paper's "(a,3)" finding).
"""

import pytest

from repro.experiments import Table2Config, format_table, run_table2

from _bench_utils import record

CONFIG = Table2Config(
    retail_days=456,
    power_days=365,
    thresholds=(95, 90, 80, 70, 60, 50),
)


@pytest.mark.benchmark(group="table2")
def test_table2(benchmark):
    results = benchmark.pedantic(lambda: run_table2(CONFIG), rounds=1, iterations=1)

    blocks = []
    for name, label, period in (
        ("retail", "Wal-Mart-like", CONFIG.retail_period),
        ("power", "CIMEG-like", CONFIG.power_period),
    ):
        rows = results[name]
        blocks.append(
            format_table(
                ["threshold %", "# patterns", "patterns (symbol, position)"],
                [[r.threshold_percent, r.pattern_count,
                  " ".join(f"({s},{l})" for s, l in r.sample_patterns) or "-"]
                 for r in rows],
                title=f"Table 2 ({label} data, period={period})",
            )
        )
    record("table2", "\n\n".join(blocks))

    # Nesting: pattern counts grow as the threshold drops.
    for rows in results.values():
        by_threshold = {r.threshold_percent: r.pattern_count for r in rows}
        thresholds = sorted(by_threshold, reverse=True)
        counts = [by_threshold[t] for t in thresholds]
        assert counts == sorted(counts)

    retail = {r.threshold_percent: r for r in results["retail"]}
    power = {r.threshold_percent: r for r in results["power"]}

    # Overnight zero-transaction habits surface by the 80% threshold.
    symbols_80 = {s for s, _ in retail[80].sample_patterns}
    assert "a" in symbols_80

    # The power data's habitual very-low day appears by 50% but not at 80%
    # (a *partial* periodicity, the paper's "(a,3)"-style pattern).
    low_at_50 = {(s, l) for s, l in power[50].sample_patterns if s == "a"}
    low_at_80 = {(s, l) for s, l in power[80].sample_patterns if s == "a"}
    assert low_at_50
    assert not low_at_80

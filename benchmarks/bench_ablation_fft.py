"""Ablation — convolution engine choice.

DESIGN.md keeps three interchangeable convolution engines: the O(n^2)
direct kernel, the from-scratch radix-2 FFT, and numpy's C FFT.  This
bench times all three on the autocorrelation the miners actually run
and documents the crossovers (direct loses quickly; the pure-Python
transform tracks numpy's asymptotics at a constant-factor cost).
"""

import numpy as np
import pytest

from repro.convolution import correlate_direct, correlate_fft

N = 4_096


@pytest.fixture(scope="module")
def indicator():
    rng = np.random.default_rng(2004)
    return (rng.integers(0, 5, size=N) == 0).astype(np.float64)


@pytest.mark.benchmark(group="ablation-fft")
def test_direct_correlation(benchmark, indicator):
    out = benchmark(lambda: correlate_direct(indicator, indicator))
    assert out[0] == pytest.approx(indicator.sum())


@pytest.mark.benchmark(group="ablation-fft")
def test_scratch_fft_correlation(benchmark, indicator):
    out = benchmark(lambda: correlate_fft(indicator, use_numpy=False))
    assert np.rint(out[0]) == indicator.sum()


@pytest.mark.benchmark(group="ablation-fft")
def test_numpy_fft_correlation(benchmark, indicator):
    out = benchmark(lambda: correlate_fft(indicator, use_numpy=True))
    assert np.rint(out[0]) == indicator.sum()


@pytest.mark.benchmark(group="ablation-fft")
def test_engines_agree(benchmark, indicator):
    def run():
        return (
            correlate_direct(indicator, indicator),
            correlate_fft(indicator, use_numpy=False),
            correlate_fft(indicator, use_numpy=True),
        )

    direct, scratch, fast = benchmark.pedantic(run, rounds=1, iterations=1)
    np.testing.assert_allclose(direct, scratch, atol=1e-6)
    np.testing.assert_allclose(direct, fast, atol=1e-6)

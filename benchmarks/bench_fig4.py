"""Fig. 4 — correctness of the periodic-trends baseline.

Regenerates both panels with the Indyk et al. algorithm and asserts the
paper's finding: the normalised-rank confidence is biased toward larger
periods (it rises along P, 2P, ...).  An extra ablation shows the bias
vanishing when distances are normalised per aligned position.
"""

import numpy as np
import pytest

from repro.baselines import PeriodicTrends
from repro.data import apply_noise, generate_periodic
from repro.experiments import (
    Fig4Config,
    ascii_plot,
    format_series,
    format_table,
    run_fig4,
)

from _bench_utils import record

INERRANT = Fig4Config(runs=2, length=6_000, multiples=(1, 2, 3, 5, 10, 20, 40, 60))
NOISY = Fig4Config(
    runs=2, length=6_000, multiples=(1, 2, 3, 5, 10, 20, 40, 60),
    noisy=True, noise_ratio=0.15, method="exact",
)


@pytest.mark.benchmark(group="fig4")
def test_fig4a_inerrant(benchmark):
    series = benchmark.pedantic(lambda: run_fig4(INERRANT), rounds=1, iterations=1)
    record(
        "fig4a",
        format_series(series, "multiple", "conf",
                      title="Fig. 4(a) Inerrant Data: periodic trends correctness"),
    )
    # On perfectly periodic data every embedded multiple has distance ~0,
    # so all confidences sit near the top of the ranking.
    for curve in series.values():
        assert min(curve.values()) > 0.9


@pytest.mark.benchmark(group="fig4")
def test_fig4b_noisy_shows_large_period_bias(benchmark):
    series = benchmark.pedantic(lambda: run_fig4(NOISY), rounds=1, iterations=1)
    record(
        "fig4b",
        format_series(series, "multiple", "conf",
                      title="Fig. 4(b) Noisy Data: periodic trends correctness"),
    )
    record(
        "fig4b_chart",
        ascii_plot(series, title="Fig. 4(b) Noisy Data (bias toward large periods)"),
    )
    for curve in series.values():
        multiples = sorted(curve)
        assert curve[multiples[-1]] > curve[multiples[0]], (
            "the trends ranking must favour larger periods"
        )


@pytest.mark.benchmark(group="fig4")
def test_fig4_ablation_normalized_ranking(benchmark):
    """Dividing D(p) by (n - p) removes the large-period bias."""

    def run():
        rng = np.random.default_rng(2004)
        series = apply_noise(
            generate_periodic(6_000, 25, 10, rng=rng), 0.15, "R", rng
        )
        raw = PeriodicTrends(method="exact").analyse(series)
        normalized = PeriodicTrends(method="exact", normalize=True).analyse(series)
        return raw, normalized

    raw, normalized = benchmark.pedantic(run, rounds=1, iterations=1)
    n, base, far = 6_000, 25, 25 * 60
    rows = [
        ["raw (paper)", f"{raw.distances[base]:.0f}", f"{raw.distances[far]:.0f}",
         raw.rank(base), raw.rank(far)],
        ["normalized",
         f"{raw.distances[base] / (n - base):.4f}",
         f"{raw.distances[far] / (n - far):.4f}",
         normalized.rank(base), normalized.rank(far)],
    ]
    record(
        "fig4_ablation_normalize",
        format_table(
            ["ranking", "score(P=25)", "score(60P)", "rank(P)", "rank(60P)"],
            rows,
            title="Fig. 4 ablation: raw vs normalised trend objective",
        ),
    )
    # The raw objective is systematically smaller at the far multiple
    # (fewer aligned positions), which is the source of the bias...
    assert raw.distances[far] < 0.85 * raw.distances[base]
    assert raw.rank(far) < raw.rank(base)
    # ...while the per-position mismatch rates are statistically equal,
    # so normalisation levels the multiples instead of favouring one.
    rate_base = raw.distances[base] / (n - base)
    rate_far = raw.distances[far] / (n - far)
    assert abs(rate_base - rate_far) < 0.05 * rate_base

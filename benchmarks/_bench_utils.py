"""Shared helpers for the benchmark harness.

Each bench regenerates one table or figure of the paper and registers
the rendered text here; the conftest prints everything in the terminal
summary (so it lands in ``bench_output.txt``) and mirrors it to
``benchmarks/results/`` for inspection.
"""

from __future__ import annotations

from pathlib import Path

#: name -> rendered text, printed by pytest_terminal_summary.
RESULTS: dict[str, str] = {}

RESULTS_DIR = Path(__file__).parent / "results"


def record(name: str, text: str) -> None:
    """Register a rendered experiment output and persist it to disk."""
    RESULTS[name] = text
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

"""Ablation — warping versus rigid comparison under shifting noise.

Fig. 6 shows the paper's miner collapsing under insertion/deletion
noise: one shift puts every later position off phase.  The warping
extension (the authors' follow-up direction, implemented in
``repro.baselines.warping``) replaces the rigid positional match by a
banded edit distance.  This bench replays the Fig. 6 noise sweep for
both detectors at the embedded period and records the contrast: the
exact miner's confidence collapses with any insertion/deletion share
while the warped confidence degrades like replacement noise does.
"""

import numpy as np
import pytest

from repro.baselines import AsynchronousMiner, WarpingDetector
from repro.core import PeriodicPattern, SpectralMiner
from repro.data import apply_noise, generate_periodic
from repro.experiments import format_table

from _bench_utils import record

LENGTH = 10_000
PERIOD = 25
SIGMA = 10
RATIOS = (0.0, 0.1, 0.2, 0.3)


def _async_score(series) -> float:
    """Fraction of ideal repetitions the asynchronous miner recovers."""
    miner = AsynchronousMiner(min_repetitions=3, max_disturbance=3 * PERIOD)
    best = 0
    for symbol in range(series.sigma):
        pattern = PeriodicPattern.single(PERIOD, 0, symbol)
        found = miner.longest_valid_subsequence(series, pattern)
        if found is not None:
            best = max(best, found.repetitions)
    return best / (series.length / PERIOD)


def _sweep():
    rng = np.random.default_rng(2004)
    rows = []
    for ratio in RATIOS:
        series = generate_periodic(LENGTH, PERIOD, SIGMA, rng=rng)
        if ratio:
            series = apply_noise(series, ratio, "I-D", rng)
        exact = SpectralMiner(max_period=PERIOD).periodicity_table(series)
        warped = WarpingDetector()
        rows.append(
            (
                ratio,
                exact.confidence(PERIOD),
                warped.confidence(series, PERIOD),
            )
        )
    return rows


def _shift_events(event_count: int):
    """A clean periodic series broken by isolated insertion events."""
    rng = np.random.default_rng(2004 + event_count)
    series = generate_periodic(LENGTH, PERIOD, SIGMA, rng=rng)
    codes = series.codes.copy()
    for position in rng.choice(LENGTH - 100, size=event_count, replace=False):
        codes = np.insert(codes, int(position), int(rng.integers(SIGMA)))
    from repro.core import SymbolSequence

    return SymbolSequence.from_codes(codes[:LENGTH], series.alphabet)


@pytest.mark.benchmark(group="ablation-warp")
def test_warping_resilience_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    record(
        "ablation_warp",
        format_table(
            ["I-D noise ratio", "exact miner conf", "warped conf"],
            [[f"{r:.1f}", f"{e:.3f}", f"{w:.3f}"] for r, e, w in rows],
            title=(
                "Ablation (dense noise): rigid vs warped comparison under "
                "insertion/deletion noise"
            ),
        ),
    )
    clean = rows[0]
    assert clean[1] == pytest.approx(1.0)
    assert clean[2] > 0.99
    for ratio, exact_conf, warped_conf in rows[1:]:
        assert exact_conf < 0.45, f"rigid matching should collapse at {ratio}"
        assert warped_conf > exact_conf + 0.25, (
            f"warping should dominate at ratio {ratio}"
        )
    # Warped confidence degrades gracefully, like replacement noise does
    # for the rigid miner in Fig. 6.
    assert rows[-1][2] > 0.45


@pytest.mark.benchmark(group="ablation-warp")
def test_asynchronous_recovers_isolated_shifts(benchmark):
    """The complementary regime: a handful of isolated insertion events.

    Dense I-D noise corrupts the inside of every period instance, which
    only warping absorbs; *isolated* shifts leave long exact runs intact,
    which asynchronous stitching recovers almost entirely while rigid
    global alignment degrades with every event.
    """

    def run():
        rows = []
        for events in (0, 2, 4, 8):
            series = _shift_events(events)
            exact = SpectralMiner(max_period=PERIOD).periodicity_table(series)
            rows.append((events, exact.confidence(PERIOD), _async_score(series)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        "ablation_async",
        format_table(
            ["shift events", "exact miner conf", "async repetitions"],
            [[e, f"{c:.3f}", f"{a:.3f}"] for e, c, a in rows],
            title="Ablation (isolated shifts): rigid vs asynchronous stitching",
        ),
    )
    assert rows[0][1] == pytest.approx(1.0)
    for events, exact_conf, async_score in rows[1:]:
        assert async_score > 0.9, (
            f"asynchronous mining should recover isolated shifts ({events})"
        )
        assert async_score > exact_conf, "stitching must beat rigid alignment"
    # Rigid confidence decays as events accumulate.
    assert rows[-1][1] < rows[0][1]


@pytest.mark.benchmark(group="ablation-warp")
def test_warped_confidence_kernel(benchmark):
    rng = np.random.default_rng(7)
    series = apply_noise(
        generate_periodic(LENGTH, PERIOD, SIGMA, rng=rng), 0.2, "I-D", rng
    )
    detector = WarpingDetector()
    confidence = benchmark(lambda: detector.confidence(series, PERIOD))
    assert confidence > 0.5

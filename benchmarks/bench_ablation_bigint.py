"""Ablation — cost of the exact (paper-faithful) miner.

DESIGN.md documents why the library ships two miners: the paper's exact
convolution carries Theta(n)-bit witnesses, so its real cost grows
super-linearly however it is evaluated.  This bench times the exact
miner's two engines against the spectral miner on the same series and
asserts they remain interchangeable in output while diverging in cost.
"""

import numpy as np
import pytest

from repro.core import Alphabet, ConvolutionMiner, SpectralMiner, SymbolSequence

N = 1_200
SIGMA = 4
MAX_PERIOD = 100


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(2004)
    return SymbolSequence.from_codes(
        rng.integers(0, SIGMA, size=N).astype(np.int64), Alphabet.of_size(SIGMA)
    )


@pytest.mark.benchmark(group="ablation-bigint")
def test_exact_bitand_engine(benchmark, series):
    miner = ConvolutionMiner(engine="bitand", max_period=MAX_PERIOD)
    table = benchmark(lambda: miner.periodicity_table(series))
    assert table.n == N


@pytest.mark.benchmark(group="ablation-bigint")
def test_exact_kronecker_engine(benchmark, series):
    miner = ConvolutionMiner(engine="kronecker", max_period=MAX_PERIOD)
    table = benchmark.pedantic(
        lambda: miner.periodicity_table(series), rounds=1, iterations=1
    )
    assert table.n == N


@pytest.mark.benchmark(group="ablation-bigint")
def test_exact_wordarray_engine(benchmark, series):
    miner = ConvolutionMiner(engine="wordarray", max_period=MAX_PERIOD)
    table = benchmark(lambda: miner.periodicity_table(series))
    assert table.n == N


@pytest.mark.benchmark(group="ablation-bigint")
def test_spectral_miner_same_series(benchmark, series):
    miner = SpectralMiner(max_period=MAX_PERIOD)
    table = benchmark(lambda: miner.periodicity_table(series))
    assert table.n == N


@pytest.mark.benchmark(group="ablation-bigint")
def test_all_three_identical_output(benchmark, series):
    def run():
        return (
            ConvolutionMiner(engine="bitand", max_period=MAX_PERIOD).periodicity_table(series),
            ConvolutionMiner(engine="kronecker", max_period=MAX_PERIOD).periodicity_table(series),
            SpectralMiner(max_period=MAX_PERIOD).periodicity_table(series),
        )

    bitand, kronecker, spectral = benchmark.pedantic(run, rounds=1, iterations=1)
    assert bitand == kronecker == spectral

"""Streaming-layer performance: online, sliding-window, out-of-core.

Not a paper artifact — operational benchmarks for the streaming
extensions, so regressions in the chunked ingestion paths are caught
(`bench_streaming_regress.py` covers chunked-vs-per-symbol speedup).
Each bench also re-asserts the layer's defining equivalence, because a
fast wrong answer is worse than none.
"""

import numpy as np
import pytest

from repro.core import Alphabet, SpectralMiner, SymbolSequence
from repro.streaming import ChunkedReader, OnlineMiner, SlidingWindowMiner

N = 20_000
SIGMA = 8
MAX_PERIOD = 128


@pytest.fixture(scope="module")
def codes():
    rng = np.random.default_rng(2004)
    return rng.integers(0, SIGMA, size=N).astype(np.int64)


@pytest.fixture(scope="module")
def series(codes):
    return SymbolSequence.from_codes(codes, Alphabet.of_size(SIGMA))


@pytest.mark.benchmark(group="streaming")
def test_online_miner_throughput(benchmark, codes, series):
    def run():
        miner = OnlineMiner(series.alphabet, max_period=MAX_PERIOD)
        miner.extend_codes(codes)
        return miner

    miner = benchmark.pedantic(run, rounds=2, iterations=1)
    assert miner.table() == SpectralMiner(max_period=MAX_PERIOD).periodicity_table(
        series
    )


@pytest.mark.benchmark(group="streaming")
def test_sliding_window_throughput(benchmark, codes, series):
    window = 2_048

    def run():
        miner = SlidingWindowMiner(
            series.alphabet, max_period=MAX_PERIOD, window=window
        )
        miner.extend_codes(codes)
        return miner

    miner = benchmark.pedantic(run, rounds=2, iterations=1)
    tail = series[N - window :]
    assert miner.table() == SpectralMiner(max_period=MAX_PERIOD).periodicity_table(
        tail
    )


@pytest.mark.benchmark(group="streaming")
def test_out_of_core_mining(benchmark, series):
    miner = SpectralMiner(max_period=MAX_PERIOD)

    def run():
        reader = ChunkedReader(series, block_size=2_048)
        return miner.periodicity_table_out_of_core(iter(reader), series)

    streamed = benchmark(run)
    assert streamed == miner.periodicity_table(series)


@pytest.mark.benchmark(group="streaming")
def test_in_memory_reference(benchmark, series):
    miner = SpectralMiner(max_period=MAX_PERIOD)
    table = benchmark(lambda: miner.periodicity_table(series))
    assert table.n == N

"""Fig. 3 — correctness of the obscure periodic patterns miner.

Regenerates both panels (inerrant and noisy synthetic data, the four
U/N x P25/P32 workloads) and asserts the paper's findings: confidence 1
everywhere on inerrant data; high and period-unbiased confidence under
noise.
"""

import pytest

from repro.experiments import Fig3Config, ascii_plot, format_series, run_fig3

from _bench_utils import record

INERRANT = Fig3Config(runs=2, length=30_000, multiples=(1, 2, 3, 4, 5))
NOISY = Fig3Config(
    runs=2, length=30_000, multiples=(1, 2, 3, 4, 5),
    noisy=True, noise_ratio=0.15, noise_kinds="R",
)


@pytest.mark.benchmark(group="fig3")
def test_fig3a_inerrant(benchmark):
    series = benchmark.pedantic(lambda: run_fig3(INERRANT), rounds=1, iterations=1)
    record(
        "fig3a",
        format_series(series, "multiple", "conf",
                      title="Fig. 3(a) Inerrant Data: miner correctness"),
    )
    for curve in series.values():
        for confidence in curve.values():
            assert confidence == pytest.approx(1.0)


@pytest.mark.benchmark(group="fig3")
def test_fig3b_noisy(benchmark):
    series = benchmark.pedantic(lambda: run_fig3(NOISY), rounds=1, iterations=1)
    record(
        "fig3b",
        format_series(series, "multiple", "conf",
                      title="Fig. 3(b) Noisy Data: miner correctness"),
    )
    record(
        "fig3b_chart",
        ascii_plot(series, y_min=0.0, y_max=1.0,
                   title="Fig. 3(b) Noisy Data (confidence vs multiple)"),
    )
    for curve in series.values():
        values = list(curve.values())
        assert all(v > 0.6 for v in values), "confidence must stay high"
        assert max(values) - min(values) < 0.1, "must be unbiased in the period"

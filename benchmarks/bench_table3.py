"""Table 3 — multi-symbol periodic patterns of the retail data.

Regenerates the paper's final table: period-24 patterns of the
Wal-Mart-like data at a 35% threshold.  Asserts the published shape:
long patterns dominated by the overnight very-low run plus daytime
level bands, all meeting the threshold, with supports well above it for
the overnight cores.
"""

import pytest

from repro.experiments import (
    Table3Config,
    format_table,
    run_table3,
    select_display_patterns,
)

from _bench_utils import record

CONFIG = Table3Config(psi=0.35, period=24, retail_days=456, max_arity=10, top=12)


@pytest.mark.benchmark(group="table3")
def test_table3(benchmark):
    result = benchmark.pedantic(lambda: run_table3(CONFIG), rounds=1, iterations=1)
    shown = select_display_patterns(result, CONFIG.period, CONFIG.top)
    record(
        "table3",
        format_table(
            ["periodic pattern", "support (%)"],
            [[p.to_string(result.alphabet), f"{p.support * 100:.1f}"] for p in shown],
            title="Table 3 (Wal-Mart-like data, period=24, threshold=35%)",
        ),
    )

    assert shown, "the table must contain multi-symbol patterns"
    for pattern in result.patterns:
        assert pattern.support >= CONFIG.psi - 1e-9

    # The deepest patterns fix the overnight very-low hours ('a' at some
    # of hours 0-5/22-23), the signature shape of the paper's table.
    deepest = shown[0]
    overnight = {0, 1, 2, 3, 4, 5, 22, 23}
    a_code = result.alphabet.code("a")
    fixed_overnight = {
        l for l, k in deepest.items if k == a_code and l in overnight
    }
    assert len(fixed_overnight) >= 3
    assert deepest.arity >= 5

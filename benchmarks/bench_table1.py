"""Table 1 — candidate period values per threshold, both datasets.

Regenerates the table on the Wal-Mart-like and CIMEG-like simulators and
asserts the paper's structure: threshold nesting, the expected daily /
weekly periods at their thresholds, and (with DST on) obscure
off-by-one-hour periods — the reproduction's analogue of the paper's
3961-hour daylight-saving period.
"""

import pytest

from repro.experiments import Table1Config, format_table, run_table1

from _bench_utils import record

CONFIG = Table1Config(
    retail_days=456,
    power_days=365,
    retail_max_period=512,
    dst=True,
    thresholds=(100, 90, 80, 70, 60, 50, 40, 30, 20, 10),
)


@pytest.mark.benchmark(group="table1")
def test_table1(benchmark):
    results = benchmark.pedantic(lambda: run_table1(CONFIG), rounds=1, iterations=1)

    blocks = []
    for name, label in (("retail", "Wal-Mart-like"), ("power", "CIMEG-like")):
        rows = results[name]
        blocks.append(
            format_table(
                ["threshold %", "# periods", "some periods"],
                [[r.threshold_percent, r.period_count,
                  ", ".join(map(str, r.sample_periods)) or "-"] for r in rows],
                title=f"Table 1 ({label} data): candidate period values",
            )
        )
    record("table1", "\n\n".join(blocks))

    # Nesting: lower thresholds admit at least as many periods.
    for rows in results.values():
        counts = [r.period_count for r in rows]
        assert counts == sorted(counts)

    retail = {r.threshold_percent: r for r in results["retail"]}
    power = {r.threshold_percent: r for r in results["power"]}

    # The daily period is found at a moderate threshold (paper: <= 70%).
    assert 24 in retail[70].sample_periods or retail[70].period_count > 0
    retail_periods_50 = set(retail[50].sample_periods)
    assert retail_periods_50, "retail data must yield candidate periods"

    # The weekly power period is found at <= 60% (paper's band).
    assert 7 in power[60].sample_periods
    # Sample periods of perfect-threshold rows are multiples of 7.
    assert all(p % 7 == 0 for p in power[90].sample_periods if p > 2)

"""Perf-regression bench for the sharded parallel witness engine.

Standalone (not pytest-benchmark) so CI can run it via
``make bench-regress``::

    PYTHONPATH=src python benchmarks/bench_parallel.py --out BENCH_PR1.json

Times the exact-engine configurations on one synthetic series and emits
a JSON trajectory file — ``engine, n, sigma, workers, max_period,
seconds`` per record plus the headline parallel-vs-wordarray speedup —
so future PRs have a baseline to compare against.  Before timing, the
engines are cross-checked for table equality on a truncated period
range; a bench that drifts from correctness is worse than no bench.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _bench_utils import record

from repro.core import Alphabet, ConvolutionMiner, SymbolSequence
from repro.core.spectral_miner import SpectralMiner


def make_series(n: int, sigma: int, seed: int = 2004) -> SymbolSequence:
    """Uniform i.i.d. series — worst case for witness sparsity."""
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, sigma, size=n).astype(np.int64)
    return SymbolSequence.from_codes(codes, Alphabet.of_size(sigma))


def timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run(args: argparse.Namespace) -> dict:
    series = make_series(args.n, args.sigma)
    workers = args.workers or os.cpu_count() or 1

    check_cap = min(args.max_period, 200)
    reference = ConvolutionMiner(
        engine="wordarray", max_period=check_cap
    ).periodicity_table(series)
    candidate = ConvolutionMiner(
        engine="parallel", max_period=check_cap, workers=workers
    ).periodicity_table(series)
    if reference != candidate:
        raise SystemExit("engine mismatch: parallel != wordarray — not timing a bug")

    configs = [
        ("wordarray", None),
        ("parallel", 1),
        ("parallel", workers),
        ("spectral", None),
    ]
    records = []
    for engine, engine_workers in configs:
        if engine == "spectral":
            miner = SpectralMiner(max_period=args.max_period)
        else:
            miner = ConvolutionMiner(
                engine=engine, max_period=args.max_period, workers=engine_workers
            )
        seconds = timed(lambda: miner.periodicity_table(series))
        records.append(
            {
                "engine": engine,
                "n": args.n,
                "sigma": args.sigma,
                "workers": engine_workers,
                "max_period": args.max_period,
                "seconds": round(seconds, 4),
            }
        )
        print(
            f"{engine:>10} workers={engine_workers or '-':>2}  "
            f"{seconds:8.3f}s",
            flush=True,
        )

    by_key = {(r["engine"], r["workers"]): r["seconds"] for r in records}
    speedup = by_key[("wordarray", None)] / by_key[("parallel", workers)]
    return {
        "bench": "bench_parallel",
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "records": records,
        "speedup_parallel_vs_wordarray": round(speedup, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=200_000)
    parser.add_argument("--sigma", type=int, default=4)
    parser.add_argument("--max-period", type=int, default=1_000)
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel-engine worker cap (default: CPU count)")
    parser.add_argument("--out", type=Path, default=Path("BENCH_PR1.json"))
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run (n=20k, 100 periods)")
    args = parser.parse_args(argv)
    if args.quick:
        args.n, args.max_period = 20_000, 100

    payload = run(args)
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    summary = (
        f"n={args.n} sigma={args.sigma} max_period={args.max_period}: "
        f"parallel is {payload['speedup_parallel_vs_wordarray']}x wordarray "
        f"({payload['cpu_count']} CPU)"
    )
    record("bench_parallel", summary)
    print(f"\n{summary}\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Perf-regression bench for the vectorized chunked streaming layer.

Standalone (not pytest-benchmark) so CI can run it via
``make bench-stream``::

    PYTHONPATH=src python benchmarks/bench_streaming_regress.py --out BENCH_PR3.json

Times the chunked ingestion path of :class:`OnlineMiner` and
:class:`SlidingWindowMiner` against a faithful replica of the pre-PR
per-symbol update loop (the ``O(max_period)`` numpy gather plus
per-match dict bumps that used to live in ``append_code``), on the
``bench_streaming.py`` configuration (n=20k, sigma=8, max_period=128),
and emits a JSON trajectory file with the per-miner speedups.  Before
timing, every path is cross-checked for table equality against the
batch spectral miner — a bench that drifts from correctness is worse
than no bench.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _bench_utils import record

from repro.core import Alphabet, SymbolSequence
from repro.core.periodicity import PeriodicityTable
from repro.core.spectral_miner import SpectralMiner
from repro.streaming import OnlineMiner, SlidingWindowMiner


class BaselineOnline:
    """The pre-PR per-symbol online update, kept verbatim as the yardstick."""

    def __init__(self, alphabet: Alphabet, max_period: int):
        self._alphabet = alphabet
        self._max_period = max_period
        self._ring = np.full(max_period, -1, dtype=np.int64)
        self._n = 0
        self._counts: dict[int, dict[tuple[int, int], int]] = {}

    def extend_codes(self, codes: np.ndarray) -> None:
        for code in codes:
            self.append_code(int(code))

    def append_code(self, code: int) -> None:
        j = self._n
        window = min(self._max_period, j)
        if window:
            lags = np.arange(1, window + 1)
            slots = (j - lags) % self._max_period
            matching = lags[self._ring[slots] == code]
            for p in matching:
                p = int(p)
                key = (code, (j - p) % p)
                table = self._counts.setdefault(p, {})
                table[key] = table.get(key, 0) + 1
        self._ring[j % self._max_period] = code
        self._n += 1

    def table(self) -> PeriodicityTable:
        return PeriodicityTable(
            self._n, self._alphabet, {p: dict(t) for p, t in self._counts.items()}
        )


class BaselineWindow:
    """The pre-PR per-symbol sliding-window update (add + evict loops)."""

    def __init__(self, alphabet: Alphabet, max_period: int, window: int):
        self._alphabet = alphabet
        self._max_period = max_period
        self._window = window
        self._buffer = np.full(window, -1, dtype=np.int64)
        self._n = 0
        self._counts: dict[int, dict[tuple[int, int], int]] = {}

    def extend_codes(self, codes: np.ndarray) -> None:
        for code in codes:
            self.append_code(int(code))

    def append_code(self, code: int) -> None:
        if self._n >= self._window:
            self._evict(self._n - self._window)
        j = self._n
        start = max(j - self._window, 0)
        reach = min(self._max_period, j - start)
        if reach:
            lags = np.arange(1, reach + 1)
            slots = (j - lags) % self._window
            matching = lags[self._buffer[slots] == code]
            for p in matching:
                p = int(p)
                self._bump(p, code, (j - p) % p, +1)
        self._buffer[j % self._window] = code
        self._n += 1

    def _evict(self, index: int) -> None:
        code = int(self._buffer[index % self._window])
        reach = min(self._max_period, self._n - 1 - index)
        if reach < 1:
            return
        lags = np.arange(1, reach + 1)
        slots = (index + lags) % self._window
        matching = lags[self._buffer[slots] == code]
        for p in matching:
            p = int(p)
            self._bump(p, code, index % p, -1)

    def _bump(self, period: int, code: int, residue: int, delta: int) -> None:
        table = self._counts.setdefault(period, {})
        key = (code, residue)
        value = table.get(key, 0) + delta
        if value:
            table[key] = value
        else:
            table.pop(key, None)

    def table(self) -> PeriodicityTable:
        start = max(self._n - self._window, 0)
        rotated: dict[int, dict[tuple[int, int], int]] = {}
        for p, counts in self._counts.items():
            shift = start % p
            rotated[p] = {
                (code, (residue - shift) % p): value
                for (code, residue), value in counts.items()
            }
        return PeriodicityTable(
            min(self._n, self._window), self._alphabet, rotated
        )


def timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run(args: argparse.Namespace) -> dict:
    rng = np.random.default_rng(2004)
    codes = rng.integers(0, args.sigma, size=args.n).astype(np.int64)
    alphabet = Alphabet.of_size(args.sigma)
    series = SymbolSequence.from_codes(codes, alphabet)
    spectral = SpectralMiner(max_period=args.max_period)

    # -- correctness gates first ------------------------------------------------
    online = OnlineMiner(alphabet, max_period=args.max_period)
    online.extend_codes(codes)
    batch = spectral.periodicity_table(series)
    if online.table() != batch:
        raise SystemExit("online table != spectral batch table — not timing a bug")

    window_miner = SlidingWindowMiner(
        alphabet, max_period=args.max_period, window=args.window
    )
    window_miner.extend_codes(codes)
    tail = SymbolSequence.from_codes(codes[-args.window :], alphabet)
    if window_miner.table() != spectral.periodicity_table(tail):
        raise SystemExit("window table != batch on window — not timing a bug")

    baseline_online = BaselineOnline(alphabet, args.max_period)
    baseline_online.extend_codes(codes[: min(args.n, 2_000)])
    check = OnlineMiner(alphabet, max_period=args.max_period)
    check.extend_codes(codes[: min(args.n, 2_000)])
    if baseline_online.table() != check.table():
        raise SystemExit("baseline replica drifted from the real miner")

    # -- timings ----------------------------------------------------------------
    configs = [
        (
            "online",
            "per-symbol",
            lambda: BaselineOnline(alphabet, args.max_period).extend_codes(codes),
        ),
        (
            "online",
            "chunked",
            lambda: OnlineMiner(alphabet, max_period=args.max_period).extend_codes(
                codes
            ),
        ),
        (
            "window",
            "per-symbol",
            lambda: BaselineWindow(
                alphabet, args.max_period, args.window
            ).extend_codes(codes),
        ),
        (
            "window",
            "chunked",
            lambda: SlidingWindowMiner(
                alphabet, max_period=args.max_period, window=args.window
            ).extend_codes(codes),
        ),
    ]
    records = []
    for miner, path, fn in configs:
        best = min(timed(fn) for _ in range(args.rounds))
        records.append(
            {
                "miner": miner,
                "path": path,
                "n": args.n,
                "sigma": args.sigma,
                "max_period": args.max_period,
                "window": args.window if miner == "window" else None,
                "seconds": round(best, 4),
                "symbols_per_second": round(args.n / best),
            }
        )
        print(
            f"{miner:>7} {path:>11}  {best:8.3f}s  "
            f"({args.n / best:>12,.0f} sym/s)",
            flush=True,
        )

    by_key = {(r["miner"], r["path"]): r["seconds"] for r in records}
    online_speedup = by_key[("online", "per-symbol")] / by_key[("online", "chunked")]
    window_speedup = by_key[("window", "per-symbol")] / by_key[("window", "chunked")]
    return {
        "bench": "bench_streaming_regress",
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "records": records,
        "speedup_online_chunked_vs_per_symbol": round(online_speedup, 2),
        "speedup_window_chunked_vs_per_symbol": round(window_speedup, 2),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=20_000)
    parser.add_argument("--sigma", type=int, default=8)
    parser.add_argument("--max-period", type=int, default=128)
    parser.add_argument("--window", type=int, default=2_048)
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per config (best is kept)")
    parser.add_argument("--out", type=Path, default=Path("BENCH_PR3.json"))
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run (n=4k, max_period=64)")
    args = parser.parse_args(argv)
    if args.quick:
        args.n, args.max_period, args.window, args.rounds = 4_000, 64, 512, 1

    payload = run(args)
    args.out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    summary = (
        f"n={args.n} sigma={args.sigma} max_period={args.max_period} "
        f"window={args.window}: chunked online is "
        f"{payload['speedup_online_chunked_vs_per_symbol']}x per-symbol, "
        f"chunked window is "
        f"{payload['speedup_window_chunked_vs_per_symbol']}x per-symbol"
    )
    record("bench_streaming_regress", summary)
    print(f"\n{summary}\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

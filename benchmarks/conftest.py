"""Benchmark-session plumbing: print every regenerated table/figure."""

from _bench_utils import RESULTS


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not RESULTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 78)
    terminalreporter.write_line("Regenerated paper tables and figures")
    terminalreporter.write_line("=" * 78)
    for name in sorted(RESULTS):
        terminalreporter.write_line("")
        for line in RESULTS[name].splitlines():
            terminalreporter.write_line(line)

"""Ablation — the spectral miner's match-count pruning.

DESIGN.md calls out the two-stage split of the spectral miner: the FFT
stage bounds every per-position count by the aggregate ``M_k(p)``, so
cells that cannot reach the threshold never pay the residue pass.  The
bound bites hardest when periodic symbols are *sparse* — exactly the
event-log workload (a heartbeat every 60 slots matches itself at few
shifts) — so that is the data mined here, with pruning off (full table)
versus on (psi = 0.7).  A final check re-asserts that pruning never
changes what is mined at the threshold.
"""

import numpy as np
import pytest

from repro.core import SpectralMiner
from repro.data import EventLogSimulator
from repro.experiments import format_table

from _bench_utils import record

PSI = 0.7
MAX_PERIOD = 512


@pytest.fixture(scope="module")
def series():
    # A wide, sparse alphabet: thirty background event types plus the two
    # planted jobs.  Every symbol is rare, so the M_k(p) bound prunes the
    # bulk of the (period, symbol) grid.
    simulator = EventLogSimulator(
        length=20_000,
        background_events=tuple(f"e{i}" for i in range(30)),
    )
    return simulator.series(np.random.default_rng(2004))


@pytest.mark.benchmark(group="ablation-prune")
def test_unpruned_full_table(benchmark, series):
    miner = SpectralMiner(psi=None, max_period=MAX_PERIOD)
    table = benchmark(lambda: miner.periodicity_table(series))
    assert table.confidence(60) > 0.8


@pytest.mark.benchmark(group="ablation-prune")
def test_pruned_table(benchmark, series):
    miner = SpectralMiner(psi=PSI, max_period=MAX_PERIOD)
    table = benchmark(lambda: miner.periodicity_table(series))
    assert table.confidence(60) > 0.8


@pytest.mark.benchmark(group="ablation-prune")
def test_pruning_is_lossless_at_threshold(benchmark, series):
    def run():
        full = SpectralMiner(psi=None, max_period=MAX_PERIOD).periodicity_table(series)
        pruned = SpectralMiner(psi=PSI, max_period=MAX_PERIOD).periodicity_table(series)
        return full, pruned

    full, pruned = benchmark.pedantic(run, rounds=1, iterations=1)
    full_hits = {
        (h.period, h.position, h.symbol_code, h.f2)
        for h in full.periodicities(PSI)
    }
    pruned_hits = {
        (h.period, h.position, h.symbol_code, h.f2)
        for h in pruned.periodicities(PSI)
    }
    assert full_hits == pruned_hits
    kept_full = sum(len(full.counts_for(p)) for p in full.periods)
    kept_pruned = sum(len(pruned.counts_for(p)) for p in pruned.periods)
    record(
        "ablation_prune",
        format_table(
            ["variant", "table cells"],
            [["unpruned (psi=None)", kept_full], [f"pruned (psi={PSI})", kept_pruned]],
            title="Ablation: spectral-stage pruning keeps the table sparse",
        ),
    )
    assert kept_pruned < kept_full

"""Tests for repro.data.noise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SymbolSequence
from repro.data import (
    apply_noise,
    delete_noise,
    generate_periodic,
    insert_noise,
    parse_noise_spec,
    replace_noise,
)

from conftest import series_strategy


class TestParseSpec:
    def test_single_letters(self):
        assert parse_noise_spec("R") == ("replacement",)
        assert parse_noise_spec("i") == ("insertion",)

    def test_combinations(self):
        assert parse_noise_spec("R-I-D") == ("replacement", "insertion", "deletion")
        assert parse_noise_spec("I D") == ("insertion", "deletion")
        assert parse_noise_spec("r,d") == ("replacement", "deletion")

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            parse_noise_spec("R-X")

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            parse_noise_spec("R-R")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_noise_spec("")


class TestReplacement:
    def test_changes_requested_fraction(self, rng):
        series = generate_periodic(1000, 10, 5, rng=rng)
        noisy = replace_noise(series, 0.3, rng)
        assert noisy.length == series.length
        changed = int(np.count_nonzero(noisy.codes != series.codes))
        assert changed == 300  # replacement always picks a different symbol

    def test_zero_ratio_identity(self, rng):
        series = generate_periodic(100, 10, 5, rng=rng)
        assert replace_noise(series, 0.0, rng) == series

    def test_requires_two_symbols(self, rng):
        series = SymbolSequence.from_string("aaaa")
        with pytest.raises(ValueError):
            replace_noise(series, 0.5, rng)

    def test_rejects_bad_ratio(self, rng):
        series = SymbolSequence.from_string("abab")
        with pytest.raises(ValueError):
            replace_noise(series, 1.5, rng)


class TestInsertion:
    def test_grows_length(self, rng):
        series = generate_periodic(200, 10, 4, rng=rng)
        noisy = insert_noise(series, 0.25, rng)
        assert noisy.length == 250

    def test_zero_ratio_identity(self, rng):
        series = generate_periodic(50, 5, 3, rng=rng)
        assert insert_noise(series, 0.0, rng) == series

    def test_preserves_subsequence(self, rng):
        series = generate_periodic(100, 10, 4, rng=rng)
        noisy = insert_noise(series, 0.2, rng)
        # The original must be a subsequence of the noisy series.
        it = iter(noisy.codes.tolist())
        assert all(code in it for code in series.codes.tolist())


class TestDeletion:
    def test_shrinks_length(self, rng):
        series = generate_periodic(200, 10, 4, rng=rng)
        noisy = delete_noise(series, 0.25, rng)
        assert noisy.length == 150

    def test_result_is_subsequence(self, rng):
        series = generate_periodic(100, 10, 4, rng=rng)
        noisy = delete_noise(series, 0.3, rng)
        it = iter(series.codes.tolist())
        assert all(code in it for code in noisy.codes.tolist())

    def test_cannot_delete_everything(self, rng):
        series = SymbolSequence.from_string("ab")
        with pytest.raises(ValueError):
            delete_noise(series, 1.0, rng)


class TestApplyNoise:
    def test_splits_ratio_equally(self, rng):
        series = generate_periodic(900, 9, 4, rng=rng)
        noisy = apply_noise(series, 0.3, "I-D", rng)
        # 15% inserted, then 15% of the grown series deleted:
        # n * (1 + r/2) * (1 - r/2) = n * (1 - r^2/4).
        expected = series.length * (1 - 0.15 * 0.15)
        assert abs(noisy.length - expected) <= 2

    def test_accepts_tuple_kinds(self, rng):
        series = generate_periodic(100, 10, 4, rng=rng)
        noisy = apply_noise(series, 0.2, ("replacement",), rng)
        assert noisy.length == series.length

    def test_rejects_unknown_tuple_kind(self, rng):
        series = generate_periodic(100, 10, 4, rng=rng)
        with pytest.raises(ValueError):
            apply_noise(series, 0.2, ("gaussian",), rng)

    def test_rejects_duplicate_tuple_kinds(self, rng):
        series = generate_periodic(100, 10, 4, rng=rng)
        with pytest.raises(ValueError):
            apply_noise(series, 0.2, ("deletion", "deletion"), rng)

    def test_zero_ratio_identity_all_combos(self, rng):
        series = generate_periodic(60, 6, 3, rng=rng)
        for combo in ("R", "I", "D", "R-I", "R-D", "I-D", "R-I-D"):
            assert apply_noise(series, 0.0, combo, rng) == series

    def test_alphabet_preserved(self, rng):
        series = generate_periodic(100, 10, 4, rng=rng)
        noisy = apply_noise(series, 0.4, "R-I-D", rng)
        assert noisy.alphabet == series.alphabet

    @settings(max_examples=25, deadline=None)
    @given(series=series_strategy(min_size=10, max_size=50), ratio=st.floats(0.0, 0.4))
    def test_replacement_preserves_length_property(self, series, ratio):
        if series.sigma < 2:
            return
        rng = np.random.default_rng(0)
        assert replace_noise(series, ratio, rng).length == series.length

    def test_replacement_noise_degrades_confidence_gracefully(self, rng):
        """Fig. 6's qualitative claim in miniature."""
        from repro.core import SpectralMiner

        series = generate_periodic(5000, 25, 10, rng=rng)
        clean = SpectralMiner(max_period=30).periodicity_table(series)
        noisy_r = SpectralMiner(max_period=30).periodicity_table(
            apply_noise(series, 0.3, "R", rng)
        )
        noisy_d = SpectralMiner(max_period=30).periodicity_table(
            apply_noise(series, 0.3, "D", rng)
        )
        assert clean.confidence(25) == pytest.approx(1.0)
        assert 0.3 < noisy_r.confidence(25) < 0.9
        assert noisy_d.confidence(25) < noisy_r.confidence(25)

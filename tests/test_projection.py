"""Tests for repro.core.projection — pinned to the paper's examples."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SymbolSequence,
    f2,
    f2_projection,
    f2_table_for_period,
    projection,
    projection_length,
    projection_pairs,
)

from conftest import series_strategy


class TestProjection:
    def test_paper_example_p4_l1(self, paper_series):
        assert projection(paper_series, 4, 1).to_string() == "bbb"

    def test_paper_example_p3_l0(self, paper_series):
        assert projection(paper_series, 3, 0).to_string() == "aaab"

    def test_projection_period_one_is_identity(self, paper_series):
        assert projection(paper_series, 1, 0) == paper_series

    def test_rejects_bad_position(self, paper_series):
        with pytest.raises(ValueError):
            projection(paper_series, 3, 3)

    def test_rejects_bad_period(self, paper_series):
        with pytest.raises(ValueError):
            projection(paper_series, 0, 0)

    def test_length_formula_matches(self, paper_series):
        for p in range(1, 6):
            for l in range(p):
                assert (
                    projection(paper_series, p, l).length
                    == projection_length(paper_series.length, p, l)
                )

    def test_length_examples(self):
        # n=10: pi_{3,0} -> positions 0,3,6,9 (4 elements)
        assert projection_length(10, 3, 0) == 4
        # n=9: pi_{4,1} -> positions 1,5 (2 elements)
        assert projection_length(9, 4, 1) == 2

    def test_length_when_l_beyond_series(self):
        assert projection_length(3, 5, 4) == 0

    def test_pairs_is_length_minus_one(self):
        assert projection_pairs(10, 3, 0) == 3
        assert projection_pairs(10, 3, 1) == 2
        assert projection_pairs(2, 5, 1) == 0


class TestF2:
    def test_paper_example_abbaaabaa(self):
        series = SymbolSequence.from_string("abbaaabaa")
        assert f2(series.alphabet.code("a"), series.codes) == 3
        assert f2(series.alphabet.code("b"), series.codes) == 1

    def test_empty_and_singleton(self):
        assert f2(0, np.array([], dtype=np.int64)) == 0
        assert f2(0, np.array([0], dtype=np.int64)) == 0

    def test_all_same(self):
        assert f2(0, np.zeros(5, dtype=np.int64)) == 4

    def test_paper_support_example(self, paper_series):
        # F2(a, pi_{3,0}(T)) / 3 = 2/3
        a = paper_series.alphabet.code("a")
        proj = projection(paper_series, 3, 0)
        pairs = projection_pairs(paper_series.length, 3, 0)
        assert f2(a, proj.codes) / pairs == pytest.approx(2 / 3)

    def test_f2_projection_shortcut(self, paper_series):
        for p in range(1, 6):
            for l in range(p):
                for k in range(paper_series.sigma):
                    direct = f2(k, projection(paper_series, p, l).codes)
                    assert f2_projection(paper_series, k, p, l) == direct

    def test_f2_projection_rejects_bad_args(self, paper_series):
        with pytest.raises(ValueError):
            f2_projection(paper_series, 0, 0, 0)
        with pytest.raises(ValueError):
            f2_projection(paper_series, 0, 3, 5)


class TestF2Table:
    def test_matches_per_projection_counts(self, paper_series):
        table = f2_table_for_period(paper_series, 3)
        assert table == {(0, 0): 2, (1, 1): 2}

    def test_empty_when_period_too_large(self, paper_series):
        assert f2_table_for_period(paper_series, 10) == {}

    def test_rejects_bad_period(self, paper_series):
        with pytest.raises(ValueError):
            f2_table_for_period(paper_series, 0)

    @settings(max_examples=60, deadline=None)
    @given(series=series_strategy(), p=st.integers(1, 12))
    def test_table_agrees_with_direct_f2(self, series, p):
        table = f2_table_for_period(series, p)
        for l in range(min(p, series.length)):
            for k in range(series.sigma):
                expected = f2_projection(series, k, p, l)
                assert table.get((k, l), 0) == expected

    @settings(max_examples=60, deadline=None)
    @given(series=series_strategy(), p=st.integers(1, 12))
    def test_per_position_counts_sum_to_total_matches(self, series, p):
        """sum_l F2(s, pi_{p,l}) equals the plain shifted-match count."""
        table = f2_table_for_period(series, p)
        if p >= series.length:
            assert table == {}
            return
        codes = series.codes
        for k in range(series.sigma):
            total = int(np.count_nonzero((codes[:-p] == k) & (codes[p:] == k)))
            assert sum(v for (kk, _), v in table.items() if kk == k) == total

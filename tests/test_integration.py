"""Integration tests: full pipelines across modules."""

import numpy as np
import pytest

pytestmark = pytest.mark.slow  # end-to-end runs; `make test-fast` skips them

from repro import (
    ChunkedReader,
    ConvolutionMiner,
    OnlineMiner,
    SpectralMiner,
    mine,
)
from repro.baselines import Berberidis, MaHellerstein, PeriodicTrends, multi_pass_pipeline
from repro.data import (
    PowerConsumptionSimulator,
    RetailTransactionsSimulator,
    apply_noise,
    generate_periodic,
)
from repro.streaming import write_symbol_file


class TestEndToEndSynthetic:
    def test_noisy_embedded_period_recovered(self, rng):
        series = apply_noise(
            generate_periodic(8000, 25, 10, rng=rng), 0.15, "R", rng
        )
        result = mine(series, psi=0.5, max_period=60)
        assert 25 in result.candidate_periods
        assert 23 not in result.candidate_periods

    def test_exact_and_spectral_agree_end_to_end(self, rng):
        series = apply_noise(
            generate_periodic(300, 7, 4, rng=rng), 0.1, "R", rng
        )
        spectral = mine(series, psi=0.4, max_period=30)
        exact = mine(series, psi=0.4, max_period=30, algorithm="convolution")
        assert {(p.period, p.slots) for p in spectral.patterns} == {
            (p.period, p.slots) for p in exact.patterns
        }

    def test_patterns_reconstruct_the_generator(self, rng):
        """On clean data the top full-arity pattern IS the base pattern."""
        base = np.array([0, 1, 2, 1, 3])
        series = generate_periodic(200, 5, 4, rng=rng, pattern=base)
        result = mine(series, psi=0.9, periods=[5])
        full = [p for p in result.patterns if p.arity == 5]
        assert len(full) == 1
        assert full[0].slots == tuple(int(c) for c in base)


class TestEndToEndRealistic:
    def test_power_weekly_pipeline(self, rng):
        simulator = PowerConsumptionSimulator()
        series = simulator.series(rng)
        result = mine(series, psi=0.6, max_period=30, periods=[7])
        assert 7 in result.candidate_periods
        weekly = result.patterns_for(7)
        assert weekly and all(p.support >= 0.6 for p in weekly)

    def test_retail_daily_pipeline(self, rng):
        series = RetailTransactionsSimulator(days=90).series(rng)
        result = mine(series, psi=0.7, max_period=30, periods=[24], max_arity=4)
        assert 24 in result.candidate_periods
        rendered = {p.to_string(result.alphabet) for p in result.single_patterns}
        assert any(s.startswith("a") or "a" in s for s in rendered)

    def test_multi_pass_pipeline_agrees_on_period(self, rng):
        series = RetailTransactionsSimulator(days=60).series(rng)
        mined = mine(series, psi=0.7, max_period=30, periods=[24], max_arity=2)
        legacy = multi_pass_pipeline(
            series, psi=0.7, detector=Berberidis(max_period=30)
        )
        assert 24 in legacy
        assert 24 in mined.candidate_periods


class TestBaselinesComparison:
    def test_all_detectors_find_a_strong_planted_period(self, rng):
        series = apply_noise(
            generate_periodic(3000, 12, 6, rng=rng), 0.05, "R", rng
        )
        table = SpectralMiner(psi=0.5, max_period=100).periodicity_table(series)
        assert 12 in table.candidate_periods(0.7)

        trends = PeriodicTrends(method="exact").analyse(series, max_shift=100)
        assert trends.confidence(12) > 0.85

        berberidis = Berberidis(max_period=100).candidate_periods(series)
        assert 12 in berberidis

        ma = MaHellerstein().candidate_periods(series)
        assert 12 in ma  # period 12 symbols recur at adjacent gap 12 often

    def test_miner_finds_what_adjacent_gaps_miss(self):
        """Composite series where a symbol's period never shows as an
        adjacent gap but the miner's projections see it."""
        # s at 0, 4, 5, 7, 10 repeated every 12 -> gaps {4,1,2,3,2}; the
        # pattern itself is periodic at 12.
        block = ["x"] * 12
        for position in (0, 4, 5, 7, 10):
            block[position] = "s"
        from repro.core import SymbolSequence

        series = SymbolSequence.from_symbols(block * 20)
        table = SpectralMiner(max_period=40).periodicity_table(series)
        assert table.confidence(12) == pytest.approx(1.0)
        gaps = MaHellerstein().adjacent_gaps(series, series.alphabet.code("s"))
        assert 12 not in set(gaps.tolist())


class TestStreamingParity:
    def test_file_stream_online_and_batch_all_agree(self, rng, tmp_path):
        series = apply_noise(
            generate_periodic(2000, 16, 5, rng=rng), 0.1, "R", rng
        )
        cap = 40

        batch = SpectralMiner(max_period=cap).periodicity_table(series)

        path = write_symbol_file(series, tmp_path / "stream.txt")
        reader = ChunkedReader(path, alphabet=series.alphabet, block_size=256)
        streamed = SpectralMiner(max_period=cap).periodicity_table_out_of_core(
            iter(reader), series
        )

        online = OnlineMiner(series.alphabet, max_period=cap)
        online.consume(series)

        assert batch == streamed
        assert batch == online.table()

    def test_online_prefix_consistency(self, rng):
        """After consuming a prefix, the online table equals batch-mining
        that prefix — at any point in the stream."""
        series = generate_periodic(600, 9, 4, rng=rng)
        online = OnlineMiner(series.alphabet, max_period=12)
        checkpoints = (100, 350, 600)
        position = 0
        for checkpoint in checkpoints:
            online.extend_codes(series.codes[position:checkpoint])
            position = checkpoint
            prefix = series[:checkpoint]
            batch = SpectralMiner(max_period=12).periodicity_table(prefix)
            assert online.table() == batch


class TestWitnessFaithfulness:
    def test_witness_supports_match_pattern_supports(self, rng):
        """The paper's W'_p alignment (same repetition index) equals the
        segment-based multi-symbol support used by the pattern miner."""
        from repro.core import decode_witness, segment_match_matrix, pattern_support
        from repro.core import PeriodicPattern

        series = apply_noise(
            generate_periodic(120, 6, 3, rng=rng), 0.1, "R", rng
        )
        period = 6
        witnesses = ConvolutionMiner(max_period=period).witness_sets(series)
        if period not in witnesses:
            pytest.skip("no witnesses at the test period for this draw")
        decoded = [
            decode_witness(int(w), series.length, series.sigma, period)
            for w in witnesses[period]
        ]
        # Group witnesses by repetition; a pattern with items {(l, k)} is
        # supported by repetition m iff every item has a witness at m.
        by_repetition: dict[int, set[tuple[int, int]]] = {}
        for d in decoded:
            by_repetition.setdefault(d.repetition, set()).add(
                (d.position, d.symbol_code)
            )
        matrix = segment_match_matrix(series, period)
        items = [(d.position, d.symbol_code) for d in decoded[:2]]
        pattern = PeriodicPattern.from_items(period, dict(items))
        aligned = sum(
            1
            for supported in by_repetition.values()
            if set(pattern.items) <= supported
        )
        assert aligned / matrix.shape[0] == pytest.approx(
            pattern_support(pattern, matrix)
        )

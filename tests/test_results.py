"""Tests for repro.core.results — the mine() facade."""

import pytest

from repro.core import MiningResult, SymbolSequence, mine


class TestMineFacade:
    def test_paper_example_spectral(self, paper_series):
        result = mine(paper_series, psi=2 / 3)
        rendered = sorted(
            p.to_string(result.alphabet) for p in result.patterns_for(3)
        )
        assert rendered == ["*b*", "a**", "ab*"]

    def test_paper_example_convolution(self, paper_series):
        result = mine(paper_series, psi=2 / 3, algorithm="convolution")
        rendered = sorted(
            p.to_string(result.alphabet) for p in result.patterns_for(3)
        )
        assert rendered == ["*b*", "a**", "ab*"]

    def test_algorithms_agree(self, paper_series):
        spectral = mine(paper_series, psi=0.5)
        convolution = mine(paper_series, psi=0.5, algorithm="convolution")
        assert {(p.period, p.slots) for p in spectral.patterns} == {
            (p.period, p.slots) for p in convolution.patterns
        }

    def test_unknown_algorithm(self, paper_series):
        with pytest.raises(ValueError):
            mine(paper_series, psi=0.5, algorithm="magic")

    def test_candidate_periods_sorted(self, paper_series):
        result = mine(paper_series, psi=0.5)
        assert list(result.candidate_periods) == sorted(result.candidate_periods)

    def test_single_patterns_subset_of_patterns(self, paper_series):
        result = mine(paper_series, psi=0.5)
        all_slots = {(p.period, p.slots) for p in result.patterns}
        for single in result.single_patterns:
            assert (single.period, single.slots) in all_slots

    def test_periods_restriction(self, paper_series):
        result = mine(paper_series, psi=0.5, periods=[3])
        assert {p.period for p in result.patterns} == {3}
        # the evidence table still covers other periods
        assert result.confidence(4) > 0

    def test_max_period_limits_table(self, paper_series):
        result = mine(paper_series, psi=0.5, max_period=3)
        assert max(result.table.periods) <= 3

    def test_prune_false_keeps_full_table(self):
        series = SymbolSequence.from_string("abcabcabcaaa")
        pruned = mine(series, psi=0.9)
        full = mine(series, psi=0.9, prune=False)
        # the unpruned table can answer lower-threshold queries
        assert len(full.table.periodicities(0.1)) >= len(
            pruned.table.periodicities(0.1)
        )

    def test_confidence_passthrough(self, paper_series):
        result = mine(paper_series, psi=0.5)
        assert result.confidence(3) == result.table.confidence(3)

    def test_render_mentions_patterns(self, paper_series):
        text = mine(paper_series, psi=2 / 3).render()
        assert "ab*" in text and "psi=" in text

    def test_render_limit(self, paper_series):
        text = mine(paper_series, psi=0.4).render(limit=1)
        assert len(text.splitlines()) == 2

    def test_result_is_frozen(self, paper_series):
        result = mine(paper_series, psi=0.5)
        with pytest.raises(AttributeError):
            result.psi = 0.9

"""Tests for repro.cli."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import generate_periodic
from repro.streaming import write_symbol_file


@pytest.fixture
def series_file(tmp_path, rng):
    series = generate_periodic(600, 12, 5, rng=rng)
    return write_symbol_file(series, tmp_path / "series.txt")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_requires_psi(self, series_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mine", str(series_file)])

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig9"])


class TestMine:
    def test_prints_patterns(self, series_file, capsys):
        code = main(
            ["mine", str(series_file), "--psi", "0.8", "--periods", "12",
             "--max-arity", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "n=600" in out
        assert "p=12" in out

    def test_explicit_alphabet(self, series_file, capsys):
        code = main(
            ["mine", str(series_file), "--psi", "0.8",
             "--alphabet", "abcdefghij", "--periods", "12", "--max-arity", "1"]
        )
        assert code == 0
        assert "sigma=10" in capsys.readouterr().out

    def test_symbol_outside_alphabet_fails(self, series_file):
        with pytest.raises(SystemExit):
            main(["mine", str(series_file), "--psi", "0.5", "--alphabet", "ab"])

    def test_empty_file_fails(self, tmp_path):
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        with pytest.raises(SystemExit):
            main(["mine", str(empty), "--psi", "0.5"])

    def test_convolution_algorithm(self, series_file, capsys):
        code = main(
            ["mine", str(series_file), "--psi", "0.9",
             "--algorithm", "convolution", "--max-period", "15",
             "--periods", "12", "--max-arity", "1"]
        )
        assert code == 0
        assert "p=12" in capsys.readouterr().out

    def test_parallel_engine_flags(self, series_file, capsys):
        code = main(
            ["mine", str(series_file), "--psi", "0.9",
             "--algorithm", "convolution", "--engine", "parallel",
             "--workers", "2", "--max-period", "15",
             "--periods", "12", "--max-arity", "1"]
        )
        assert code == 0
        assert "p=12" in capsys.readouterr().out

    def test_rejects_unknown_engine(self, series_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", str(series_file), "--psi", "0.5",
                 "--engine", "quantum"]
            )

    def test_engine_choices_derive_from_registry(self):
        """--engine choices ARE the ENGINES registry (lint RL004's
        single source of truth), not a hand-copied list."""
        from repro.core import ENGINES

        mine_parser = None
        for action in build_parser()._subparsers._group_actions:
            mine_parser = action.choices.get("mine")
            if mine_parser is not None:
                break
        assert mine_parser is not None
        engine_action = next(
            a for a in mine_parser._actions if "--engine" in a.option_strings
        )
        assert tuple(engine_action.choices) == ENGINES
        assert engine_action.default in ENGINES

    def test_engine_alias_exported(self):
        import repro
        from repro.core.convolution_miner import Engine

        assert repro.Engine is Engine
        assert set(repro.ENGINES) == {
            "bitand", "kronecker", "wordarray", "parallel"
        }


class TestPeriods:
    def test_lists_candidates(self, series_file, capsys):
        code = main(["periods", str(series_file), "--psi", "0.8",
                     "--max-period", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "12" in out and "candidate periods" in out

    def test_significant_filter_shrinks_list(self, series_file, capsys):
        main(["periods", str(series_file), "--psi", "0.6", "--max-period", "60"])
        raw = capsys.readouterr().out
        main(["periods", str(series_file), "--psi", "0.6", "--max-period", "60",
              "--significant"])
        filtered = capsys.readouterr().out
        raw_count = int(raw.split(":")[1].split()[0])
        filtered_count = int(filtered.split(":")[1].split()[0])
        assert filtered_count <= raw_count


class TestStream:
    def test_online_mining(self, series_file, capsys):
        code = main(["stream", str(series_file), "--psi", "0.8",
                     "--max-period", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "streamed 600 symbols" in out
        assert "whole stream" in out
        assert "period    12" in out

    def test_sliding_window(self, series_file, capsys):
        code = main(["stream", str(series_file), "--psi", "0.8",
                     "--max-period", "20", "--window", "120",
                     "--chunk-size", "64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "window of last 120" in out
        assert "chunk=64" in out

    def test_streaming_with_explicit_alphabet(self, series_file, capsys):
        code = main(["stream", str(series_file), "--psi", "0.8",
                     "--alphabet", "abcde", "--max-period", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sigma=5" in out

    def test_symbol_outside_alphabet_fails(self, series_file):
        with pytest.raises(SystemExit):
            main(["stream", str(series_file), "--psi", "0.5",
                  "--alphabet", "ab"])

    def test_rejects_bad_chunk_size(self, series_file):
        with pytest.raises(SystemExit):
            main(["stream", str(series_file), "--psi", "0.5",
                  "--chunk-size", "-3"])


class TestGenerate:
    @pytest.mark.parametrize(
        "workload,extra",
        [
            ("synthetic", ["--length", "500", "--period", "7", "--noise", "0.1"]),
            ("power", ["--days", "70"]),
            ("retail", ["--days", "10", "--dst"]),
            ("eventlog", ["--length", "400"]),
        ],
    )
    def test_workloads_round_trip(self, tmp_path, capsys, workload, extra):
        out_file = tmp_path / f"{workload}.txt"
        code = main(["generate", workload, "--out", str(out_file)] + extra)
        assert code == 0
        assert out_file.exists()
        assert "wrote" in capsys.readouterr().out
        assert len(out_file.read_text().strip()) > 0

    def test_deterministic_by_seed(self, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        main(["generate", "synthetic", "--out", str(a), "--seed", "7",
              "--length", "300"])
        main(["generate", "synthetic", "--out", str(b), "--seed", "7",
              "--length", "300"])
        assert a.read_text() == b.read_text()


class TestForecast:
    def test_forecast_prints_prediction(self, series_file, capsys):
        code = main(["forecast", str(series_file), "--horizon", "12",
                     "--period", "12"])
        out = capsys.readouterr().out
        assert code == 0
        assert "period: 12" in out
        assert "forecast: " in out

    def test_forecast_evaluation(self, series_file, capsys):
        code = main(["forecast", str(series_file), "--horizon", "60",
                     "--period", "12", "--evaluate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "hold-out accuracy" in out and "lift" in out

    def test_discovers_period(self, series_file, capsys):
        code = main(["forecast", str(series_file), "--horizon", "5",
                     "--max-period", "30"])
        out = capsys.readouterr().out
        assert code == 0
        assert "period: 12" in out


class TestPeriodsBases:
    def test_bases_collapse_harmonics(self, series_file, capsys):
        code = main(["periods", str(series_file), "--psi", "0.9",
                     "--max-period", "60", "--bases"])
        out = capsys.readouterr().out
        assert code == 0
        assert "base" in out and "harmonics:" in out


@pytest.mark.slow
class TestExperiment:
    @pytest.mark.parametrize("name", ["table2", "table3"])
    def test_quick_experiments_render(self, capsys, name):
        code = main(["experiment", name, "--quick"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table" in out

"""Tests for repro.baselines.warping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import WarpingDetector, banded_edit_distance
from repro.core import SpectralMiner
from repro.data import apply_noise, generate_periodic


def _reference_edit(a, b) -> int:
    m, n = len(a), len(b)
    table = np.zeros((m + 1, n + 1), dtype=int)
    table[:, 0] = np.arange(m + 1)
    table[0, :] = np.arange(n + 1)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            table[i, j] = min(
                table[i - 1, j] + 1,
                table[i, j - 1] + 1,
                table[i - 1, j - 1] + int(a[i - 1] != b[j - 1]),
            )
    return int(table[m, n])


class TestBandedEditDistance:
    def test_identical(self):
        a = np.array([1, 2, 3, 1])
        assert banded_edit_distance(a, a, band=2) == 0

    def test_single_substitution(self):
        assert banded_edit_distance([1, 2, 3], [1, 9, 3], band=1) == 1

    def test_single_insertion(self):
        assert banded_edit_distance([1, 2, 3], [1, 2, 9, 3], band=2) == 1

    def test_empty_inputs(self):
        assert banded_edit_distance([], [1, 2], band=2) == 2
        assert banded_edit_distance([1], [], band=1) == 1

    def test_full_band_is_exact(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            a = rng.integers(0, 3, size=rng.integers(1, 20))
            b = rng.integers(0, 3, size=rng.integers(1, 20))
            band = max(a.size, b.size)
            assert banded_edit_distance(a, b, band) == _reference_edit(a, b)

    def test_narrow_band_upper_bounds_exact(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            a = rng.integers(0, 3, size=15)
            b = rng.integers(0, 3, size=rng.integers(12, 18))
            band = max(abs(a.size - b.size), 2)
            banded = banded_edit_distance(a, b, band)
            assert banded >= _reference_edit(a, b)

    def test_rejects_negative_band(self):
        with pytest.raises(ValueError):
            banded_edit_distance([1], [1], band=-1)

    @settings(max_examples=30, deadline=None)
    @given(
        a=st.lists(st.integers(0, 2), max_size=16),
        b=st.lists(st.integers(0, 2), max_size=16),
    )
    def test_symmetry_at_full_band(self, a, b):
        band = max(len(a), len(b), 1)
        assert banded_edit_distance(a, b, band) == banded_edit_distance(b, a, band)

    @settings(max_examples=30, deadline=None)
    @given(a=st.lists(st.integers(0, 2), min_size=1, max_size=16))
    def test_triangle_with_length_difference(self, a):
        # Distance is at least the length difference.
        b = a[: max(len(a) - 2, 0)]
        band = max(len(a), 1)
        assert banded_edit_distance(a, b, band) >= len(a) - len(b)


class TestWarpingDetector:
    @pytest.fixture(scope="class")
    def noisy_series(self):
        rng = np.random.default_rng(2004)
        clean = generate_periodic(6000, 25, 10, rng=rng)
        return apply_noise(clean, 0.2, "I-D", rng)

    def test_resilient_where_exact_miner_collapses(self, noisy_series):
        """The headline claim of the extension: I/D noise breaks rigid
        shifted comparison but not warped comparison."""
        exact_conf = SpectralMiner(max_period=30).periodicity_table(
            noisy_series
        ).confidence(25)
        warped_conf = WarpingDetector().confidence(noisy_series, 25)
        assert exact_conf < 0.3
        assert warped_conf > 0.55
        assert warped_conf > exact_conf + 0.3

    def test_discriminates_far_periods(self, noisy_series):
        detector = WarpingDetector()
        assert detector.confidence(noisy_series, 25) > (
            detector.confidence(noisy_series, 37) + 0.2
        )

    def test_clean_series_scores_near_one(self, rng):
        series = generate_periodic(2000, 25, 10, rng=rng)
        assert WarpingDetector().confidence(series, 25) > 0.99

    def test_scan_and_best(self, noisy_series):
        detector = WarpingDetector()
        scores = detector.scan(noisy_series, [25, 37])
        assert set(scores) == {25, 37}
        assert detector.best(noisy_series, [25, 37]) == 25

    def test_scan_rejects_empty(self, noisy_series):
        with pytest.raises(ValueError):
            WarpingDetector().scan(noisy_series, [])

    def test_confidence_rejects_bad_period(self, rng):
        series = generate_periodic(100, 5, 3, rng=rng)
        with pytest.raises(ValueError):
            WarpingDetector().confidence(series, 0)
        with pytest.raises(ValueError):
            WarpingDetector().confidence(series, 100)

    def test_rejects_negative_band(self):
        with pytest.raises(ValueError):
            WarpingDetector(band=-1)

    def test_explicit_band_controls_resolution(self, noisy_series):
        tight = WarpingDetector(band=2)
        loose = WarpingDetector(band=30)
        # A loose band blurs a near-miss period up toward the true one.
        assert loose.confidence(noisy_series, 23) > tight.confidence(
            noisy_series, 23
        )

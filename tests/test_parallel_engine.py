"""Tests for repro.parallel — sharded witness engine and count fast path.

The engine contract: ``engine="parallel"`` is bit-for-bit
indistinguishable from the serial exact engines, whatever the backend
(serial fallback, thread pool, process pool with shared memory) and
whichever result shape (witness sets or count-only ``F2`` tables).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import brute_force_table
from repro.core import Alphabet, ConvolutionMiner, SymbolSequence
from repro.core.mapping import witnesses_to_f2_table
from repro.parallel import (
    ParallelWitnessEngine,
    SharedWords,
    attach_words,
    component_f2_counts,
    plan_shards,
)
from repro.parallel.plan import Shard

from conftest import random_series, series_strategy


def _pack(series):
    return ConvolutionMiner(engine="parallel")._packed_words(series)


class TestCrossEngineEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        series=series_strategy(min_size=2, max_size=50),
        workers=st.integers(1, 4),
    )
    def test_witness_sets_identical(self, series, workers):
        """Parallel witness sets == bitand == wordarray == kronecker."""
        reference = ConvolutionMiner(engine="bitand").witness_sets(series)
        for engine in ("wordarray", "kronecker"):
            other = ConvolutionMiner(engine=engine).witness_sets(series)
            assert reference.keys() == other.keys()
            for p in reference:
                assert reference[p].tolist() == other[p].tolist()
        parallel = ConvolutionMiner(
            engine="parallel", workers=workers
        ).witness_sets(series)
        assert reference.keys() == parallel.keys()
        for p in reference:
            assert reference[p].tolist() == parallel[p].tolist()

    @settings(max_examples=60, deadline=None)
    @given(
        series=series_strategy(min_size=2, max_size=50),
        workers=st.integers(1, 4),
    )
    def test_f2_tables_identical(self, series, workers):
        """Count-only tables == every serial engine == the oracle."""
        parallel = ConvolutionMiner(
            engine="parallel", workers=workers
        ).periodicity_table(series)
        for engine in ("bitand", "wordarray", "kronecker"):
            assert parallel == ConvolutionMiner(engine=engine).periodicity_table(
                series
            )
        assert parallel == brute_force_table(series)

    @settings(max_examples=40, deadline=None)
    @given(
        series=series_strategy(min_size=2, max_size=40),
        cap=st.integers(1, 45),
    )
    def test_max_period_cap_respected(self, series, cap):
        """Capped parallel runs agree with capped serial runs, even when
        the cap exceeds n//2 (it clamps to n-1 like the serial path)."""
        reference = ConvolutionMiner(
            engine="wordarray", max_period=cap
        ).periodicity_table(series)
        parallel = ConvolutionMiner(
            engine="parallel", max_period=cap, workers=2
        ).periodicity_table(series)
        assert parallel == reference

    def test_sigma_one_series(self):
        series = SymbolSequence.from_string("aaaaaaa")
        parallel = ConvolutionMiner(engine="parallel").periodicity_table(series)
        assert parallel == brute_force_table(series)
        assert parallel.confidence(1) == pytest.approx(1.0)

    def test_tiny_series(self):
        for text in ("ab", "aa", "abc"):
            series = SymbolSequence.from_string(text)
            miner = ConvolutionMiner(engine="parallel")
            assert miner.periodicity_table(series) == brute_force_table(series)
        assert ConvolutionMiner(engine="parallel").witness_sets(
            SymbolSequence.from_string("a")
        ) == {}

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ConvolutionMiner(engine="parallel", workers=0)
        with pytest.raises(ValueError):
            ParallelWitnessEngine(workers=-1)
        with pytest.raises(ValueError):
            ParallelWitnessEngine(mode="fiber")


class TestBackends:
    """Every backend produces the same results as the serial reference."""

    @pytest.fixture(scope="class")
    def medium(self):
        rng = np.random.default_rng(20040314)
        return random_series(rng, 2_000, 4)

    @pytest.fixture(scope="class")
    def reference(self, medium):
        return ConvolutionMiner(engine="wordarray", max_period=60).f2_tables(
            medium
        )

    def _run(self, series, mode, count_only):
        engine = ParallelWitnessEngine(workers=2, mode=mode)
        words = _pack(series)
        n, sigma = series.length, series.sigma
        if count_only:
            tables = engine.f2_tables(words, n, sigma, 60)
            return {p: t for p, t in tables.items() if t}
        return engine.witness_sets(words, n, sigma, 60)

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_counts_match_reference(self, medium, reference, mode):
        assert self._run(medium, mode, count_only=True) == reference

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_witnesses_match_reference(self, medium, reference, mode):
        witnesses = self._run(medium, mode, count_only=False)
        rebuilt = {
            p: witnesses_to_f2_table(w, medium.length, medium.sigma, p)
            for p, w in witnesses.items()
            if w.size
        }
        assert rebuilt == reference


class TestCountFastPath:
    @settings(max_examples=60, deadline=None)
    @given(series=series_strategy(min_size=3, max_size=60))
    def test_component_counts_equal_witness_decode(self, series):
        """The popcount-per-residue-class decode == decode-then-group."""
        from repro.convolution.bitops import (
            shift_right,
            shifted_self_and,
            word_and,
        )

        words = _pack(series)
        n, sigma = series.length, series.sigma
        for p in range(1, max(2, n // 2) + 1):
            if p >= n:
                break
            component = word_and(words, shift_right(words, sigma * p))
            fast = component_f2_counts(component, n, sigma, p)
            slow = witnesses_to_f2_table(
                shifted_self_and(words, sigma * p), n, sigma, p
            )
            assert fast == {k: v for k, v in slow.items() if v}

    def test_out_of_range_period_is_empty(self):
        words = np.array([0xFFFF], dtype=np.uint64)
        assert component_f2_counts(words, n=4, sigma=2, period=4) == {}
        assert component_f2_counts(words, n=4, sigma=2, period=0) == {}


class TestShardPlanner:
    def test_covers_range_exactly(self):
        for max_period in (1, 2, 7, 63, 64, 1000):
            plan = plan_shards(max_period, total_bits=1 << 20, workers=4)
            periods = [p for s in plan.shards for p in s.periods()]
            assert periods == list(range(1, max_period + 1))

    def test_oversubscribes_but_balances(self):
        plan = plan_shards(1000, total_bits=1 << 20, workers=4)
        assert len(plan.shards) == 16
        sizes = [s.size for s in plan.shards]
        assert max(sizes) - min(sizes) <= 1

    def test_empty_range(self):
        plan = plan_shards(0, total_bits=64, workers=4)
        assert plan.shards == () and plan.max_period == 0

    def test_workers_clamped_to_periods(self):
        plan = plan_shards(3, total_bits=1 << 20, workers=16)
        assert plan.workers == 3

    def test_small_input_avoids_processes(self):
        plan = plan_shards(1000, total_bits=1 << 10, workers=4)
        assert not plan.use_processes

    def test_short_range_avoids_processes(self):
        plan = plan_shards(8, total_bits=1 << 20, workers=4)
        assert not plan.use_processes

    def test_large_input_uses_processes(self):
        plan = plan_shards(1000, total_bits=1 << 20, workers=4)
        assert plan.use_processes

    def test_mode_overrides(self):
        assert not plan_shards(
            1000, total_bits=1 << 20, workers=4, mode="thread"
        ).use_processes
        assert plan_shards(
            8, total_bits=64, workers=4, mode="process"
        ).use_processes

    def test_single_worker_single_shard(self):
        plan = plan_shards(1000, total_bits=1 << 20, workers=1)
        assert len(plan.shards) == 1 and not plan.use_processes

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            plan_shards(10, total_bits=64, workers=0)
        with pytest.raises(ValueError):
            plan_shards(10, total_bits=-1)
        with pytest.raises(ValueError):
            plan_shards(10, total_bits=64, mode="fiber")
        with pytest.raises(ValueError):
            Shard(3, 2)


class TestTransport:
    def test_roundtrip(self):
        words = np.arange(100, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        with SharedWords(words) as shared:
            view, shm = attach_words(shared.name, shared.n_words)
            try:
                np.testing.assert_array_equal(view, words)
            finally:
                del view
                shm.close()

    def test_empty_array(self):
        with SharedWords(np.array([], dtype=np.uint64)) as shared:
            assert shared.n_words == 0

    def test_unlinked_after_exit(self):
        with SharedWords(np.ones(4, dtype=np.uint64)) as shared:
            name = shared.name
        with pytest.raises(FileNotFoundError):
            attach_words(name, 4)

    def test_raising_worker_still_closes_attachment(self, monkeypatch):
        """Regression (lint RL002): a worker whose shard computation
        raises must still release its shared-memory attachment, or the
        parent's unlink leaks the segment until process exit."""
        from repro.parallel import engine as engine_module

        closed = []

        def tracking_attach(name, n_words):
            words, shm = attach_words(name, n_words)
            original_close = shm.close

            def close():
                closed.append(name)
                original_close()

            shm.close = close
            return words, shm

        def exploding_shard(*args, **kwargs):
            raise RuntimeError("worker blew up")

        monkeypatch.setattr(engine_module, "attach_words", tracking_attach)
        monkeypatch.setattr(engine_module, "_mine_shard", exploding_shard)
        words = np.ones(8, dtype=np.uint64)
        with SharedWords(words) as shared:
            with pytest.raises(RuntimeError, match="worker blew up"):
                engine_module._mine_shard_shm(
                    shared.name, shared.n_words, 8, 1, 1, 4, count_only=False
                )
            assert closed == [shared.name]

    def test_failed_attach_view_does_not_pin_segment(self):
        """A truncated segment must not leak the just-attached handle
        (attach_words closes on a failed ``np.frombuffer``)."""
        with SharedWords(np.ones(2, dtype=np.uint64)) as shared:
            with pytest.raises(ValueError):
                # Ask for more words than the segment holds.
                attach_words(shared.name, shared.n_words + 64)
        # The parent's unlink must now be effective: nothing pinned it.
        with pytest.raises(FileNotFoundError):
            attach_words(shared.name, 2)


class TestErrorMessages:
    def test_kronecker_refusal_states_product_and_limit(self, rng):
        series = random_series(rng, 20_000, 3)
        with pytest.raises(ValueError) as excinfo:
            ConvolutionMiner(engine="kronecker").witness_sets(series)
        message = str(excinfo.value)
        assert "60,000" in message  # sigma*n, the quantity the limit caps
        assert "30,000" in message  # the limit itself
        assert "3,600,000,000" in message  # the product's bit size
        assert "parallel" in message and "bitand" in message

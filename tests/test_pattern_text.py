"""Tests for repro.core.pattern_text."""

import numpy as np
import pytest

from repro.core import (
    Alphabet,
    PeriodicPattern,
    SymbolSequence,
    parse_pattern,
    pattern_support_curve,
    segment_matches,
)


class TestParsePattern:
    def test_paper_style_string(self):
        pattern = parse_pattern("ab*", Alphabet("abc"))
        assert pattern.period == 3
        assert pattern.items == ((0, 0), (1, 1))

    def test_round_trip_with_to_string(self):
        alphabet = Alphabet("abc")
        original = PeriodicPattern.from_items(5, {1: 2, 4: 0})
        assert parse_pattern(original.to_string(alphabet), alphabet) == original

    def test_all_dont_care(self):
        pattern = parse_pattern("***", Alphabet("ab"))
        assert pattern.arity == 0

    def test_support_annotation(self):
        pattern = parse_pattern("a*", Alphabet("ab"), support=0.5)
        assert pattern.support == 0.5

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_pattern("", Alphabet("ab"))

    def test_rejects_unknown_symbol(self):
        with pytest.raises(ValueError):
            parse_pattern("az", Alphabet("ab"))


class TestSegmentMatches:
    def test_full_period_pattern(self):
        series = SymbolSequence.from_string("abcabcabx")
        pattern = parse_pattern("abc", series.alphabet)
        assert segment_matches(series, pattern).tolist() == [True, True, False]

    def test_partial_pattern(self):
        series = SymbolSequence.from_string("axbxaybyazbz")
        pattern = parse_pattern("a*b*", series.alphabet)
        assert segment_matches(series, pattern).tolist() == [True, True, True]

    def test_trailing_partial_segment_excluded(self):
        series = SymbolSequence.from_string("ababa")
        pattern = parse_pattern("ab", series.alphabet)
        assert segment_matches(series, pattern).size == 2

    def test_agrees_with_matches_segment(self, rng):
        codes = rng.integers(0, 3, size=60)
        series = SymbolSequence.from_codes(codes, Alphabet.of_size(3))
        pattern = PeriodicPattern.from_items(5, {0: 1, 3: 2})
        vector = segment_matches(series, pattern)
        for m in range(12):
            segment = tuple(int(c) for c in codes[m * 5 : (m + 1) * 5])
            assert vector[m] == pattern.matches_segment(segment)


class TestSupportCurve:
    def test_constant_match(self):
        series = SymbolSequence.from_string("ab" * 20)
        pattern = parse_pattern("ab", series.alphabet)
        curve = pattern_support_curve(series, pattern, window_segments=4)
        assert np.allclose(curve, 1.0)

    def test_decay_detected(self):
        series = SymbolSequence.from_string("ab" * 10 + "bb" * 10)
        pattern = parse_pattern("ab", series.alphabet)
        curve = pattern_support_curve(series, pattern, window_segments=4)
        assert curve[0] == pytest.approx(1.0)
        assert curve[-1] == pytest.approx(0.0)

    def test_short_series_single_point(self):
        series = SymbolSequence.from_string("abab")
        pattern = parse_pattern("ab", series.alphabet)
        curve = pattern_support_curve(series, pattern, window_segments=10)
        assert curve.tolist() == [1.0]

    def test_empty_when_no_full_segment(self):
        series = SymbolSequence.from_string("a", Alphabet("ab"))
        pattern = parse_pattern("ab", series.alphabet)
        assert pattern_support_curve(series, pattern).size == 0

    def test_rejects_bad_window(self):
        series = SymbolSequence.from_string("abab")
        pattern = parse_pattern("ab", series.alphabet)
        with pytest.raises(ValueError):
            pattern_support_curve(series, pattern, window_segments=0)

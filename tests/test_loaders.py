"""Tests for repro.data.loaders."""

import numpy as np
import pytest

from repro.core import Alphabet
from repro.data import load_csv_symbols, load_csv_values


@pytest.fixture
def numeric_csv(tmp_path):
    path = tmp_path / "values.csv"
    path.write_text("timestamp,watts\n1,6100\n2,8200\n3,9100\n4,5800\n")
    return path


@pytest.fixture
def headerless_csv(tmp_path):
    path = tmp_path / "plain.csv"
    path.write_text("1.5\n2.5\n3.5\n")
    return path


@pytest.fixture
def symbol_csv(tmp_path):
    path = tmp_path / "levels.csv"
    path.write_text("day,level\n1,low\n2,high\n3,low\n4,low\n")
    return path


class TestLoadValues:
    def test_by_header_name(self, numeric_csv):
        values = load_csv_values(numeric_csv, "watts")
        assert values.tolist() == [6100.0, 8200.0, 9100.0, 5800.0]

    def test_by_index_with_header(self, numeric_csv):
        values = load_csv_values(numeric_csv, 1)
        assert values.tolist() == [6100.0, 8200.0, 9100.0, 5800.0]

    def test_headerless_by_index(self, headerless_csv):
        assert load_csv_values(headerless_csv, 0).tolist() == [1.5, 2.5, 3.5]

    def test_unknown_header(self, numeric_csv):
        with pytest.raises(ValueError, match="no column"):
            load_csv_values(numeric_csv, "volts")

    def test_non_numeric_cell(self, symbol_csv):
        with pytest.raises(ValueError, match="non-numeric"):
            load_csv_values(symbol_csv, "level")

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError):
            load_csv_values(empty, 0)

    def test_missing_index_column(self, tmp_path):
        ragged = tmp_path / "ragged.csv"
        ragged.write_text("1,2\n3\n")
        with pytest.raises(ValueError, match="no column 1"):
            load_csv_values(ragged, 1)

    def test_feeds_the_pipeline(self, tmp_path, rng):
        from repro import PeriodicityPipeline
        from repro.data import SeasonalTrace

        values = SeasonalTrace(length=800, noise_sd=0.3).values(rng)
        path = tmp_path / "trace.csv"
        path.write_text("v\n" + "\n".join(f"{v:.4f}" for v in values) + "\n")
        report = PeriodicityPipeline(psi=0.6, max_period=30).run_values(
            load_csv_values(path, "v")
        )
        assert report.base_periods[0] == 8


class TestLoadSymbols:
    def test_by_header(self, symbol_csv):
        series = load_csv_symbols(symbol_csv, "level")
        assert series.symbols() == ["low", "high", "low", "low"]
        assert series.alphabet.symbols == ("low", "high")

    def test_explicit_alphabet(self, symbol_csv):
        alphabet = Alphabet(["high", "low"])
        series = load_csv_symbols(symbol_csv, "level", alphabet)
        assert series.codes.tolist() == [1, 0, 1, 1]

    def test_unknown_symbol_with_explicit_alphabet(self, symbol_csv):
        with pytest.raises(KeyError):
            load_csv_symbols(symbol_csv, "level", Alphabet(["low"]))

    def test_empty_column(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("level\n")
        with pytest.raises(ValueError):
            load_csv_symbols(path, "level")

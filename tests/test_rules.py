"""Tests for repro.rules (Apriori, cyclic rules, market simulator)."""

import numpy as np
import pytest

from repro.rules import (
    Cycle,
    CyclicRuleMiner,
    MarketBasketSimulator,
    PlantedCycle,
    association_rules,
    frequent_itemsets,
)

BASKETS = [
    {"a", "b", "c"},
    {"a", "b"},
    {"a", "c"},
    {"b", "c"},
    {"a", "b", "c"},
]


class TestFrequentItemsets:
    def test_counts(self):
        counts = frequent_itemsets(BASKETS, min_support=0.4)
        assert counts[frozenset({"a"})] == 4
        assert counts[frozenset({"a", "b"})] == 3
        assert counts[frozenset({"a", "b", "c"})] == 2

    def test_triple_below_threshold_pruned(self):
        counts = frequent_itemsets(BASKETS, min_support=0.5)
        assert frozenset({"a", "b", "c"}) not in counts  # 2/5 < 0.5

    def test_threshold_prunes(self):
        counts = frequent_itemsets(BASKETS, min_support=0.7)
        assert frozenset({"a", "b"}) not in counts
        assert frozenset({"a"}) in counts

    def test_max_size(self):
        counts = frequent_itemsets(BASKETS, min_support=0.4, max_size=1)
        assert all(len(s) == 1 for s in counts)

    def test_apriori_anti_monotonicity(self):
        counts = frequent_itemsets(BASKETS, min_support=0.2)
        for itemset, count in counts.items():
            for item in itemset:
                smaller = itemset - {item}
                if smaller:
                    assert counts[smaller] >= count

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            frequent_itemsets([], 0.5)

    def test_rejects_bad_support(self):
        with pytest.raises(ValueError):
            frequent_itemsets(BASKETS, 0.0)

    def test_exhaustive_against_brute_force(self):
        rng = np.random.default_rng(0)
        items = list("pqrst")
        baskets = [
            {i for i in items if rng.random() < 0.5} or {"p"} for _ in range(40)
        ]
        counts = frequent_itemsets(baskets, min_support=0.25)
        from itertools import combinations

        for size in (1, 2, 3):
            for combo in combinations(items, size):
                actual = sum(1 for b in baskets if set(combo) <= b)
                if actual >= 0.25 * len(baskets):
                    assert counts[frozenset(combo)] == actual
                else:
                    assert frozenset(combo) not in counts


class TestAssociationRules:
    def test_confidence_computation(self):
        counts = frequent_itemsets(BASKETS, min_support=0.4)
        rules = association_rules(counts, len(BASKETS), min_confidence=0.7)
        ab = next(
            r for r in rules
            if r.antecedent == frozenset({"b"}) and r.consequent == frozenset({"a"})
        )
        assert ab.confidence == pytest.approx(3 / 4)
        assert ab.support == pytest.approx(3 / 5)

    def test_threshold_filters(self):
        counts = frequent_itemsets(BASKETS, min_support=0.4)
        rules = association_rules(counts, len(BASKETS), min_confidence=0.99)
        assert all(r.confidence >= 0.99 for r in rules)

    def test_render(self):
        counts = frequent_itemsets(BASKETS, min_support=0.4)
        rules = association_rules(counts, len(BASKETS), min_confidence=0.6)
        assert "->" in rules[0].render()

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            association_rules({}, 0, 0.5)
        with pytest.raises(ValueError):
            association_rules({}, 5, 0.0)


class TestCycleDetection:
    def test_perfect_cycle(self):
        miner = CyclicRuleMiner(max_period=6, minimal_only=False)
        holds = [t % 3 == 1 for t in range(18)]
        cycles = miner.detect_cycles(holds)
        assert Cycle(3, 1) in cycles
        assert Cycle(6, 1) in cycles  # the non-minimal echo
        assert Cycle(3, 0) not in cycles

    def test_minimal_suppresses_multiples(self):
        miner = CyclicRuleMiner(max_period=6, minimal_only=True)
        holds = [t % 3 == 1 for t in range(18)]
        cycles = miner.detect_cycles(holds)
        assert cycles == [Cycle(3, 1)]

    def test_always_holding_rule(self):
        miner = CyclicRuleMiner(max_period=4, minimal_only=True)
        cycles = miner.detect_cycles([True] * 12)
        assert cycles == [Cycle(1, 0)]

    def test_single_miss_breaks_cycle(self):
        miner = CyclicRuleMiner(max_period=4, minimal_only=False)
        holds = [t % 2 == 0 for t in range(12)]
        holds[6] = False
        cycles = miner.detect_cycles(holds)
        assert Cycle(2, 0) not in cycles
        assert Cycle(4, 0) in cycles  # units 0,4,8 still all hold

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CyclicRuleMiner().detect_cycles([])


class TestEndToEnd:
    def test_recovers_planted_cycles(self):
        simulator = MarketBasketSimulator(
            units=48,
            transactions_per_unit=100,
            planted=(
                PlantedCycle(("coffee",), "pastry", period=4, offset=1),
                PlantedCycle(("bread",), "milk", period=6, offset=0, strength=0.9),
            ),
            anchor_rate=0.5,
        )
        units = simulator.generate(np.random.default_rng(7))
        miner = CyclicRuleMiner(min_support=0.25, min_confidence=0.7, max_period=12)
        rules = miner.mine(units)
        recovered = {
            (cycle.period, cycle.offset)
            for rule in rules
            for cycle in rule.cycles
        }
        assert (4, 1) in recovered
        assert (6, 0) in recovered

    def test_no_cycles_in_acyclic_data(self):
        simulator = MarketBasketSimulator(
            units=40, transactions_per_unit=60, planted=()
        )
        units = simulator.generate(np.random.default_rng(8))
        miner = CyclicRuleMiner(min_support=0.4, min_confidence=0.9, max_period=10)
        rules = miner.mine(units)
        # Background co-occurrence at base_rate cannot sustain a rule in
        # *every* unit of any residue class with high thresholds.
        assert not rules

    def test_simulator_validation(self):
        with pytest.raises(ValueError):
            MarketBasketSimulator(units=0)
        with pytest.raises(ValueError):
            PlantedCycle((), "milk", period=3, offset=0)
        with pytest.raises(ValueError):
            PlantedCycle(("milk",), "milk", period=3, offset=0)
        with pytest.raises(ValueError):
            PlantedCycle(("a",), "b", period=3, offset=3)
        with pytest.raises(ValueError):
            MarketBasketSimulator(
                planted=(PlantedCycle(("caviar",), "milk", period=2, offset=0),)
            )

    def test_rule_render(self):
        simulator = MarketBasketSimulator(units=12, transactions_per_unit=60)
        units = simulator.generate(np.random.default_rng(9))
        rules = CyclicRuleMiner(
            min_support=0.2, min_confidence=0.6, max_period=6
        ).mine(units)
        for rule in rules:
            assert "cycles:" in rule.render()

"""Tests for merge mining, calendar descriptions, and repro.testing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import describe_period
from repro.baselines import (
    MaxSubpatternMiner,
    MaxSubpatternTree,
    MergeMiner,
    merge_trees,
)
from repro.core import Alphabet, SpectralMiner, SymbolSequence
from repro.testing import (
    assert_miner_correct,
    assert_tables_equal,
    oracle_table,
    random_series,
)


class TestMergeTrees:
    def test_counts_add(self):
        root = ((0, 1), (1, 0))
        a = MaxSubpatternTree(root)
        b = MaxSubpatternTree(root)
        a.insert(((0, 1),))
        b.insert(((0, 1),))
        b.insert(root)
        merged = merge_trees(a, b)
        assert merged.frequency(((0, 1),)) == 3
        assert merged.frequency(root) == 1

    def test_rejects_different_roots(self):
        a = MaxSubpatternTree(((0, 1),))
        b = MaxSubpatternTree(((1, 0),))
        with pytest.raises(ValueError):
            merge_trees(a, b)


class TestMergeMiner:
    @settings(max_examples=30, deadline=None)
    @given(
        data=st.data(),
        period=st.integers(2, 6),
        confidence=st.sampled_from([0.3, 0.5]),
    )
    def test_merge_equals_monolithic(self, data, period, confidence):
        sigma = data.draw(st.integers(2, 4))
        chunk_count = data.draw(st.integers(2, 4))
        pieces = []
        for index in range(chunk_count):
            if index < chunk_count - 1:
                segments = data.draw(st.integers(1, 6))
                size = segments * period
            else:
                size = data.draw(st.integers(1, 25))
            pieces.append(
                np.array(
                    data.draw(
                        st.lists(
                            st.integers(0, sigma - 1),
                            min_size=size,
                            max_size=size,
                        )
                    ),
                    dtype=np.int64,
                )
            )
        alphabet = Alphabet.of_size(sigma)
        chunks = [SymbolSequence.from_codes(c, alphabet) for c in pieces]
        whole = SymbolSequence.from_codes(np.concatenate(pieces), alphabet)
        merged = {
            (p.slots, round(p.support, 9))
            for p in MergeMiner(confidence).merge_mine(chunks, period)
        }
        monolithic = {
            (p.slots, round(p.support, 9))
            for p in MaxSubpatternMiner(confidence).mine(whole, period)
        }
        assert merged == monolithic

    def test_globally_frequent_locally_infrequent_item(self):
        """The case naive per-chunk F1 would miss."""
        alphabet = Alphabet("ab")
        # Chunk 1: 'a' at position 0 in 2 of 4 segments (50%);
        # chunk 2: 'a' at position 0 in 3 of 4 segments (75%);
        # global: 5/8 = 62.5% — frequent at 0.6 though chunk 1 is not.
        chunk1 = SymbolSequence.from_string("ab" * 2 + "bb" * 2, alphabet)
        chunk2 = SymbolSequence.from_string("ab" * 3 + "bb" * 1, alphabet)
        whole = chunk1.concatenated(chunk2)
        merged = MergeMiner(0.6).merge_mine([chunk1, chunk2], 2)
        monolithic = MaxSubpatternMiner(0.6).mine(whole, 2)
        assert {p.slots for p in merged} == {p.slots for p in monolithic}
        assert any(p.slots == (0, None) for p in merged)

    def test_validation(self):
        alphabet = Alphabet("ab")
        aligned = SymbolSequence.from_string("abab", alphabet)
        ragged = SymbolSequence.from_string("aba", alphabet)
        with pytest.raises(ValueError):
            MergeMiner().merge_mine([], 2)
        with pytest.raises(ValueError):
            MergeMiner().merge_mine([aligned], 0)
        with pytest.raises(ValueError):
            MergeMiner().merge_mine([ragged, aligned], 2)
        with pytest.raises(ValueError):
            MergeMiner().merge_mine(
                [aligned, SymbolSequence.from_string("cd")], 2
            )

    def test_ragged_last_chunk_allowed(self):
        alphabet = Alphabet("ab")
        chunks = [
            SymbolSequence.from_string("abab", alphabet),
            SymbolSequence.from_string("aba", alphabet),
        ]
        patterns = MergeMiner(0.5).merge_mine(chunks, 2)
        assert patterns


class TestDescribePeriod:
    def test_weekly_hours(self):
        d = describe_period(168, 3600)
        assert d.text == "1 week (weekly)"
        assert not d.is_obscure_variant

    def test_daily_hours(self):
        assert describe_period(24, 3600).landmark == "daily"

    def test_dst_style_offset(self):
        d = describe_period(25, 3600)
        assert d.is_obscure_variant
        assert d.offset_samples == 1

    def test_paper_3961(self):
        """The paper's famous '5.5 months plus one hour' period."""
        d = describe_period(3961, 3600)
        assert d.offset_samples == 1
        assert d.is_obscure_variant
        assert "months" in d.text

    def test_weekly_days(self):
        d = describe_period(7, 86_400)
        assert d.landmark == "weekly"

    def test_no_vacuous_landmark(self):
        # With daily samples, "daily" (one sample) must not label everything.
        d = describe_period(123, 86_400)
        assert d.landmark is None or "daily" not in d.landmark

    def test_sub_landmark_period(self):
        d = describe_period(3, 60)  # 3 minutes of minute samples
        assert d.seconds == 180

    def test_validation(self):
        with pytest.raises(ValueError):
            describe_period(0, 3600)
        with pytest.raises(ValueError):
            describe_period(5, 0)
        with pytest.raises(ValueError):
            describe_period(5, 60, landmark_tolerance=-1)


class TestTestingHelpers:
    def test_random_series_reproducible(self):
        assert random_series(50, 4, seed=9) == random_series(50, 4, seed=9)

    def test_oracle_table_matches_miner(self):
        series = random_series(40, 3, seed=1)
        assert_tables_equal(
            SpectralMiner().periodicity_table(series), oracle_table(series)
        )

    def test_assert_tables_equal_diff_message(self):
        series = random_series(20, 2, seed=2)
        good = oracle_table(series)
        from repro.core import PeriodicityTable

        bad = PeriodicityTable(good.n, good.alphabet, {2: {(0, 0): 999}})
        with pytest.raises(AssertionError, match="period"):
            assert_tables_equal(bad, good)

    def test_assert_miner_correct_passes_for_real_miners(self):
        assert_miner_correct(SpectralMiner(), trials=5)

    def test_assert_miner_correct_catches_a_broken_miner(self):
        class Broken:
            def periodicity_table(self, series):
                table = oracle_table(series)
                counts = {p: dict(table.counts_for(p)) for p in table.periods}
                if counts:
                    first = next(iter(counts))
                    key = next(iter(counts[first]))
                    counts[first][key] += 1  # corrupt one cell
                from repro.core import PeriodicityTable

                return PeriodicityTable(table.n, table.alphabet, counts)

        with pytest.raises(AssertionError, match="diverged"):
            assert_miner_correct(Broken(), trials=5)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_series(-1, 2)
        with pytest.raises(ValueError):
            assert_miner_correct(SpectralMiner(), trials=0)

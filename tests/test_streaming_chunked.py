"""Chunked-ingestion equivalence: every chunking == per-symbol feeding.

The PR that vectorised the streaming layer keeps a hard guarantee: the
chunk size is a pure performance knob.  These tests drive the online
miner, the sliding-window miner, and the drift monitor with random
chunkings — including chunk boundaries straddling window evictions and
chunks larger than the window itself — and assert bit-for-bit equality
of the evidence (and of the fired ``DriftEvent`` sequences) against
per-symbol feeding and against batch mining.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Alphabet, SpectralMiner, SymbolSequence
from repro.core.periodicity import PeriodicityTable, dense_offsets, dense_size
from repro.streaming import (
    ChunkedReader,
    DenseCountStore,
    OnlineMiner,
    PeriodicityMonitor,
    SlidingWindowMiner,
)


def _chunks(codes: np.ndarray, sizes: list[int]):
    """Split ``codes`` into consecutive chunks with the given sizes."""
    position = 0
    for size in sizes:
        if position >= codes.size:
            return
        yield codes[position : position + size]
        position += size
    if position < codes.size:
        yield codes[position:]


chunk_sizes = st.lists(st.integers(1, 50), min_size=1, max_size=20)


class TestOnlineChunked:
    @settings(max_examples=40, deadline=None)
    @given(
        codes=st.lists(st.integers(0, 3), min_size=1, max_size=150),
        cap=st.integers(1, 20),
        sizes=chunk_sizes,
    )
    def test_any_chunking_equals_per_symbol(self, codes, cap, sizes):
        codes = np.array(codes, dtype=np.int64)
        alphabet = Alphabet.of_size(4)
        chunked = OnlineMiner(alphabet, max_period=cap)
        for chunk in _chunks(codes, sizes):
            chunked.extend_codes(chunk)
        scalar = OnlineMiner(alphabet, max_period=cap)
        for code in codes:
            scalar.append_code(int(code))
        assert chunked.table() == scalar.table()
        assert chunked.n == scalar.n == codes.size

    def test_one_shot_equals_batch(self, rng):
        codes = rng.integers(0, 5, size=400).astype(np.int64)
        alphabet = Alphabet.of_size(5)
        miner = OnlineMiner(alphabet, max_period=30, chunk_size=64)
        miner.extend_codes(codes)
        series = SymbolSequence.from_codes(codes, alphabet)
        assert miner.table() == SpectralMiner(max_period=30).periodicity_table(series)

    def test_confidence_reads_live_counts(self, rng):
        miner = OnlineMiner(Alphabet.of_size(4), max_period=12)
        miner.extend_codes(rng.integers(0, 4, size=300).astype(np.int64))
        snapshot = miner.table()
        for period in (1, 4, 7, 12):
            assert miner.confidence(period) == pytest.approx(
                snapshot.confidence(period)
            )

    def test_chunk_size_knob_validated(self):
        with pytest.raises(ValueError):
            OnlineMiner(Alphabet.of_size(2), max_period=4, chunk_size=0)

    def test_rejects_out_of_range_chunk(self):
        miner = OnlineMiner(Alphabet.of_size(3), max_period=4)
        with pytest.raises(ValueError):
            miner.extend_codes(np.array([0, 1, 7], dtype=np.int64))
        with pytest.raises(ValueError):
            miner.extend_codes(np.array([-1], dtype=np.int64))


class TestWindowChunked:
    @settings(max_examples=40, deadline=None)
    @given(
        codes=st.lists(st.integers(0, 2), min_size=1, max_size=150),
        window=st.integers(5, 30),
        cap=st.integers(1, 12),
        sizes=chunk_sizes,
    )
    def test_any_chunking_equals_per_symbol(self, codes, window, cap, sizes):
        cap = min(cap, window - 1)
        codes = np.array(codes, dtype=np.int64)
        alphabet = Alphabet.of_size(3)
        chunked = SlidingWindowMiner(alphabet, max_period=cap, window=window)
        for chunk in _chunks(codes, sizes):
            chunked.extend_codes(chunk)
        scalar = SlidingWindowMiner(alphabet, max_period=cap, window=window)
        for code in codes:
            scalar.append_code(int(code))
        assert chunked.table() == scalar.table()
        assert chunked.n == scalar.n and chunked.start == scalar.start

    def test_chunk_straddles_evictions(self, rng):
        # Fill the window, then feed a chunk that evicts mid-chunk.
        alphabet = Alphabet.of_size(3)
        window, cap = 20, 8
        head = rng.integers(0, 3, size=window).astype(np.int64)
        tail = rng.integers(0, 3, size=15).astype(np.int64)
        miner = SlidingWindowMiner(alphabet, max_period=cap, window=window)
        miner.extend_codes(head)
        miner.extend_codes(tail)  # one chunk, 15 evictions inside it
        recent = np.concatenate([head, tail])[-window:]
        batch = SpectralMiner(max_period=cap).periodicity_table(
            SymbolSequence.from_codes(recent, alphabet)
        )
        assert miner.table() == batch

    def test_chunk_larger_than_window(self, rng):
        # A single chunk several windows long: most of it is both added
        # and evicted within the same ingestion sweep.
        alphabet = Alphabet.of_size(3)
        window, cap = 16, 6
        codes = rng.integers(0, 3, size=100).astype(np.int64)
        miner = SlidingWindowMiner(
            alphabet, max_period=cap, window=window, chunk_size=100
        )
        miner.extend_codes(codes)
        batch = SpectralMiner(max_period=cap).periodicity_table(
            SymbolSequence.from_codes(codes[-window:], alphabet)
        )
        assert miner.table() == batch

    def test_confidence_reads_live_counts(self, rng):
        miner = SlidingWindowMiner(Alphabet.of_size(3), max_period=10, window=40)
        miner.extend_codes(rng.integers(0, 3, size=300).astype(np.int64))
        snapshot = miner.table()
        for period in (1, 3, 7, 10):
            assert miner.confidence(period) == pytest.approx(
                snapshot.confidence(period)
            )


class TestMonitorChunked:
    def _event_stream(self, rng):
        periodic = np.tile(np.array([0, 1, 2, 3]), 60)
        noise = rng.integers(0, 4, size=300)
        recovery = np.tile(np.array([0, 1, 2, 3]), 40)
        return np.concatenate([periodic, noise, recovery]).astype(np.int64)

    def _monitor(self):
        return PeriodicityMonitor(
            Alphabet.of_size(4), period=4, window=40, floor=0.6, patience=2
        )

    @settings(max_examples=15, deadline=None)
    @given(sizes=st.lists(st.integers(1, 97), min_size=1, max_size=30))
    def test_same_events_under_any_chunking(self, sizes):
        rng = np.random.default_rng(2004)
        codes = self._event_stream(rng)
        per_symbol = self._monitor()
        expected = [per_symbol.append_code(int(c)) for c in codes]
        expected = [e for e in expected if e is not None]
        chunked = self._monitor()
        fired = []
        for chunk in _chunks(codes, sizes):
            fired.extend(chunked.extend_codes(chunk))
        assert fired == expected
        assert chunked.events == per_symbol.events
        assert chunked.alarmed == per_symbol.alarmed

    def test_one_big_chunk_fires_identically(self, rng):
        codes = self._event_stream(rng)
        per_symbol = self._monitor()
        for code in codes:
            per_symbol.append_code(int(code))
        chunked = self._monitor()
        chunked.extend_codes(codes)
        assert chunked.events == per_symbol.events


class TestReaderFeedInto:
    def test_feeds_online_miner(self, rng):
        codes = rng.integers(0, 4, size=250).astype(np.int64)
        alphabet = Alphabet.of_size(4)
        series = SymbolSequence.from_codes(codes, alphabet)
        reader = ChunkedReader(series, block_size=37)
        miner = OnlineMiner(alphabet, max_period=20)
        fed = reader.feed_into(miner)
        assert fed == 250
        direct = OnlineMiner(alphabet, max_period=20)
        direct.extend_codes(codes)
        assert miner.table() == direct.table()

    def test_feeds_monitor(self, rng):
        codes = np.tile(np.array([0, 1, 2, 3]), 50).astype(np.int64)
        alphabet = Alphabet.of_size(4)
        series = SymbolSequence.from_codes(codes, alphabet)
        monitor = PeriodicityMonitor(alphabet, period=4, window=40)
        ChunkedReader(series, block_size=64).feed_into(monitor)
        assert monitor.confidence == pytest.approx(1.0)


class TestDenseCountStore:
    def test_layout_helpers_validate(self):
        with pytest.raises(ValueError):
            dense_offsets(0, 5)
        with pytest.raises(ValueError):
            dense_size(3, 0)

    def test_layout_shape(self):
        offsets = dense_offsets(3, 4)
        assert offsets.tolist() == [0, 0, 3, 9, 18]
        assert dense_size(3, 4) == 30

    def test_from_dense_rejects_wrong_shape(self):
        alphabet = Alphabet.of_size(3)
        with pytest.raises(ValueError):
            PeriodicityTable.from_dense(
                10, alphabet, np.zeros(7, dtype=np.int64), max_period=4
            )

    def test_from_dense_round_trip(self, rng):
        sigma, cap, n = 4, 9, 120
        alphabet = Alphabet.of_size(sigma)
        codes = rng.integers(0, sigma, size=n).astype(np.int64)
        miner = OnlineMiner(alphabet, max_period=cap)
        miner.extend_codes(codes)
        table = miner.table()
        # Rebuild the dense array from the table and convert back.
        offsets = dense_offsets(sigma, cap)
        dense = np.zeros(dense_size(sigma, cap), dtype=np.int64)
        for p in table.periods:
            for (code, position), value in table.counts_for(p).items():
                dense[int(offsets[p]) + code * p + position] = value
        assert PeriodicityTable.from_dense(n, alphabet, dense, cap) == table

    def test_eviction_below_zero_raises(self):
        store = DenseCountStore(2, 3)
        keys = np.array([0], dtype=np.int64)
        with pytest.raises(AssertionError):
            store.subtract(keys)

"""Tests for repro.convolution.bigint — the exact witness-carrying engines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.convolution import (
    bit_positions,
    convolve_exact,
    pack_bits,
    weighted_convolution_witnesses,
    weighted_convolve_direct,
    weighted_convolve_kronecker,
)


class TestBitPacking:
    def test_pack_simple(self):
        assert pack_bits([0, 2], 4) == 0b101

    def test_pack_empty(self):
        assert pack_bits([], 8) == 0

    def test_pack_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pack_bits([8], 8)
        with pytest.raises(ValueError):
            pack_bits([-1], 8)

    def test_bit_positions_inverse(self):
        assert bit_positions(0b10110).tolist() == [1, 2, 4]

    def test_bit_positions_zero(self):
        assert bit_positions(0).size == 0

    def test_bit_positions_rejects_negative(self):
        with pytest.raises(ValueError):
            bit_positions(-3)

    @settings(max_examples=50, deadline=None)
    @given(positions=st.sets(st.integers(0, 500), max_size=40))
    def test_round_trip(self, positions):
        value = pack_bits(sorted(positions), 501)
        assert set(bit_positions(value).tolist()) == positions

    def test_large_positions(self):
        value = pack_bits([0, 100_000], 100_001)
        assert bit_positions(value).tolist() == [0, 100_000]


class TestExactConvolution:
    def test_known_polynomial_product(self):
        # (1 + 2x + 3x^2)(4 + 5x) = 4 + 13x + 22x^2 + 15x^3
        assert convolve_exact([1, 2, 3], [4, 5]) == [4, 13, 22, 15]

    def test_zero_inputs(self):
        assert convolve_exact([0, 0], [0]) == [0, 0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            convolve_exact([], [1])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            convolve_exact([-1], [1])

    def test_huge_coefficients_remain_exact(self):
        big = 2**200
        assert convolve_exact([big], [big]) == [big * big]

    @settings(max_examples=50, deadline=None)
    @given(
        x=st.lists(st.integers(0, 9), min_size=1, max_size=20),
        y=st.lists(st.integers(0, 9), min_size=1, max_size=20),
    )
    def test_matches_numpy_convolve(self, x, y):
        result = convolve_exact(x, y)
        expected = np.convolve(np.array(x, dtype=np.int64), np.array(y, dtype=np.int64))
        assert result == expected.tolist()


class TestWeightedKronecker:
    @settings(max_examples=40, deadline=None)
    @given(
        bits=st.lists(st.integers(0, 1), min_size=1, max_size=40),
        other=st.lists(st.integers(0, 1), min_size=1, max_size=40),
    )
    def test_matches_direct_reference(self, bits, other):
        n = min(len(bits), len(other))
        x, y = bits[:n], other[:n]
        assert weighted_convolve_kronecker(x, y) == weighted_convolve_direct(x, y)

    def test_general_integer_inputs(self):
        x = [3, 0, 2]
        y = [1, 4, 1]
        assert weighted_convolve_kronecker(x, y) == weighted_convolve_direct(x, y)

    def test_rejects_unequal_lengths(self):
        with pytest.raises(ValueError):
            weighted_convolve_kronecker([1], [1, 0])


class TestWitnessExtraction:
    def test_witnesses_match_component_bits(self):
        rng = np.random.default_rng(7)
        x = rng.integers(0, 2, size=30)
        y = rng.integers(0, 2, size=30)
        witnesses = weighted_convolution_witnesses(x, y)
        components = weighted_convolve_direct(x.tolist(), y.tolist())
        assert len(witnesses) == 30
        for i, component in enumerate(components):
            assert witnesses[i].tolist() == bit_positions(component).tolist()

    def test_ascending_within_component(self):
        x = np.ones(10, dtype=np.int64)
        witnesses = weighted_convolution_witnesses(x, x)
        for w in witnesses:
            assert (np.diff(w) > 0).all()

    def test_all_zero_inputs(self):
        x = np.zeros(6, dtype=np.int64)
        witnesses = weighted_convolution_witnesses(x, x)
        assert all(w.size == 0 for w in witnesses)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            weighted_convolution_witnesses([2, 0], [1, 0])

    def test_rejects_unequal_lengths(self):
        with pytest.raises(ValueError):
            weighted_convolution_witnesses([1], [1, 0])

    @settings(max_examples=30, deadline=None)
    @given(
        x=st.lists(st.integers(0, 1), min_size=2, max_size=30),
    )
    def test_self_convolution_witness_count(self, x):
        """Total witnesses equal total non-zero products sum_j x'_j x_{i-j}."""
        x = np.array(x, dtype=np.int64)
        witnesses = weighted_convolution_witnesses(x, x)
        total = sum(w.size for w in witnesses)
        n = x.size
        expected = sum(
            int(x[j] and x[i - j]) for i in range(n) for j in range(i + 1)
        )
        assert total == expected

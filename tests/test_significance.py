"""Tests for repro.analysis.significance."""

import numpy as np
import pytest

from repro.analysis import (
    binomial_tail,
    score_periodicities,
    significant_periods,
)
from repro.core import SpectralMiner
from repro.data import generate_periodic, generate_random


class TestBinomialTail:
    def test_degenerate_cases(self):
        assert binomial_tail(0, 10, 0.3) == 1.0
        assert binomial_tail(11, 10, 0.3) == 0.0
        assert binomial_tail(3, 10, 0.0) == 0.0
        assert binomial_tail(3, 10, 1.0) == 1.0

    def test_exact_small_case(self):
        # P[X >= 2], X ~ Bin(3, 0.5) = C(3,2)/8 + C(3,3)/8 = 0.5
        assert binomial_tail(2, 3, 0.5) == pytest.approx(0.5)

    def test_full_mass(self):
        # P[X >= 1] = 1 - (1 - p)^n
        assert binomial_tail(1, 5, 0.2) == pytest.approx(1 - 0.8**5)

    def test_monotone_in_successes(self):
        values = [binomial_tail(k, 20, 0.3) for k in range(21)]
        assert values == sorted(values, reverse=True)

    def test_against_scipy(self):
        stats = pytest.importorskip("scipy.stats")
        rng = np.random.default_rng(0)
        for _ in range(25):
            trials = int(rng.integers(1, 200))
            successes = int(rng.integers(0, trials + 1))
            p = float(rng.uniform(0.01, 0.99))
            expected = float(stats.binom.sf(successes - 1, trials, p))
            assert binomial_tail(successes, trials, p) == pytest.approx(
                expected, rel=1e-9, abs=1e-300
            )

    def test_large_trials_fast_and_finite(self):
        value = binomial_tail(900, 100_000, 0.01)
        assert 0.0 <= value <= 1.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            binomial_tail(1, -1, 0.5)
        with pytest.raises(ValueError):
            binomial_tail(1, 10, 1.5)


class TestScoring:
    def test_structural_period_is_significant(self, rng):
        series = generate_periodic(2000, 25, 10, rng=rng)
        table = SpectralMiner(max_period=50).periodicity_table(series)
        scored = score_periodicities(series, table, psi=0.9)
        by_period = {}
        for s in scored:
            by_period.setdefault(s.periodicity.period, min(
                by_period.get(s.periodicity.period, 1.0), s.p_value
            ))
        assert by_period[25] < 1e-10

    def test_trivial_small_projection_not_significant(self, rng):
        # Near n/2 the projection has 1-2 pairs; even F2 = pairs is weak
        # evidence for a frequent symbol.
        series = generate_random(60, 2, rng=rng)
        table = SpectralMiner().periodicity_table(series)
        scored = score_periodicities(series, table, psi=1.0)
        weak = [s for s in scored if s.periodicity.pairs <= 2]
        assert weak and all(s.p_value > 1e-4 for s in weak)

    def test_sorted_by_p_value(self, rng):
        series = generate_periodic(500, 10, 5, rng=rng)
        table = SpectralMiner(max_period=30).periodicity_table(series)
        scored = score_periodicities(series, table, psi=0.5)
        p_values = [s.p_value for s in scored]
        assert p_values == sorted(p_values)

    def test_empty_series(self):
        from repro.core import Alphabet, PeriodicityTable, SymbolSequence

        series = SymbolSequence.from_codes([], Alphabet("ab"))
        table = PeriodicityTable(0, series.alphabet, {})
        assert score_periodicities(series, table, 0.5) == []


class TestSignificantPeriods:
    def test_filters_noise_keeps_structure(self, rng):
        series = generate_periodic(3000, 25, 10, rng=rng)
        table = SpectralMiner(max_period=100).periodicity_table(series)
        raw = table.candidate_periods(0.9)
        significant = significant_periods(series, table, psi=0.9)
        assert 25 in significant
        assert set(significant) <= set(raw)

    def test_random_series_mostly_insignificant(self, rng):
        series = generate_random(500, 4, rng=rng)
        table = SpectralMiner().periodicity_table(series)
        raw = table.candidate_periods(1.0)
        significant = significant_periods(series, table, psi=1.0)
        assert len(significant) < max(len(raw) // 4, 1)

    def test_rejects_bad_alpha(self, rng):
        series = generate_periodic(100, 5, 3, rng=rng)
        table = SpectralMiner().periodicity_table(series)
        with pytest.raises(ValueError):
            significant_periods(series, table, 0.5, alpha=0.0)

"""Execute the docstring examples of the public modules.

The `>>>` examples in the docstrings are documentation; this module
keeps them honest by running them as doctests.
"""

import doctest
import importlib

import numpy as np
import pytest

MODULE_NAMES = [
    "repro.core.alphabet",
    "repro.core.sequence",
    # note: importlib, not attribute access — `repro.core.projection` the
    # *function* shadows the module attribute on the package.
    "repro.core.projection",
    "repro.core.mapping",
    "repro.core.pattern_text",
    "repro.core.results",
    "repro.analysis.calendar",
    "repro.data.noise",
    "repro.data.synthetic",
]

MODULES = [importlib.import_module(name) for name in MODULE_NAMES]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(
        module,
        extraglobs={"np": np},
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert results.failed == 0, f"{results.failed} doctest failure(s)"
    assert results.attempted > 0, f"{module.__name__} lost its examples"

"""Tests for repro.core.alphabet."""

import pytest

from repro.core import Alphabet
from repro.core.alphabet import DEFAULT_SYMBOLS


class TestConstruction:
    def test_codes_follow_order(self):
        sigma = Alphabet("abc")
        assert [sigma.code(s) for s in "abc"] == [0, 1, 2]

    def test_symbols_round_trip(self):
        sigma = Alphabet("xyz")
        assert [sigma.symbol(k) for k in range(3)] == ["x", "y", "z"]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Alphabet("")

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Alphabet("aba")

    def test_non_string_symbols(self):
        sigma = Alphabet([("up",), ("down",)])
        assert sigma.code(("down",)) == 1

    def test_of_size_small(self):
        sigma = Alphabet.of_size(5)
        assert sigma.symbols == tuple("abcde")

    def test_of_size_full_latin(self):
        assert len(Alphabet.of_size(26)) == 26

    def test_of_size_large_names(self):
        sigma = Alphabet.of_size(30)
        assert len(sigma) == 30
        assert sigma.symbol(27) == "s27"

    def test_of_size_rejects_non_positive(self):
        with pytest.raises(ValueError):
            Alphabet.of_size(0)

    def test_from_sequence_orders_by_first_appearance(self):
        sigma = Alphabet.from_sequence("banana")
        assert sigma.symbols == ("b", "a", "n")


class TestLookups:
    def test_encode_decode_round_trip(self):
        sigma = Alphabet("abc")
        codes = sigma.encode("cabba")
        assert codes == [2, 0, 1, 1, 0]
        assert sigma.decode(codes) == list("cabba")

    def test_unknown_symbol_raises(self):
        with pytest.raises(KeyError):
            Alphabet("ab").code("z")

    def test_contains(self):
        sigma = Alphabet("ab")
        assert "a" in sigma
        assert "z" not in sigma

    def test_iteration_order(self):
        assert list(Alphabet("cba")) == ["c", "b", "a"]


class TestEquality:
    def test_equal_same_symbols(self):
        assert Alphabet("abc") == Alphabet("abc")

    def test_order_matters(self):
        assert Alphabet("abc") != Alphabet("acb")

    def test_hashable(self):
        assert len({Alphabet("ab"), Alphabet("ab"), Alphabet("ba")}) == 2

    def test_not_equal_other_types(self):
        assert Alphabet("ab") != "ab"

    def test_repr_mentions_symbols(self):
        assert "abc" in repr(Alphabet("abc"))

    def test_default_symbols_are_lowercase_latin(self):
        assert DEFAULT_SYMBOLS == "abcdefghijklmnopqrstuvwxyz"

"""Tests for repro.baselines (oracle, sketch, trends, Ma-Hellerstein,
Berberidis, Han partial miner)."""

import numpy as np
import pytest

from repro.baselines import (
    Berberidis,
    HanPartialMiner,
    MaHellerstein,
    PeriodicTrends,
    SelfDistanceSketch,
    brute_force_matches,
    brute_force_table,
    chi_squared_threshold,
    exact_self_distances,
    multi_pass_pipeline,
)
from repro.core import SymbolSequence
from repro.data import apply_noise, generate_periodic

from conftest import random_series


class TestBruteForce:
    def test_matches_count(self, paper_series):
        # T vs T^(3): a@0, b@1, a@3, b@4 -> 4 matches
        assert brute_force_matches(paper_series, 3) == 4

    def test_rejects_bad_period(self, paper_series):
        with pytest.raises(ValueError):
            brute_force_matches(paper_series, 0)

    def test_table_supports_paper_example(self, paper_series):
        table = brute_force_table(paper_series)
        assert table.support(3, 0, 0) == pytest.approx(2 / 3)
        assert table.support(3, 1, 1) == pytest.approx(1.0)


class TestSelfDistances:
    def test_exact_definition(self, rng):
        series = random_series(rng, 80, 4)
        distances = exact_self_distances(series, max_shift=20)
        codes = series.codes
        for p in range(1, 21):
            expected = int(np.count_nonzero(codes[:-p] != codes[p:]))
            assert distances[p] == pytest.approx(expected)

    def test_zero_at_lag_zero(self, rng):
        series = random_series(rng, 30, 3)
        assert exact_self_distances(series)[0] == 0.0

    def test_periodic_series_has_zero_distance_at_period(self):
        series = generate_periodic(100, 10, 4, rng=np.random.default_rng(0))
        distances = exact_self_distances(series, max_shift=30)
        assert distances[10] == 0.0
        assert distances[20] == 0.0
        assert distances[7] > 0.0

    def test_sketch_estimates_within_tolerance(self, rng):
        series = random_series(rng, 400, 4)
        exact = exact_self_distances(series, max_shift=50)
        sketch = SelfDistanceSketch(dimensions=256, rng=rng).estimate(
            series, max_shift=50
        )
        # Relative error ~ sqrt(2/256) ~ 9%; allow generous headroom.
        scale = exact[1:].mean()
        assert np.abs(sketch[1:] - exact[1:]).mean() < 0.35 * scale

    def test_sketch_unbiasedness_on_average(self, rng):
        series = random_series(rng, 150, 3)
        exact = exact_self_distances(series, max_shift=10)
        estimates = np.zeros(11)
        for seed in range(12):
            sketch = SelfDistanceSketch(
                dimensions=32, rng=np.random.default_rng(seed)
            )
            estimates += sketch.estimate(series, max_shift=10)
        estimates /= 12
        assert np.abs(estimates[1:] - exact[1:]).mean() < 0.15 * exact[1:].mean()

    def test_sketch_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            SelfDistanceSketch(dimensions=0)


class TestPeriodicTrends:
    def test_exact_ranks_true_period_first_on_clean_data(self):
        series = generate_periodic(300, 12, 5, rng=np.random.default_rng(1))
        result = PeriodicTrends(method="exact").analyse(series)
        # All multiples of 12 have distance zero; the top rank is one of them.
        assert result.top % 12 == 0
        assert result.confidence(result.top) == pytest.approx(1.0)

    def test_large_period_bias_on_noisy_data(self):
        rng = np.random.default_rng(2)
        series = apply_noise(
            generate_periodic(4000, 25, 8, rng=rng), 0.2, "R", rng
        )
        result = PeriodicTrends(method="exact").analyse(series)
        # The paper's Fig. 4 finding: confidence rises with the multiple.
        small = result.confidence(25)
        large = result.confidence(25 * 60)
        assert large > small

    def test_normalization_levels_the_multiples(self):
        rng = np.random.default_rng(3)
        series = apply_noise(
            generate_periodic(4000, 25, 8, rng=rng), 0.2, "R", rng
        )
        raw = PeriodicTrends(method="exact").analyse(series)
        n = series.length
        # Raw distances shrink systematically with the shift; per-position
        # mismatch rates do not — that is what normalize=True ranks by.
        assert raw.distances[25 * 60] < 0.85 * raw.distances[25]
        rate_base = raw.distances[25] / (n - 25)
        rate_far = raw.distances[25 * 60] / (n - 25 * 60)
        assert abs(rate_base - rate_far) < 0.1 * rate_base

    def test_rank_and_confidence_consistency(self, rng):
        series = random_series(rng, 100, 3)
        result = PeriodicTrends(method="exact").analyse(series)
        total = len(result.ranked_periods)
        assert result.confidence(result.ranked_periods[0]) == pytest.approx(1.0)
        assert result.confidence(result.ranked_periods[-1]) == pytest.approx(1 / total)

    def test_sketch_method_finds_strong_period(self):
        series = generate_periodic(1000, 30, 6, rng=np.random.default_rng(4))
        result = PeriodicTrends(
            method="sketch", dimensions=64, rng=np.random.default_rng(5)
        ).analyse(series)
        assert result.confidence(30) > 0.9

    def test_unknown_period_raises(self, rng):
        series = random_series(rng, 40, 3)
        result = PeriodicTrends(method="exact").analyse(series)
        with pytest.raises(ValueError):
            result.rank(10_000)

    def test_rejects_tiny_series(self):
        with pytest.raises(ValueError):
            PeriodicTrends().analyse(SymbolSequence.from_string("a"))

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            PeriodicTrends(method="psychic")


class TestMaHellerstein:
    def test_chi_squared_table(self):
        assert chi_squared_threshold(0.95) == pytest.approx(3.8415)
        with pytest.raises(ValueError):
            chi_squared_threshold(0.5)

    def test_detects_planted_period(self):
        # Symbol 's' every 10 slots in mostly-unique background.
        rng = np.random.default_rng(6)
        codes = rng.integers(1, 5, size=400)
        codes[::10] = 0
        series = SymbolSequence.from_codes(codes, __import__("repro").Alphabet("sabcd"))
        periods = {c.period for c in MaHellerstein().candidates_for_symbol(series, 0)}
        assert 10 in periods

    def test_misses_period_five_paper_example(self):
        """The paper's Sect. 1.1 criticism: adjacent gaps never contain 5."""
        symbols = ["x"] * 12
        for position in (0, 4, 5, 7, 10):
            symbols[position] = "s"
        series = SymbolSequence.from_symbols(symbols)
        detector = MaHellerstein()
        s = series.alphabet.code("s")
        assert detector.adjacent_gaps(series, s).tolist() == [4, 1, 2, 3]
        assert 5 not in {c.period for c in detector.candidates(series)}

    def test_no_occurrences_no_candidates(self):
        series = SymbolSequence.from_string("aaaa", __import__("repro").Alphabet("ab"))
        assert MaHellerstein().candidates_for_symbol(series, 1) == []

    def test_random_data_rarely_flags(self, rng):
        series = random_series(rng, 500, 5)
        candidates = MaHellerstein(confidence=0.99, min_count=3).candidates(series)
        # A handful of false positives are statistically expected, but a
        # random series must not light up across the board.
        assert len(candidates) < 25

    def test_candidate_periods_sorted_unique(self):
        rng = np.random.default_rng(7)
        codes = rng.integers(1, 4, size=300)
        codes[::7] = 0
        series = SymbolSequence.from_codes(codes, __import__("repro").Alphabet("sabc"))
        periods = MaHellerstein().candidate_periods(series)
        assert periods == sorted(set(periods))

    def test_rejects_bad_min_count(self):
        with pytest.raises(ValueError):
            MaHellerstein(min_count=0)


class TestBerberidis:
    def test_detects_planted_period(self):
        series = generate_periodic(600, 15, 5, rng=np.random.default_rng(8))
        periods = Berberidis(max_period=60).candidate_periods(series)
        assert 15 in periods

    def test_hints_sorted_by_score(self):
        series = generate_periodic(400, 10, 4, rng=np.random.default_rng(9))
        hints = Berberidis(max_period=50).hints_for_symbol(series, 0)
        scores = [h.score for h in hints]
        assert scores == sorted(scores, reverse=True)

    def test_no_hints_for_rare_symbol(self):
        series = SymbolSequence.from_string("abababababab", __import__("repro").Alphabet("abc"))
        assert Berberidis().hints_for_symbol(series, 2) == []

    def test_rejects_weak_strength(self):
        with pytest.raises(ValueError):
            Berberidis(strength=1.0)

    def test_multi_pass_pipeline_produces_patterns(self):
        rng = np.random.default_rng(10)
        series = apply_noise(generate_periodic(400, 8, 4, rng=rng), 0.05, "R", rng)
        results = multi_pass_pipeline(series, psi=0.6, detector=Berberidis(max_period=20))
        assert 8 in results
        assert all(p.support >= 0.6 for p in results[8])


class TestHanPartialMiner:
    def test_segments_shape(self, paper_series):
        segments = HanPartialMiner().segments(paper_series, 3)
        assert segments.shape == (3, 3)

    def test_mine_perfectly_periodic(self):
        series = SymbolSequence.from_string("abcabcabcabc")
        patterns = HanPartialMiner(min_confidence=0.9).mine(series, 3)
        full = [p for p in patterns if p.arity == 3]
        assert len(full) == 1
        assert full[0].support == pytest.approx(1.0)

    def test_confidence_counts_segments_not_pairs(self):
        # 'a' appears at position 0 of 2 out of 3 full segments.
        series = SymbolSequence.from_string("axbxaxbxcxbx")
        patterns = HanPartialMiner(min_confidence=0.5).mine(series, 4)
        singles = {(p.items, round(p.support, 3)) for p in patterns if p.arity == 1}
        a = series.alphabet.code("a")
        assert (((0, a),), round(2 / 3, 3)) in singles

    def test_max_arity(self):
        series = SymbolSequence.from_string("abcabcabc")
        patterns = HanPartialMiner(min_confidence=0.9, max_arity=1).mine(series, 3)
        assert max(p.arity for p in patterns) == 1

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            HanPartialMiner(min_confidence=0.0)

    def test_rejects_bad_period(self, paper_series):
        with pytest.raises(ValueError):
            HanPartialMiner().segments(paper_series, 0)

    def test_apriori_soundness(self, rng):
        series = random_series(rng, 60, 3)
        miner = HanPartialMiner(min_confidence=0.4)
        segments = miner.segments(series, 5)
        for pattern in miner.mine(series, 5):
            matching = sum(
                1 for row in segments if pattern.matches_segment(tuple(row))
            )
            assert matching / segments.shape[0] == pytest.approx(pattern.support)

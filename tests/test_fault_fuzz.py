"""Differential fuzzing: the faulted parallel engine vs. serial truth.

Every case mines the same random series twice — once serially, once
through the hardened parallel engine with a seeded random
:class:`repro.faults.FaultPlan` injecting crashes, hard worker exits,
attach failures, hangs, and poisoned results — and requires the two
``F2`` tables to be exactly equal.  The sweep randomises the series
length ``n``, the alphabet size ``sigma``, the threshold ``psi`` (for
the periodicity read-out), the backend, and the fault schedule, all
from one integer seed, so any mismatch is replayable verbatim.

A handful of crafted deterministic cases ride along to guarantee that
each recovery path — per-site retry, process -> thread and
thread -> serial fallback — is exercised at least once per full run;
the final test asserts that coverage over everything the module
observed.
"""

import os
import random

import numpy as np
import pytest

from repro.core import SymbolSequence
from repro.core.convolution_miner import ConvolutionMiner
from repro.core.periodicity import PeriodicityTable
from repro.faults import (
    SITES,
    FallbackEvent,
    FaultEvent,
    FaultPlan,
)
from repro.parallel import ParallelWitnessEngine

pytestmark = pytest.mark.slow

#: seeds in the sweep; CI quick mode runs the default 25.
N_SEEDS = int(os.environ.get("REPRO_FUZZ_SEEDS", "25"))

#: every fault/fallback the module's runs observed, asserted at the end.
OBSERVED: dict[str, set] = {"sites": set(), "actions": set(), "chains": set()}
_CASES_RUN: list[int] = []


def _record(events) -> None:
    for event in events:
        if isinstance(event, FaultEvent):
            OBSERVED["sites"].add(event.site)
            OBSERVED["actions"].add(event.action)
        elif isinstance(event, FallbackEvent):
            OBSERVED["chains"].add((event.from_backend, event.to_backend))


def _workload(rng: random.Random):
    n = rng.randint(40, 400)
    sigma = rng.randint(2, 6)
    series = [rng.randrange(sigma) for _ in range(n)]
    series[: sigma] = range(sigma)  # pin sigma: every symbol occurs
    seq = SymbolSequence.from_symbols(series)
    words = ConvolutionMiner(engine="wordarray")._packed_words(seq)
    return seq, words, n, sigma


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_random_fault_plan_is_differentially_invisible(seed):
    rng = random.Random(seed)
    seq, words, n, sigma = _workload(rng)
    max_period = n // 2
    psi = rng.uniform(0.2, 1.0)
    mode = "process" if seed % 5 == 0 else "thread"
    probe = ParallelWitnessEngine(workers=4, mode=mode).plan(
        max_period, total_bits=words.size * 64
    )
    plan = FaultPlan.random(
        seed, n_shards=len(probe.shards), max_count=4, delay=0.3
    )
    engine = ParallelWitnessEngine(
        workers=4,
        mode=mode,
        shard_timeout=0.1,
        max_retries=2,
        retry_backoff=0.0,
        fault_plan=plan,
    )
    faulted = engine.f2_tables(words, n, sigma, max_period)
    serial = ParallelWitnessEngine(workers=1).f2_tables(
        words, n, sigma, max_period
    )
    assert faulted == serial, (
        f"seed {seed}: faulted table diverged (plan {plan!r})"
    )
    # The psi read-out downstream of the table must agree too.
    faulted_table = PeriodicityTable(n, seq.alphabet, faulted)
    serial_table = PeriodicityTable(n, seq.alphabet, serial)
    assert tuple(faulted_table.periodicities(psi)) == tuple(
        serial_table.periodicities(psi)
    )
    _record(engine.events)
    _CASES_RUN.append(seed)


def _crafted_run(plan, mode="thread", **kwargs):
    rng = random.Random(20040314)
    seq, words, n, sigma = _workload(rng)
    max_period = n // 2
    kwargs.setdefault("workers", 4)
    kwargs.setdefault("retry_backoff", 0.0)
    engine = ParallelWitnessEngine(mode=mode, fault_plan=plan, **kwargs)
    faulted = engine.f2_tables(words, n, sigma, max_period)
    serial = ParallelWitnessEngine(workers=1).f2_tables(
        words, n, sigma, max_period
    )
    assert faulted == serial
    _record(engine.events)
    _CASES_RUN.append(-1)
    return engine.events


class TestCraftedPathCoverage:
    """Deterministic cases that force each recovery path at least once."""

    def test_each_site_recovers_in_a_process_pool(self):
        plan = (
            FaultPlan()
            .with_crash(shard=0)
            .with_attach_failure(shard=1)
            .with_hang(shard=2, delay=1.5)
            .with_poison(shard=3, flavor="alien")
        )
        events = _crafted_run(plan, mode="process", shard_timeout=0.6)
        sites = {e.site for e in events if isinstance(e, FaultEvent)}
        assert len(sites) == 4

    def test_worker_exit_forces_process_to_thread_fallback(self):
        events = _crafted_run(FaultPlan().with_exit(shard=1), mode="process")
        chains = {
            (e.from_backend, e.to_backend)
            for e in events
            if isinstance(e, FallbackEvent)
        }
        assert ("process", "thread") in chains

    def test_exhausted_retries_force_thread_to_serial_fallback(self):
        events = _crafted_run(
            FaultPlan().with_crash(shard=0, count=99), max_retries=1
        )
        chains = {
            (e.from_backend, e.to_backend)
            for e in events
            if isinstance(e, FallbackEvent)
        }
        assert ("thread", "serial") in chains

    def test_full_degradation_process_to_serial(self):
        # Crash every shard forever on both pool backends: the run must
        # walk the whole chain and still return the serial answer.
        events = _crafted_run(
            FaultPlan().with_crash(count=99), mode="process", max_retries=0
        )
        chains = {
            (e.from_backend, e.to_backend)
            for e in events
            if isinstance(e, FallbackEvent)
        }
        assert chains == {("process", "thread"), ("thread", "serial")}


def test_sweep_covered_every_recovery_path():
    """Meta-assertion over everything this module ran."""
    if not _CASES_RUN:
        pytest.skip("no fuzz cases ran in this session")
    # The crafted cases alone guarantee this floor; the random sweep
    # widens it for free.
    assert OBSERVED["sites"] >= set(SITES)
    assert {"retry", "fallback"} <= OBSERVED["actions"]
    assert {("process", "thread"), ("thread", "serial")} <= OBSERVED["chains"]

"""Fault-injection framework and the hardened parallel engine.

Covers the :mod:`repro.faults` package itself (plans, delivery,
events, classification) and every recovery path of
:class:`repro.parallel.ParallelWitnessEngine`: per-shard timeout,
bounded retry, result-integrity rejection, process -> thread -> serial
degradation, result salvage across a fallback, and the
``on_fault="raise"`` abort policy.  The differential sweep lives in
``test_fault_fuzz.py``; this module pins each mechanism individually.
"""

import pickle
import time

import numpy as np
import pytest

from repro.core import Alphabet, SymbolSequence
from repro.core.convolution_miner import ConvolutionMiner
from repro.faults import (
    POISON_FLAVORS,
    RESULT_POISON,
    SHARD_TIMEOUT,
    SHM_ATTACH,
    SITES,
    WORKER_CRASH,
    WORKER_EXIT,
    FallbackEvent,
    FaultEvent,
    FaultInjected,
    FaultPlan,
    Injection,
    PoisonedShard,
    classify_fault,
    fire,
    hang,
    poison,
)
from repro.parallel import (
    FALLBACK_CHAIN,
    FAULT_POLICIES,
    ParallelWitnessEngine,
    ShardFailure,
)


def _packed(series, sigma):
    seq = SymbolSequence.from_symbols(series)
    assert seq.sigma == sigma
    miner = ConvolutionMiner(engine="wordarray")
    return seq, miner._packed_words(seq)


def _serial_reference(words, n, sigma, max_period, count_only):
    engine = ParallelWitnessEngine(workers=1)
    if count_only:
        return engine.f2_tables(words, n, sigma, max_period)
    return engine.witness_sets(words, n, sigma, max_period)


def _witnesses_equal(a, b):
    return set(a) == set(b) and all(np.array_equal(a[p], b[p]) for p in a)


class TestInjection:
    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown injection site"):
            Injection("worker.meltdown")

    def test_rejects_bad_count_shard_delay_flavor(self):
        with pytest.raises(ValueError):
            Injection(WORKER_CRASH, count=0)
        with pytest.raises(ValueError):
            Injection(WORKER_CRASH, shard=-1)
        with pytest.raises(ValueError):
            Injection(SHARD_TIMEOUT, delay=-0.1)
        with pytest.raises(ValueError):
            Injection(RESULT_POISON, flavor="subtle")

    def test_matches_by_site_shard_and_attempt(self):
        injection = Injection(WORKER_CRASH, shard=2, count=2)
        assert injection.matches(WORKER_CRASH, 2, 0)
        assert injection.matches(WORKER_CRASH, 2, 1)
        assert not injection.matches(WORKER_CRASH, 2, 2)  # count exhausted
        assert not injection.matches(WORKER_CRASH, 3, 0)  # other shard
        assert not injection.matches(SHM_ATTACH, 2, 0)  # other site

    def test_wildcard_shard_matches_everywhere(self):
        injection = Injection(WORKER_CRASH)
        assert injection.matches(WORKER_CRASH, 0, 0)
        assert injection.matches(WORKER_CRASH, 99, 0)


class TestFaultPlan:
    def test_builders_accumulate_and_report_sites(self):
        plan = (
            FaultPlan()
            .with_crash(shard=0)
            .with_exit(shard=1)
            .with_attach_failure(shard=2)
            .with_hang(shard=3, delay=0.1)
            .with_poison(shard=4, flavor="alien")
        )
        assert plan.sites == frozenset(SITES)
        assert len(plan.injections) == 5

    def test_match_returns_first_firing_injection(self):
        plan = FaultPlan().with_crash(shard=1).with_crash(shard=None, count=3)
        first = plan.match(WORKER_CRASH, 1, 0)
        assert first is plan.injections[0]
        assert plan.match(WORKER_CRASH, 7, 2) is plan.injections[1]
        assert plan.match(WORKER_CRASH, 7, 3) is None

    def test_random_is_deterministic_in_seed(self):
        a = FaultPlan.random(seed=42, n_shards=8)
        b = FaultPlan.random(seed=42, n_shards=8)
        c = FaultPlan.random(seed=43, n_shards=8)
        assert a == b
        assert a != c  # astronomically unlikely collision

    def test_random_respects_bounds(self):
        for seed in range(30):
            plan = FaultPlan.random(seed, n_shards=5, max_faults=4, max_count=3)
            assert 1 <= len(plan.injections) <= 4
            for injection in plan.injections:
                assert injection.site in SITES
                assert 0 <= injection.shard < 5
                assert 1 <= injection.count <= 3

    def test_random_rejects_empty_shard_range(self):
        with pytest.raises(ValueError, match="n_shards"):
            FaultPlan.random(seed=0, n_shards=0)

    def test_plans_and_exceptions_pickle(self):
        plan = FaultPlan.random(seed=7, n_shards=4)
        assert pickle.loads(pickle.dumps(plan)) == plan
        error = FaultInjected(WORKER_CRASH, 3, 1)
        clone = pickle.loads(pickle.dumps(error))
        assert (clone.site, clone.shard, clone.attempt) == (WORKER_CRASH, 3, 1)


class TestDelivery:
    def test_fire_is_noop_without_plan(self):
        fire(None, WORKER_CRASH, 0, 0)
        hang(None, 0, 0)
        assert poison(None, 0, 0, {1: {}}, 1, 1) == {1: {}}

    def test_fire_raises_fault_injected(self):
        plan = FaultPlan().with_crash(shard=0)
        with pytest.raises(FaultInjected) as excinfo:
            fire(plan, WORKER_CRASH, 0, 0)
        assert excinfo.value.site == WORKER_CRASH
        fire(plan, WORKER_CRASH, 0, 1)  # count exhausted: no-op

    def test_worker_exit_is_noop_outside_child_process(self):
        # In the main process os._exit would kill the interpreter; the
        # guard must turn the injection into a no-op here.
        plan = FaultPlan().with_exit(shard=0)
        fire(plan, WORKER_EXIT, 0, 0)

    def test_hang_sleeps_for_the_planned_delay(self):
        plan = FaultPlan().with_hang(shard=0, delay=0.05)
        start = time.monotonic()
        hang(plan, 0, 0)
        assert time.monotonic() - start >= 0.05
        start = time.monotonic()
        hang(plan, 1, 0)  # other shard: no sleep
        assert time.monotonic() - start < 0.05

    @pytest.mark.parametrize("flavor", POISON_FLAVORS)
    def test_every_poison_flavor_is_detectable(self, flavor):
        from repro.parallel.engine import _shard_result_ok
        from repro.parallel.plan import Shard

        shard = Shard(3, 5)
        clean = {p: {} for p in shard.periods()}
        assert _shard_result_ok(clean, shard, count_only=True)
        plan = FaultPlan().with_poison(shard=0, flavor=flavor)
        corrupted = poison(plan, 0, 0, clean, 3, 5)
        assert corrupted != clean
        assert not _shard_result_ok(corrupted, shard, count_only=True)


class TestClassification:
    def test_injected_faults_carry_their_site(self):
        assert classify_fault(FaultInjected(SHM_ATTACH, 0, 0)) == SHM_ATTACH
        assert classify_fault(PoisonedShard(0, 1, 2)) == RESULT_POISON

    def test_real_failures_map_onto_the_taxonomy(self):
        from concurrent.futures import BrokenExecutor

        assert classify_fault(TimeoutError()) == SHARD_TIMEOUT
        assert classify_fault(BrokenExecutor()) == WORKER_EXIT
        assert classify_fault(FileNotFoundError("gone")) == SHM_ATTACH
        assert classify_fault(RuntimeError("boom")) == WORKER_CRASH

    def test_event_strings_are_informative(self):
        event = FaultEvent(
            site=WORKER_CRASH, shard=2, lo=10, hi=19, attempt=1,
            backend="process", action="retry", error="RuntimeError('x')",
        )
        text = str(event)
        assert "worker.crash" in text and "retry" in text and "shard 2" in text
        fallback = FallbackEvent("process", "thread", "pool broke", 3)
        assert "process -> thread" in str(fallback)


class TestEngineValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="shard_timeout"):
            ParallelWitnessEngine(shard_timeout=0)
        with pytest.raises(ValueError, match="max_retries"):
            ParallelWitnessEngine(max_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            ParallelWitnessEngine(retry_backoff=-0.5)
        with pytest.raises(ValueError, match="on_fault"):
            ParallelWitnessEngine(on_fault="explode")

    def test_registries_are_consistent(self):
        assert FALLBACK_CHAIN == ("process", "thread", "serial")
        assert FAULT_POLICIES == ("fallback", "raise")

    def test_miner_rejects_bad_knobs_eagerly(self):
        with pytest.raises(ValueError, match="on_fault"):
            ConvolutionMiner(engine="parallel", on_fault="explode")
        with pytest.raises(ValueError, match="shard_timeout"):
            ConvolutionMiner(engine="parallel", shard_timeout=-1)


class TestRecoveryPaths:
    """Each recovery mechanism, pinned on the thread backend (fast)."""

    def _engine(self, plan, **kwargs):
        kwargs.setdefault("workers", 4)
        kwargs.setdefault("mode", "thread")
        kwargs.setdefault("retry_backoff", 0.0)
        return ParallelWitnessEngine(fault_plan=plan, **kwargs)

    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(20040314)
        series = rng.integers(0, 4, size=400).tolist()
        seq, words = _packed(series, sigma=4)
        max_period = seq.length // 2
        serial = _serial_reference(
            words, seq.length, seq.sigma, max_period, count_only=True
        )
        return words, seq.length, seq.sigma, max_period, serial

    def test_crash_recovers_by_retry(self, workload):
        words, n, sigma, maxp, serial = workload
        engine = self._engine(FaultPlan().with_crash(shard=0))
        assert engine.f2_tables(words, n, sigma, maxp) == serial
        (event,) = engine.events
        assert isinstance(event, FaultEvent)
        assert (event.site, event.action, event.shard) == (
            WORKER_CRASH, "retry", 0,
        )

    def test_timeout_recovers_by_retry(self, workload):
        words, n, sigma, maxp, serial = workload
        engine = self._engine(
            FaultPlan().with_hang(shard=1, delay=1.0), shard_timeout=0.2
        )
        assert engine.f2_tables(words, n, sigma, maxp) == serial
        (event,) = engine.events
        assert (event.site, event.action) == (SHARD_TIMEOUT, "retry")

    @pytest.mark.parametrize("flavor", POISON_FLAVORS)
    def test_poison_recovers_by_retry(self, workload, flavor):
        words, n, sigma, maxp, serial = workload
        engine = self._engine(FaultPlan().with_poison(shard=2, flavor=flavor))
        assert engine.f2_tables(words, n, sigma, maxp) == serial
        (event,) = engine.events
        assert (event.site, event.action) == (RESULT_POISON, "retry")

    def test_exhausted_retries_fall_back_to_serial(self, workload):
        words, n, sigma, maxp, serial = workload
        engine = self._engine(
            FaultPlan().with_crash(shard=0, count=99), max_retries=1
        )
        assert engine.f2_tables(words, n, sigma, maxp) == serial
        fallbacks = [e for e in engine.events if isinstance(e, FallbackEvent)]
        (fallback,) = fallbacks
        assert (fallback.from_backend, fallback.to_backend) == (
            "thread", "serial",
        )
        # Only the poisoned shard and later arrivals re-dispatch; the
        # completed shards were salvaged.
        assert 1 <= fallback.redispatched
        faults = [e for e in engine.events if isinstance(e, FaultEvent)]
        assert [e.attempt for e in faults] == [0, 1]
        assert faults[-1].action == "fallback"

    def test_raise_policy_aborts(self, workload):
        words, n, sigma, maxp, _ = workload
        engine = self._engine(
            FaultPlan().with_crash(shard=0, count=99),
            max_retries=0,
            on_fault="raise",
        )
        with pytest.raises(ShardFailure, match="exhausted 0 retries"):
            engine.f2_tables(words, n, sigma, maxp)

    def test_events_reset_between_runs(self, workload):
        words, n, sigma, maxp, serial = workload
        engine = self._engine(FaultPlan().with_crash(shard=0))
        engine.f2_tables(words, n, sigma, maxp)
        assert engine.events
        clean = ParallelWitnessEngine(workers=4, mode="thread")
        clean.f2_tables(words, n, sigma, maxp)
        assert clean.events == ()

    def test_witness_sets_recover_identically(self, workload):
        words, n, sigma, maxp, _ = workload
        serial = _serial_reference(words, n, sigma, maxp, count_only=False)
        engine = self._engine(
            FaultPlan().with_crash(shard=0).with_poison(shard=3, flavor="none")
        )
        assert _witnesses_equal(
            engine.witness_sets(words, n, sigma, maxp), serial
        )


class TestProcessRecovery:
    """Process-backend paths: shm attach faults, pool death, salvage."""

    @pytest.fixture(scope="class")
    def workload(self):
        rng = np.random.default_rng(20040314)
        series = rng.integers(0, 4, size=600).tolist()
        seq, words = _packed(series, sigma=4)
        max_period = seq.length // 2
        serial = _serial_reference(
            words, seq.length, seq.sigma, max_period, count_only=True
        )
        return words, seq.length, seq.sigma, max_period, serial

    def test_attach_failure_recovers_by_retry(self, workload):
        words, n, sigma, maxp, serial = workload
        engine = ParallelWitnessEngine(
            workers=4, mode="process", retry_backoff=0.0,
            fault_plan=FaultPlan().with_attach_failure(shard=1),
        )
        assert engine.f2_tables(words, n, sigma, maxp) == serial
        (event,) = engine.events
        assert (event.site, event.action, event.backend) == (
            SHM_ATTACH, "retry", "process",
        )

    def test_worker_exit_degrades_to_thread_backend(self, workload):
        words, n, sigma, maxp, serial = workload
        engine = ParallelWitnessEngine(
            workers=4, mode="process", retry_backoff=0.0,
            fault_plan=FaultPlan().with_exit(shard=5),
        )
        assert engine.f2_tables(words, n, sigma, maxp) == serial
        fallbacks = [e for e in engine.events if isinstance(e, FallbackEvent)]
        (fallback,) = fallbacks
        assert (fallback.from_backend, fallback.to_backend) == (
            "process", "thread",
        )
        plan = engine.plan(maxp, total_bits=words.size * 64)
        # Completed shards were salvaged: strictly fewer than the whole
        # plan went back through the thread backend.
        assert fallback.redispatched < len(plan.shards)

    def test_acceptance_crash_attach_timeout_single_run(self, workload):
        """ISSUE acceptance: one run surviving a worker crash, an shm
        attach failure, and a shard timeout still matches serial."""
        words, n, sigma, maxp, serial = workload
        plan = (
            FaultPlan()
            .with_crash(shard=0)
            .with_attach_failure(shard=1)
            .with_hang(shard=2, delay=2.0)
        )
        engine = ParallelWitnessEngine(
            workers=4, mode="process", shard_timeout=0.75,
            retry_backoff=0.0, fault_plan=plan,
        )
        assert engine.f2_tables(words, n, sigma, maxp) == serial
        sites = {e.site for e in engine.events if isinstance(e, FaultEvent)}
        assert {WORKER_CRASH, SHM_ATTACH, SHARD_TIMEOUT} <= sites
        assert all(
            e.action == "retry"
            for e in engine.events
            if isinstance(e, FaultEvent)
        )


class TestMinerIntegration:
    def test_miner_with_faults_matches_serial_table(self):
        rng = np.random.default_rng(99)
        series = rng.integers(0, 4, size=500).tolist()
        seq = SymbolSequence.from_symbols(series)
        serial = ConvolutionMiner(engine="wordarray").periodicity_table(seq)
        plan = (
            FaultPlan()
            .with_crash(shard=0)
            .with_hang(shard=1, delay=1.0)
            .with_poison(shard=2, flavor="drop")
        )
        miner = ConvolutionMiner(
            engine="parallel", workers=4, shard_timeout=0.4,
            retry_backoff=0.0, fault_plan=plan,
        )
        assert miner.periodicity_table(seq) == serial
        assert {e.site for e in miner.fault_events if isinstance(e, FaultEvent)}

    def test_acceptance_process_backend_through_miner(self):
        """ISSUE acceptance at the API surface: crash + shm attach
        failure + shard timeout in one ``ConvolutionMiner`` run over the
        auto-selected process backend, byte-identical table, events
        reported."""
        rng = np.random.default_rng(20040314)
        alphabet = Alphabet("abcdefghijklmnop")
        codes = rng.integers(0, 16, size=16384)
        seq = SymbolSequence.from_codes(codes, alphabet)
        serial = ConvolutionMiner(
            engine="wordarray", max_period=256
        ).periodicity_table(seq)
        plan = (
            FaultPlan()
            .with_crash(shard=0)
            .with_attach_failure(shard=1)
            .with_hang(shard=2, delay=2.5)
        )
        miner = ConvolutionMiner(
            engine="parallel", max_period=256, workers=4,
            shard_timeout=1.0, retry_backoff=0.0, fault_plan=plan,
        )
        # The planner must actually pick the process backend here, or
        # the shm.attach site can never fire.
        probe = miner._parallel_engine().plan(256, total_bits=16 * 16384)
        assert probe.use_processes
        assert miner.periodicity_table(seq) == serial
        sites = {
            e.site for e in miner.fault_events if isinstance(e, FaultEvent)
        }
        assert {WORKER_CRASH, SHM_ATTACH, SHARD_TIMEOUT} <= sites

    def test_serial_engines_report_no_events(self):
        seq = SymbolSequence.from_string("abcabcabc")
        miner = ConvolutionMiner(engine="bitand")
        miner.periodicity_table(seq)
        assert miner.fault_events == ()

    def test_mine_facade_threads_fault_knobs(self):
        from repro.core import mine

        rng = np.random.default_rng(5)
        series = rng.integers(0, 3, size=200).tolist()
        seq = SymbolSequence.from_symbols(series)
        reference = mine(
            seq, psi=0.5, algorithm="convolution", engine="wordarray",
            periods=[],
        )
        faulted = mine(
            seq,
            psi=0.5,
            algorithm="convolution",
            engine="parallel",
            workers=4,
            shard_timeout=5.0,
            max_retries=3,
            retry_backoff=0.0,
            on_fault="fallback",
            fault_plan=FaultPlan().with_crash(shard=0),
            periods=[],
        )
        assert faulted.table == reference.table
        assert faulted.periodicities == reference.periodicities

    def test_cli_exposes_fault_knobs(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "mine", "series.txt", "--psi", "0.5",
                "--engine", "parallel", "--shard-timeout", "2.5",
                "--max-retries", "4", "--on-fault", "raise",
            ]
        )
        assert args.shard_timeout == 2.5
        assert args.max_retries == 4
        assert args.on_fault == "raise"

    def test_pipeline_accepts_fault_knobs(self):
        from repro.pipeline import PeriodicityPipeline

        pipeline = PeriodicityPipeline(
            algorithm="convolution", engine="parallel",
            shard_timeout=1.0, max_retries=1, on_fault="raise",
        )
        rng = np.random.default_rng(11)
        series = SymbolSequence.from_symbols(
            rng.integers(0, 3, size=120).tolist()
        )
        report = pipeline.run(series)
        assert report.series is series

"""Tests for repro.analysis.forecast."""

import numpy as np
import pytest

from repro.analysis import PeriodicForecaster, evaluate_forecaster
from repro.core import Alphabet, SymbolSequence
from repro.data import apply_noise, generate_periodic, generate_random


class TestFitting:
    def test_discovers_the_period(self, rng):
        series = generate_periodic(400, 9, 5, rng=rng)
        forecaster = PeriodicForecaster(max_period=30).fit(series)
        assert forecaster.period % 9 == 0

    def test_explicit_period_respected(self, rng):
        series = generate_periodic(200, 8, 4, rng=rng)
        forecaster = PeriodicForecaster(period=8).fit(series)
        assert forecaster.period == 8

    def test_unfitted_raises(self):
        forecaster = PeriodicForecaster()
        with pytest.raises(RuntimeError):
            forecaster.predict(3)
        with pytest.raises(RuntimeError):
            _ = forecaster.period

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicForecaster(period=0)
        with pytest.raises(ValueError):
            PeriodicForecaster(smoothing=-1.0)
        with pytest.raises(ValueError):
            PeriodicForecaster().fit(SymbolSequence.from_string("a"))


class TestPrediction:
    def test_perfect_continuation(self, rng):
        pattern = np.array([0, 1, 2, 3, 1])
        series = generate_periodic(200, 5, 4, rng=rng, pattern=pattern)
        forecaster = PeriodicForecaster(period=5).fit(series)
        predicted = forecaster.predict_codes(10)
        expected = [int(pattern[(200 + i) % 5]) for i in range(10)]
        assert predicted.tolist() == expected

    def test_predict_symbols(self, rng):
        series = generate_periodic(100, 4, 3, rng=rng)
        forecaster = PeriodicForecaster(period=4).fit(series)
        symbols = forecaster.predict(4)
        assert symbols == series.alphabet.decode(forecaster.predict_codes(4))

    def test_probabilities_shape_and_normalisation(self, rng):
        series = generate_periodic(120, 6, 4, rng=rng)
        forecaster = PeriodicForecaster(period=6).fit(series)
        probs = forecaster.probabilities(9)
        assert probs.shape == (9, 4)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_horizon_validation(self, rng):
        series = generate_periodic(50, 5, 3, rng=rng)
        forecaster = PeriodicForecaster(period=5).fit(series)
        with pytest.raises(ValueError):
            forecaster.predict_codes(0)


class TestEvaluation:
    def test_beats_baseline_on_periodic_data(self, rng):
        series = apply_noise(
            generate_periodic(3000, 12, 6, rng=rng), 0.1, "R", rng
        )
        evaluation = evaluate_forecaster(series, horizon=300, period=12)
        assert evaluation.accuracy > 0.75
        assert evaluation.lift > 0.3

    def test_matches_baseline_on_random_data(self, rng):
        series = generate_random(2000, 5, rng=rng)
        evaluation = evaluate_forecaster(series, horizon=200, period=7)
        assert abs(evaluation.lift) < 0.15

    def test_discovered_period_evaluation(self, rng):
        series = generate_periodic(1500, 10, 6, rng=rng)
        evaluation = evaluate_forecaster(series, horizon=100, max_period=40)
        assert evaluation.accuracy == pytest.approx(1.0)

    def test_horizon_validation(self, rng):
        series = generate_periodic(50, 5, 3, rng=rng)
        with pytest.raises(ValueError):
            evaluate_forecaster(series, horizon=0)
        with pytest.raises(ValueError):
            evaluate_forecaster(series, horizon=50)

"""Tests for repro.core.candidates — Definition 3 and the Apriori search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConvolutionMiner,
    PeriodicPattern,
    SymbolSequence,
    cartesian_candidates,
    mine_patterns,
    pattern_support,
    segment_match_matrix,
    single_symbol_patterns,
)

from conftest import series_strategy


class TestSegmentMatrix:
    def test_paper_example(self, paper_series):
        # T = abcabbabcb, p = 3: rows compare segments (abc|abb|abc|b).
        matrix = segment_match_matrix(paper_series, 3)
        assert matrix.shape == (3, 3)
        a, b = paper_series.alphabet.code("a"), paper_series.alphabet.code("b")
        assert matrix[0].tolist() == [a, b, -1]   # abc vs abb
        assert matrix[1].tolist() == [a, b, -1]   # abb vs abc
        assert matrix[2].tolist() == [-1, -1, -1]  # abc vs b (only l=0 compares, a vs b)

    def test_row_count_formula(self, paper_series):
        for p in range(1, 8):
            rows = segment_match_matrix(paper_series, p).shape[0]
            assert rows == max(-(-paper_series.length // p) - 1, 0)

    def test_short_series(self):
        series = SymbolSequence.from_string("ab")
        assert segment_match_matrix(series, 5).shape == (0, 5)

    def test_rejects_bad_period(self, paper_series):
        with pytest.raises(ValueError):
            segment_match_matrix(paper_series, 0)

    @settings(max_examples=40, deadline=None)
    @given(series=series_strategy(min_size=3, max_size=40), p=st.integers(1, 8))
    def test_matrix_entries_match_definition(self, series, p):
        matrix = segment_match_matrix(series, p)
        codes = series.codes
        for m in range(matrix.shape[0]):
            for l in range(p):
                j = m * p + l
                if j + p < series.length and codes[j] == codes[j + p]:
                    assert matrix[m, l] == codes[j]
                else:
                    assert matrix[m, l] == -1


class TestSingleSymbolPatterns:
    def test_paper_example(self, paper_series):
        table = ConvolutionMiner().periodicity_table(paper_series)
        patterns = single_symbol_patterns(table, 2 / 3, period=3)
        rendered = {p.to_string(paper_series.alphabet) for p in patterns}
        assert rendered == {"a**", "*b*"}

    def test_supports_follow_definition_2(self, paper_series):
        table = ConvolutionMiner().periodicity_table(paper_series)
        by_string = {
            p.to_string(paper_series.alphabet): p.support
            for p in single_symbol_patterns(table, 2 / 3, period=3)
        }
        assert by_string["a**"] == pytest.approx(2 / 3)
        assert by_string["*b*"] == pytest.approx(1.0)


class TestPatternSupport:
    def test_paper_ab_pattern(self, paper_series):
        matrix = segment_match_matrix(paper_series, 3)
        ab = PeriodicPattern.from_items(3, {0: 0, 1: 1})
        assert pattern_support(ab, matrix) == pytest.approx(2 / 3)

    def test_empty_matrix_zero_support(self):
        pattern = PeriodicPattern.single(3, 0, 0)
        assert pattern_support(pattern, np.empty((0, 3), dtype=np.int64)) == 0.0

    def test_dont_care_pattern_full_support(self, paper_series):
        matrix = segment_match_matrix(paper_series, 3)
        blank = PeriodicPattern(3, (None, None, None))
        assert pattern_support(blank, matrix) == 1.0


class TestCartesianCandidates:
    def test_paper_candidate_set(self, paper_series):
        table = ConvolutionMiner().periodicity_table(paper_series)
        hits = table.periodicities(2 / 3, period=3)
        rendered = {
            p.to_string(paper_series.alphabet)
            for p in cartesian_candidates(hits, 3)
        }
        # S_{3,0} = {a}, S_{3,1} = {b}, S_{3,2} = {} -> a**, *b*, ab*
        assert rendered == {"a**", "*b*", "ab*"}

    def test_cap_guards_explosion(self):
        from repro.core import SymbolPeriodicity

        hits = [
            SymbolPeriodicity(period=40, position=l, symbol_code=k, f2=5, pairs=5)
            for l in range(40)
            for k in range(2)
        ]
        with pytest.raises(ValueError, match="cap"):
            list(cartesian_candidates(hits, 40))


class TestMinePatterns:
    def test_paper_full_result(self, paper_series):
        table = ConvolutionMiner().periodicity_table(paper_series)
        patterns = mine_patterns(paper_series, table, 2 / 3, periods=[3])
        by_string = {
            p.to_string(paper_series.alphabet): p.support for p in patterns
        }
        assert by_string == {
            "a**": pytest.approx(2 / 3),
            "*b*": pytest.approx(1.0),
            "ab*": pytest.approx(2 / 3),
        }

    def test_apriori_matches_cartesian_on_small_input(self, paper_series):
        """Level-wise search finds exactly the supported Cartesian candidates."""
        table = ConvolutionMiner().periodicity_table(paper_series)
        psi = 0.5
        matrix = segment_match_matrix(paper_series, 3)
        hits = table.periodicities(psi, period=3)
        exhaustive = {
            pattern.slots
            for pattern in cartesian_candidates(hits, 3)
            if pattern.arity >= 2 and pattern_support(pattern, matrix) >= psi
        }
        mined = {
            p.slots
            for p in mine_patterns(paper_series, table, psi, periods=[3])
            if p.arity >= 2
        }
        assert mined == exhaustive

    def test_max_arity_caps_depth(self):
        series = SymbolSequence.from_string("abcabcabcabcabc")
        table = ConvolutionMiner().periodicity_table(series)
        capped = mine_patterns(series, table, 0.9, periods=[3], max_arity=2)
        assert max(p.arity for p in capped) == 2
        uncapped = mine_patterns(series, table, 0.9, periods=[3])
        assert max(p.arity for p in uncapped) == 3

    def test_rejects_bad_threshold(self, paper_series):
        table = ConvolutionMiner().periodicity_table(paper_series)
        with pytest.raises(ValueError):
            mine_patterns(paper_series, table, 0.0)

    @settings(max_examples=30, deadline=None)
    @given(series=series_strategy(min_size=6, max_size=40, max_sigma=3))
    def test_anti_monotonicity(self, series):
        """Every mined pattern's support <= each of its single-symbol parts'
        aligned support (the Apriori property of the paper's footnote)."""
        table = ConvolutionMiner().periodicity_table(series)
        psi = 0.4
        patterns = mine_patterns(series, table, psi, max_arity=3)
        matrices = {}
        for pattern in patterns:
            if pattern.arity < 2:
                continue
            matrix = matrices.setdefault(
                pattern.period, segment_match_matrix(series, pattern.period)
            )
            for l, k in pattern.items:
                single = PeriodicPattern.single(pattern.period, l, k)
                assert pattern.support <= pattern_support(single, matrix) + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(series=series_strategy(min_size=6, max_size=40, max_sigma=3))
    def test_all_returned_patterns_meet_threshold(self, series):
        table = ConvolutionMiner().periodicity_table(series)
        psi = 0.5
        for pattern in mine_patterns(series, table, psi, max_arity=3):
            assert pattern.support >= psi - 1e-12

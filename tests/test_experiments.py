"""Tests for repro.experiments — small-scale runs asserting the paper's
qualitative findings (the benchmarks run the full-scale versions)."""

import pytest

from repro.experiments import (
    Fig3Config,
    Fig4Config,
    Fig5Config,
    Fig6Config,
    PAPER_CONFIGS,
    SyntheticConfig,
    Table1Config,
    Table2Config,
    Table3Config,
    format_series,
    format_table,
    render_fig3,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_table1,
    run_table2,
    run_table3,
    select_display_patterns,
)

SMALL_FIG3 = Fig3Config(runs=1, length=5_000, multiples=(1, 2, 3))
SMALL_FIG4 = Fig4Config(
    runs=1, length=4_000, multiples=(1, 10, 40), method="exact", noisy=True
)
SMALL_FIG5 = Fig5Config(sizes=(2_048, 4_096), repeats=1, sketch_dimensions=8)
SMALL_FIG6 = Fig6Config(
    runs=1, length=5_000, ratios=(0.0, 0.3), combos=("R", "D")
)
SMALL_TABLE1 = Table1Config(
    retail_days=120, power_days=200, retail_max_period=200,
    thresholds=(90, 70, 50, 30),
)
SMALL_TABLE2 = Table2Config(retail_days=120, power_days=200, thresholds=(90, 70, 50))
SMALL_TABLE3 = Table3Config(retail_days=120, top=6, max_arity=6)


class TestWorkloads:
    def test_paper_configs_cross(self):
        labels = {c.label for c in PAPER_CONFIGS}
        assert labels == {"U, P=25", "N, P=25", "U, P=32", "N, P=32"}

    def test_periods_for_caps_at_half_length(self):
        config = SyntheticConfig("uniform", 25, length=100)
        assert config.periods_for([1, 2, 3]) == [25, 50]

    def test_periods_for_rejects_all_too_large(self):
        config = SyntheticConfig("uniform", 60, length=100)
        with pytest.raises(ValueError):
            config.periods_for([1])

    def test_multiples_shorthand(self):
        config = SyntheticConfig("normal", 10, length=200)
        assert config.multiples(3) == [10, 20, 30]


class TestFig3:
    def test_inerrant_confidence_is_one(self):
        series = run_fig3(SMALL_FIG3)
        assert set(series) == {c.label for c in PAPER_CONFIGS}
        for curve in series.values():
            for confidence in curve.values():
                assert confidence == pytest.approx(1.0)

    def test_noisy_confidence_high_and_unbiased(self):
        config = Fig3Config(
            runs=1, length=5_000, multiples=(1, 2, 3), noisy=True, noise_ratio=0.15
        )
        series = run_fig3(config)
        for curve in series.values():
            values = list(curve.values())
            assert all(v > 0.6 for v in values)       # paper: above 70%-ish
            assert max(values) - min(values) < 0.15   # unbiased in the period

    def test_render_contains_title_and_labels(self):
        text = render_fig3(SMALL_FIG3)
        assert "Fig. 3" in text and "U, P=25" in text


class TestFig4:
    def test_bias_toward_large_periods(self):
        series = run_fig4(SMALL_FIG4)
        for curve in series.values():
            multiples = sorted(curve)
            assert curve[multiples[-1]] > curve[multiples[0]]


class TestFig5:
    def test_miner_outperforms_trends(self):
        rows = run_fig5(SMALL_FIG5)
        assert len(rows) == 2
        for row in rows:
            assert row.miner_seconds < row.trends_seconds

    def test_rejects_empty_sizes(self):
        with pytest.raises(ValueError):
            run_fig5(Fig5Config(sizes=()))


class TestFig6:
    def test_replacement_degrades_gracefully_deletion_collapses(self):
        series = run_fig6(SMALL_FIG6)
        assert series["R"][0.0] == pytest.approx(1.0)
        assert series["R"][0.3] > 0.4
        assert series["D"][0.3] < 0.3
        assert series["R"][0.3] > series["D"][0.3]


class TestTable1:
    def test_structure_and_nesting(self):
        results = run_table1(SMALL_TABLE1)
        for rows in results.values():
            counts = [r.period_count for r in rows]
            assert counts == sorted(counts)  # thresholds descend, counts grow

    def test_expected_periods_detected(self):
        results = run_table1(SMALL_TABLE1)
        retail_50 = next(
            r for r in results["retail"] if r.threshold_percent == 50
        )
        assert retail_50.period_count > 0
        power_50 = next(r for r in results["power"] if r.threshold_percent == 50)
        assert power_50.period_count > 0

    def test_rejects_empty_thresholds(self):
        with pytest.raises(ValueError):
            run_table1(Table1Config(thresholds=()))


class TestTable2:
    def test_counts_shrink_with_threshold(self):
        results = run_table2(SMALL_TABLE2)
        for rows in results.values():
            counts = {r.threshold_percent: r.pattern_count for r in rows}
            assert counts[90] <= counts[70] <= counts[50]

    def test_retail_overnight_very_low_patterns(self):
        results = run_table2(SMALL_TABLE2)
        at_70 = next(r for r in results["retail"] if r.threshold_percent == 70)
        symbols = {s for s, _ in at_70.sample_patterns}
        assert "a" in symbols  # the very-low overnight hours


class TestTable3:
    def test_patterns_meet_threshold(self):
        result = run_table3(SMALL_TABLE3)
        assert result.patterns
        for pattern in result.patterns:
            assert pattern.support >= SMALL_TABLE3.psi - 1e-9

    def test_display_selection_prefers_deep_patterns(self):
        result = run_table3(SMALL_TABLE3)
        shown = select_display_patterns(result, SMALL_TABLE3.period, SMALL_TABLE3.top)
        assert shown
        arities = [p.arity for p in shown]
        assert arities == sorted(arities, reverse=True) or len(set(arities)) > 1
        assert all(p.arity >= 2 for p in shown)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.500" in text

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series_missing_points(self):
        text = format_series({"x": {1: 0.5}, "y": {2: 0.7}}, "k", "v")
        assert "-" in text

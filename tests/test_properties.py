"""Cross-module property-based invariants (hypothesis).

The deep consistency net: relations that must hold between *different*
subsystems, on arbitrary series, independent of the examples the unit
tests pin.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import brute_force_table, exact_self_distances
from repro.core import (
    Alphabet,
    ConvolutionMiner,
    SpectralMiner,
    SymbolSequence,
    mine_patterns,
    pattern_support,
    segment_match_matrix,
    segment_supports,
)
from repro.streaming import OnlineMiner, SlidingWindowMiner

from conftest import series_strategy


@settings(max_examples=40, deadline=None)
@given(series=series_strategy(min_size=3, max_size=50))
def test_segment_support_complements_self_distance(series):
    """segment_support(p) * (n-p) + D(p) == n - p for every shift."""
    supports = segment_supports(series)
    distances = exact_self_distances(series, max_shift=supports.size - 1)
    n = series.length
    for p in range(1, supports.size):
        matches = supports[p] * (n - p)
        assert matches + distances[p] == pytest.approx(n - p)


@settings(max_examples=40, deadline=None)
@given(series=series_strategy(min_size=4, max_size=40))
def test_confidence_never_exceeds_segment_evidence_bound(series):
    """A symbol's F2 at (p, l) is bounded by the total matches at p."""
    table = SpectralMiner().periodicity_table(series)
    counts = SpectralMiner().match_counts(series)
    for p in table.periods:
        if p >= counts.shape[1]:
            continue
        for (k, l), f2 in table.counts_for(p).items():
            assert f2 <= counts[k, p]


@settings(max_examples=30, deadline=None)
@given(
    series=series_strategy(min_size=4, max_size=40),
    split=st.integers(1, 39),
)
def test_prefix_online_equals_batch(series, split):
    """Online mining any prefix equals batch mining that prefix."""
    split = min(split, series.length)
    cap = max(series.length // 3, 1)
    online = OnlineMiner(series.alphabet, max_period=cap)
    online.extend_codes(series.codes[:split])
    prefix = series[:split]
    assert online.table() == SpectralMiner(max_period=cap).periodicity_table(prefix)


@settings(max_examples=30, deadline=None)
@given(series=series_strategy(min_size=3, max_size=60))
def test_window_covering_whole_stream_equals_online(series):
    """A sliding window at least as long as the stream forgets nothing."""
    cap = max(series.length // 4, 1)
    window = series.length + 5
    sliding = SlidingWindowMiner(series.alphabet, max_period=cap, window=window)
    online = OnlineMiner(series.alphabet, max_period=cap)
    sliding.extend_codes(series.codes)
    online.extend_codes(series.codes)
    assert sliding.table() == online.table()


@settings(max_examples=30, deadline=None)
@given(series=series_strategy(min_size=6, max_size=40, max_sigma=3))
def test_mined_pattern_supports_recount_exactly(series):
    """Every mined multi-symbol support equals an independent recount."""
    table = ConvolutionMiner().periodicity_table(series)
    for pattern in mine_patterns(series, table, psi=0.4, max_arity=3):
        if pattern.arity < 2:
            continue
        matrix = segment_match_matrix(series, pattern.period)
        assert pattern.support == pytest.approx(pattern_support(pattern, matrix))


@settings(max_examples=30, deadline=None)
@given(series=series_strategy(min_size=2, max_size=40))
def test_reversal_preserves_match_totals(series):
    """Reversing the series preserves every per-symbol shifted-match
    count (pairs just swap roles)."""
    reversed_series = SymbolSequence.from_codes(
        series.codes[::-1].copy(), series.alphabet
    )
    forward = SpectralMiner().match_counts(series)
    backward = SpectralMiner().match_counts(reversed_series)
    np.testing.assert_array_equal(forward, backward)


@settings(max_examples=30, deadline=None)
@given(
    series=series_strategy(min_size=2, max_size=30),
    repeats=st.integers(2, 4),
)
def test_tiling_makes_length_a_perfect_period(series, repeats):
    """Concatenating a series with itself k times makes n a period with
    confidence 1 (every symbol repeats exactly n apart)."""
    tiled = series
    for _ in range(repeats - 1):
        tiled = tiled.concatenated(series)
    table = SpectralMiner(max_period=series.length).periodicity_table(tiled)
    assert table.confidence(series.length) == pytest.approx(1.0)


@settings(max_examples=25, deadline=None)
@given(series=series_strategy(min_size=4, max_size=30))
def test_table_merge_equals_counts_addition(series):
    """Merging a table with itself doubles every count."""
    table = ConvolutionMiner().periodicity_table(series)
    merged = table.merged_with(table)
    assert merged.n == 2 * table.n
    for p in table.periods:
        for key, value in table.counts_for(p).items():
            assert merged.counts_for(p)[key] == 2 * value


@settings(max_examples=25, deadline=None)
@given(series=series_strategy(min_size=4, max_size=36))
def test_periodicities_are_exactly_the_thresholded_table(series):
    """periodicities(psi) is precisely the set of table cells whose
    support clears psi — no more, no fewer."""
    table = brute_force_table(series)
    psi = 0.5
    reported = {
        (h.period, h.position, h.symbol_code) for h in table.periodicities(psi)
    }
    expected = set()
    for p in table.periods:
        for (k, l), _ in table.counts_for(p).items():
            if table.support(p, k, l) >= psi:
                expected.add((p, l, k))
    assert reported == expected


@settings(max_examples=20, deadline=None)
@given(
    series=series_strategy(min_size=8, max_size=40),
    block=st.integers(2, 16),
)
def test_out_of_core_blocking_invariance(series, block):
    """Any block size gives the identical out-of-core table."""
    from repro.streaming import ChunkedReader

    cap = max(series.length // 3, 1)
    miner = SpectralMiner(max_period=cap)
    reader = ChunkedReader(series, block_size=block)
    streamed = miner.periodicity_table_out_of_core(iter(reader), series)
    assert streamed == miner.periodicity_table(series)

"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core import Alphabet, SymbolSequence


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG per test."""
    return np.random.default_rng(20040314)


@pytest.fixture
def paper_series() -> SymbolSequence:
    """The paper's running example ``abcabbabcb``."""
    return SymbolSequence.from_string("abcabbabcb")


@pytest.fixture
def mapping_series() -> SymbolSequence:
    """The paper's mapping-scheme example ``acccabb``."""
    return SymbolSequence.from_string("acccabb")


def random_series(
    rng: np.random.Generator, n: int, sigma: int
) -> SymbolSequence:
    """An i.i.d. uniform series for randomised equivalence checks."""
    codes = rng.integers(0, sigma, size=n)
    return SymbolSequence.from_codes(codes.astype(np.int64), Alphabet.of_size(sigma))


# -- hypothesis strategies -----------------------------------------------------

def series_strategy(
    min_size: int = 2, max_size: int = 60, max_sigma: int = 5
) -> st.SearchStrategy[SymbolSequence]:
    """Random small symbol sequences (alphabet fixed by max_sigma)."""
    return st.integers(1, max_sigma).flatmap(
        lambda sigma: st.lists(
            st.integers(0, sigma - 1), min_size=min_size, max_size=max_size
        ).map(
            lambda codes: SymbolSequence.from_codes(
                np.array(codes, dtype=np.int64), Alphabet.of_size(sigma)
            )
        )
    )

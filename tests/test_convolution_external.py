"""Tests for repro.convolution.external — out-of-core kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.convolution import (
    blocked_match_counts,
    convolve_overlap_add,
    rechunk,
)


def _chunks(array: np.ndarray, sizes: list[int]):
    start = 0
    for size in sizes:
        yield array[start : start + size]
        start += size
    if start < array.size:
        yield array[start:]


class TestRechunk:
    def test_even_split(self):
        blocks = list(rechunk([np.arange(10)], 5))
        assert [b.tolist() for b in blocks] == [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]

    def test_merges_small_inputs(self):
        blocks = list(rechunk([np.array([1]), np.array([2, 3]), np.array([4])], 3))
        assert [b.tolist() for b in blocks] == [[1, 2, 3], [4]]

    def test_tail_shorter(self):
        blocks = list(rechunk([np.arange(7)], 4))
        assert [len(b) for b in blocks] == [4, 3]

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            list(rechunk([np.arange(3)], 0))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            list(rechunk([np.zeros((2, 2))], 2))

    def test_concatenation_preserved(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 9, size=57)
        blocks = list(rechunk(_chunks(data, [3, 11, 20, 1]), 8))
        assert np.concatenate(blocks).tolist() == data.tolist()


class TestOverlapAdd:
    def test_matches_numpy_convolve(self):
        rng = np.random.default_rng(1)
        signal = rng.normal(size=1000)
        kernel = rng.normal(size=37)
        streamed = np.concatenate(
            list(convolve_overlap_add(_chunks(signal, [333, 333]), kernel, block_size=128))
        )
        np.testing.assert_allclose(streamed, np.convolve(signal, kernel), atol=1e-8)

    def test_single_tiny_block(self):
        out = np.concatenate(
            list(convolve_overlap_add([np.array([1.0, 2.0])], np.array([1.0, 1.0])))
        )
        np.testing.assert_allclose(out, [1.0, 3.0, 2.0])

    def test_kernel_longer_than_blocks(self):
        rng = np.random.default_rng(2)
        signal = rng.normal(size=64)
        kernel = rng.normal(size=48)
        streamed = np.concatenate(
            list(convolve_overlap_add(_chunks(signal, [16] * 4), kernel, block_size=16))
        )
        np.testing.assert_allclose(streamed, np.convolve(signal, kernel), atol=1e-8)

    def test_rejects_empty_kernel(self):
        with pytest.raises(ValueError):
            list(convolve_overlap_add([np.ones(4)], np.array([])))

    def test_rejects_empty_signal(self):
        with pytest.raises(ValueError):
            list(convolve_overlap_add([], np.ones(3)))


class TestBlockedMatchCounts:
    def _reference(self, codes: np.ndarray, sigma: int, max_lag: int) -> np.ndarray:
        out = np.zeros((sigma, max_lag + 1), dtype=np.int64)
        n = codes.size
        for k in range(sigma):
            for p in range(max_lag + 1):
                if p == 0:
                    out[k, 0] = int(np.count_nonzero(codes == k))
                elif p < n:
                    out[k, p] = int(
                        np.count_nonzero((codes[:-p] == k) & (codes[p:] == k))
                    )
        return out

    def test_matches_reference_single_block(self):
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 4, size=200)
        counts = blocked_match_counts([codes], 4, 20)
        np.testing.assert_array_equal(counts, self._reference(codes, 4, 20))

    def test_matches_reference_many_blocks(self):
        rng = np.random.default_rng(4)
        codes = rng.integers(0, 3, size=500)
        counts = blocked_match_counts(
            _chunks(codes, [100, 57, 200, 99]), 3, 40, block_size=64
        )
        np.testing.assert_array_equal(counts, self._reference(codes, 3, 40))

    def test_block_size_smaller_than_lag_is_fixed_up(self):
        rng = np.random.default_rng(5)
        codes = rng.integers(0, 2, size=120)
        counts = blocked_match_counts(_chunks(codes, [10] * 12), 2, 30, block_size=8)
        np.testing.assert_array_equal(counts, self._reference(codes, 2, 30))

    def test_lag_zero_counts_occurrences(self):
        codes = np.array([0, 1, 0, 0, 1])
        counts = blocked_match_counts([codes], 2, 0)
        assert counts[:, 0].tolist() == [3, 2]

    def test_rejects_out_of_range_codes(self):
        with pytest.raises(ValueError):
            blocked_match_counts([np.array([0, 5])], 2, 1)

    def test_rejects_negative_lag(self):
        with pytest.raises(ValueError):
            blocked_match_counts([np.array([0])], 1, -1)

    @settings(max_examples=25, deadline=None)
    @given(
        codes=st.lists(st.integers(0, 2), min_size=2, max_size=120),
        block=st.integers(4, 40),
        max_lag=st.integers(1, 25),
    )
    def test_blocking_invariance(self, codes, block, max_lag):
        """Any chunking produces the same counts as one-shot counting."""
        codes = np.array(codes, dtype=np.int64)
        counts = blocked_match_counts(
            _chunks(codes, [block] * (codes.size // block + 1)),
            3,
            max_lag,
            block_size=block,
        )
        np.testing.assert_array_equal(counts, self._reference(codes, 3, max_lag))

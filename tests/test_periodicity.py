"""Tests for repro.core.periodicity."""

import pytest

from repro.core import Alphabet, PeriodicityTable, SymbolPeriodicity


@pytest.fixture
def abc() -> Alphabet:
    return Alphabet("abc")


@pytest.fixture
def table(abc) -> PeriodicityTable:
    # Matches the evidence of T = "abcabbabcb" at p=3 (plus a p=4 entry).
    return PeriodicityTable(
        10,
        abc,
        {
            3: {(0, 0): 2, (1, 1): 2},
            4: {(1, 1): 2},
        },
    )


class TestSymbolPeriodicity:
    def test_support(self):
        hit = SymbolPeriodicity(period=3, position=0, symbol_code=0, f2=2, pairs=3)
        assert hit.support == pytest.approx(2 / 3)

    def test_support_zero_pairs(self):
        hit = SymbolPeriodicity(3, 0, 0, 0, 0)
        assert hit.support == 0.0

    def test_symbol_resolution(self, abc):
        hit = SymbolPeriodicity(3, 1, 1, 2, 2)
        assert hit.symbol(abc) == "b"

    def test_ordering_by_fields(self):
        a = SymbolPeriodicity(2, 0, 0, 1, 1)
        b = SymbolPeriodicity(3, 0, 0, 1, 1)
        assert a < b


class TestTableQueries:
    def test_f2_lookup(self, table):
        assert table.f2(3, 0, 0) == 2
        assert table.f2(3, 2, 0) == 0
        assert table.f2(7, 0, 0) == 0

    def test_support_uses_projection_pairs(self, table):
        # (a, p=3, l=0): pairs = ceil(10/3)-1 = 3
        assert table.support(3, 0, 0) == pytest.approx(2 / 3)
        # (b, p=3, l=1): pairs = ceil(9/3)-1 = 2
        assert table.support(3, 1, 1) == pytest.approx(1.0)

    def test_periods_listing(self, table):
        assert table.periods == [3, 4]

    def test_counts_for_returns_copy(self, table):
        counts = table.counts_for(3)
        counts[(9, 9)] = 1
        assert table.counts_for(3) == {(0, 0): 2, (1, 1): 2}

    def test_periodicities_threshold(self, table):
        hits = table.periodicities(0.9)
        assert [(h.period, h.symbol_code) for h in hits] == [(3, 1), (4, 1)]

    def test_periodicities_lower_threshold_nests(self, table):
        strict = set(
            (h.period, h.position, h.symbol_code) for h in table.periodicities(0.9)
        )
        loose = set(
            (h.period, h.position, h.symbol_code) for h in table.periodicities(0.5)
        )
        assert strict <= loose

    def test_periodicities_for_single_period(self, table):
        hits = table.periodicities(0.5, period=3)
        assert {h.symbol_code for h in hits} == {0, 1}

    def test_periodicities_min_pairs_filter(self, table):
        # (b, p=4, l=1) has pairs = ceil(9/4)-1 = 2: filtered at min_pairs=3.
        assert table.periodicities(0.5, period=4, min_pairs=3) == []
        assert len(table.periodicities(0.5, period=4, min_pairs=2)) == 1

    def test_periodicities_rejects_bad_threshold(self, table):
        with pytest.raises(ValueError):
            table.periodicities(0.0)
        with pytest.raises(ValueError):
            table.periodicities(1.5)

    def test_periodicities_rejects_bad_min_pairs(self, table):
        with pytest.raises(ValueError):
            table.periodicities(0.5, min_pairs=0)

    def test_candidate_periods(self, table):
        assert table.candidate_periods(0.9) == [3, 4]
        assert table.candidate_periods(0.67) == [3, 4]

    def test_confidence_is_best_support(self, table):
        assert table.confidence(3) == pytest.approx(1.0)
        assert table.confidence(7) == 0.0

    def test_zero_counts_dropped(self, abc):
        t = PeriodicityTable(10, abc, {3: {(0, 0): 0}})
        assert t.periods == []


class TestTableMerge:
    def test_merge_sums_counts(self, abc):
        left = PeriodicityTable(6, abc, {2: {(0, 0): 2}})
        right = PeriodicityTable(4, abc, {2: {(0, 0): 1, (1, 1): 1}})
        merged = left.merged_with(right)
        assert merged.n == 10
        assert merged.f2(2, 0, 0) == 3
        assert merged.f2(2, 1, 1) == 1

    def test_merge_rejects_other_alphabets(self, abc):
        left = PeriodicityTable(6, abc, {})
        right = PeriodicityTable(4, Alphabet("xy"), {})
        with pytest.raises(ValueError):
            left.merged_with(right)


class TestTableEquality:
    def test_equal_tables(self, abc):
        a = PeriodicityTable(10, abc, {3: {(0, 0): 2}})
        b = PeriodicityTable(10, abc, {3: {(0, 0): 2}})
        assert a == b

    def test_zero_entries_ignored_in_equality(self, abc):
        a = PeriodicityTable(10, abc, {3: {(0, 0): 2}, 4: {}})
        b = PeriodicityTable(10, abc, {3: {(0, 0): 2}})
        assert a == b

    def test_unequal_different_counts(self, abc):
        a = PeriodicityTable(10, abc, {3: {(0, 0): 2}})
        b = PeriodicityTable(10, abc, {3: {(0, 0): 1}})
        assert a != b

    def test_repr(self, table):
        assert "PeriodicityTable" in repr(table)

"""Tests for repro.lint — framework, CLI, suppressions, and the meta-gate.

Per-rule fixture tests (each known-bad snippet must trigger, each
known-good must not) live in ``test_lint_rules.py``; this module covers
the shared machinery plus the repo-level acceptance gates: the analyzer
runs clean over ``src/`` and the annotation gate runs clean over the
strict typing targets.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.lint import (
    FileContext,
    Finding,
    all_rules,
    collect_files,
    lint_paths,
    lint_sources,
    main,
)
from repro.lint.annotations import check_annotations
from repro.lint.framework import parse_suppressions

REPO = Path(__file__).resolve().parent.parent

BAD_UINT64 = """
import numpy as np

def clobber(words):
    words = np.asarray(words, dtype=np.uint64)
    return words & 0xFF
"""


def _findings(source, path="src/fixture.py", select=None):
    ctx = FileContext.from_source(source, path)
    return lint_sources([ctx], select=select)


class TestSuppressions:
    def test_named_rule_suppressed(self):
        src = BAD_UINT64.replace(
            "return words & 0xFF",
            "return words & 0xFF  # repro-lint: ignore[RL001]",
        )
        assert _findings(src) == []

    def test_rule_list_suppressed(self):
        src = BAD_UINT64.replace(
            "return words & 0xFF",
            "return words & 0xFF  # repro-lint: ignore[RL001, RL002]",
        )
        assert _findings(src) == []

    def test_bare_ignore_suppresses_everything(self):
        src = BAD_UINT64.replace(
            "return words & 0xFF",
            "return words & 0xFF  # repro-lint: ignore",
        )
        assert _findings(src) == []

    def test_wrong_rule_id_does_not_suppress(self):
        src = BAD_UINT64.replace(
            "return words & 0xFF",
            "return words & 0xFF  # repro-lint: ignore[RL005]",
        )
        findings = _findings(src)
        assert [f.rule for f in findings] == ["RL001"]

    def test_suppression_only_applies_to_its_line(self):
        src = BAD_UINT64 + (
            "\ndef again(words):\n"
            "    words = np.asarray(words, dtype=np.uint64)\n"
            "    return words | 1\n"
        )
        src = src.replace(
            "return words & 0xFF",
            "return words & 0xFF  # repro-lint: ignore[RL001]",
        )
        findings = _findings(src)
        assert len(findings) == 1
        assert findings[0].rule == "RL001"

    def test_parser_handles_case_and_spacing(self):
        out = parse_suppressions("x = 1  #  repro-lint:  ignore[rl001]\n")
        assert out == {1: frozenset({"RL001"})}


class TestFramework:
    def test_findings_sort_by_position(self):
        a = Finding("b.py", 1, 1, "RL001", "m")
        b = Finding("a.py", 9, 1, "RL001", "m")
        assert sorted([a, b]) == [b, a]

    def test_render_format(self):
        finding = Finding("x.py", 3, 7, "RL001", "boom")
        assert finding.render() == "x.py:3:7: RL001 boom"

    def test_rule_ids_unique_and_complete(self):
        ids = [rule.id for rule in all_rules()]
        assert len(ids) == len(set(ids))
        assert {"RL001", "RL002", "RL003", "RL004", "RL005"} <= set(ids)

    def test_every_rule_has_metadata(self):
        for rule in all_rules():
            assert rule.id and rule.name and rule.rationale

    def test_select_filters_rules(self):
        findings = _findings(BAD_UINT64, select=["RL002"])
        assert findings == []
        findings = _findings(BAD_UINT64, select=["RL001"])
        assert [f.rule for f in findings] == ["RL001"]


class TestCollection:
    def test_collect_splits_python_and_markdown(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "b.md").write_text("# hi\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "c.py").write_text("x = 1\n")
        python, markdown = collect_files([tmp_path])
        assert [p.name for p in python] == ["a.py"]
        assert [p.name for p in markdown] == ["b.md"]

    def test_syntax_error_reported_as_parse_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings = lint_paths([bad])
        assert len(findings) == 1
        assert findings[0].rule == "PARSE"


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(clean)]) == 0

    def test_findings_exit_nonzero_and_print(self, tmp_path, capsys):
        bad = tmp_path / "src" / "bad.py"
        bad.parent.mkdir()
        bad.write_text(BAD_UINT64)
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RL001" in out
        assert "bad.py" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
            assert rule_id in out


class TestRepoGates:
    """The acceptance criteria, as tests the suite enforces forever."""

    def test_lint_runs_clean_on_src(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src"],
            cwd=REPO,
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert result.returncode == 0, result.stdout + result.stderr

    def test_lint_runs_clean_on_tests_and_docs(self):
        findings = lint_paths(
            [REPO / "src", REPO / "tests", REPO / "docs", REPO / "README.md"]
        )
        assert findings == [], [f.render() for f in findings]

    def test_annotation_gate_clean_on_strict_targets(self):
        findings = check_annotations(
            [
                REPO / "src" / "repro" / "core",
                REPO / "src" / "repro" / "convolution",
                REPO / "src" / "repro" / "parallel",
                REPO / "src" / "repro" / "lint",
                REPO / "src" / "repro" / "pipeline.py",
                REPO / "src" / "repro" / "cli.py",
            ]
        )
        assert findings == [], [f.render() for f in findings]


class TestAnnotationGate:
    def test_flags_missing_param_and_return(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("def f(x):\n    return x\n")
        findings = check_annotations([target])
        assert len(findings) == 1
        assert "x" in findings[0].message
        assert "return" in findings[0].message

    def test_methods_exempt_self_but_not_params(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "class C:\n"
            "    def ok(self) -> None: ...\n"
            "    def bad(self, y): ...\n"
        )
        findings = check_annotations([target])
        assert len(findings) == 1
        assert "'bad'" in findings[0].message
        assert "self" not in findings[0].message

    def test_varargs_must_be_annotated(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("def f(*args, **kw) -> None: ...\n")
        findings = check_annotations([target])
        assert len(findings) == 1
        assert "*args" in findings[0].message
        assert "**kw" in findings[0].message

    def test_fully_annotated_passes(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(
            "def f(x: int, *a: str, **k: float) -> int:\n    return x\n"
        )
        assert check_annotations([target]) == []

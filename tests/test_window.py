"""Tests for repro.streaming.window — the sliding-window miner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Alphabet, SpectralMiner, SymbolSequence
from repro.streaming import SlidingWindowMiner


def _batch_window(codes: np.ndarray, end: int, window: int, cap: int):
    start = max(end - window, 0)
    series = SymbolSequence.from_codes(codes[start:end], Alphabet.of_size(3))
    return SpectralMiner(max_period=cap).periodicity_table(series)


class TestEquivalence:
    def test_matches_batch_at_every_step(self, rng):
        codes = rng.integers(0, 3, size=150)
        miner = SlidingWindowMiner(Alphabet.of_size(3), max_period=10, window=40)
        for i, code in enumerate(codes):
            miner.append_code(int(code))
            if i % 13 == 0 or i == len(codes) - 1:
                assert miner.table() == _batch_window(codes, i + 1, 40, 10)

    @settings(max_examples=25, deadline=None)
    @given(
        codes=st.lists(st.integers(0, 2), min_size=1, max_size=120),
        window=st.integers(5, 40),
        cap=st.integers(1, 15),
    )
    def test_final_state_matches_batch_property(self, codes, window, cap):
        if cap >= window:
            cap = window - 1
        if cap < 1:
            return
        codes = np.array(codes, dtype=np.int64)
        miner = SlidingWindowMiner(Alphabet.of_size(3), max_period=cap, window=window)
        miner.extend_codes(codes)
        assert miner.table() == _batch_window(codes, codes.size, window, cap)

    def test_window_forgets_old_structure(self, rng):
        # Periodic prefix then random tail longer than the window: once the
        # tail fills the window, the old period's confidence decays.
        alphabet = Alphabet.of_size(3)
        periodic = np.tile(np.array([0, 1, 2, 1]), 30)  # period 4
        random_tail = rng.integers(0, 3, size=80)
        miner = SlidingWindowMiner(alphabet, max_period=8, window=60)
        miner.extend_codes(periodic)
        strong = miner.confidence(4)
        miner.extend_codes(random_tail)
        weak = miner.confidence(4)
        assert strong == pytest.approx(1.0)
        assert weak < 0.6


class TestBookkeeping:
    def test_counts_never_negative(self, rng):
        miner = SlidingWindowMiner(Alphabet.of_size(2), max_period=6, window=10)
        miner.extend_codes(rng.integers(0, 2, size=500))  # would raise on bug

    def test_size_and_start(self):
        miner = SlidingWindowMiner(Alphabet("ab"), max_period=2, window=5)
        miner.extend_codes([0, 1, 0])
        assert miner.size == 3 and miner.start == 0
        miner.extend_codes([1, 0, 1, 0])
        assert miner.size == 5 and miner.start == 2
        assert miner.n == 7

    def test_append_by_symbol(self):
        miner = SlidingWindowMiner(Alphabet("ab"), max_period=2, window=6)
        for s in "ababab":
            miner.append(s)
        assert miner.confidence(2) == pytest.approx(1.0)

    def test_periodicities_query(self):
        miner = SlidingWindowMiner(Alphabet("ab"), max_period=3, window=10)
        miner.extend_codes([0, 1] * 5)
        assert any(h.period == 2 for h in miner.periodicities(0.9))


class TestValidation:
    def test_rejects_bad_max_period(self):
        with pytest.raises(ValueError):
            SlidingWindowMiner(Alphabet("ab"), max_period=0, window=5)

    def test_rejects_window_not_exceeding_period(self):
        with pytest.raises(ValueError):
            SlidingWindowMiner(Alphabet("ab"), max_period=5, window=5)

    def test_rejects_bad_code(self):
        miner = SlidingWindowMiner(Alphabet("ab"), max_period=2, window=5)
        with pytest.raises(ValueError):
            miner.append_code(9)

    def test_confidence_beyond_cap(self):
        miner = SlidingWindowMiner(Alphabet("ab"), max_period=2, window=5)
        with pytest.raises(ValueError):
            miner.confidence(3)

"""Tests for repro.pipeline and repro.data.traces."""

import numpy as np
import pytest

from repro import PeriodicityPipeline
from repro.data import SeasonalTrace, ThresholdDiscretizer


class TestSeasonalTrace:
    def test_length_and_determinism(self):
        trace = SeasonalTrace(length=300)
        a = trace.values(np.random.default_rng(1))
        b = trace.values(np.random.default_rng(1))
        assert a.size == 300
        np.testing.assert_array_equal(a, b)

    def test_seasonal_period_lcm(self):
        trace = SeasonalTrace(profiles=((1.0,) * 6, (0.0,) * 4))
        assert trace.seasonal_period == 12

    def test_trend_moves_the_mean(self):
        flat = SeasonalTrace(length=500, trend=0.0, noise_sd=0.0)
        drifting = SeasonalTrace(length=500, trend=0.05, noise_sd=0.0)
        assert drifting.values().mean() > flat.values().mean()

    def test_regime_shift(self):
        trace = SeasonalTrace(
            length=200, profiles=((0.0,),), noise_sd=0.0,
            regime_shift_at=100, regime_shift_size=50.0,
        )
        values = trace.values()
        assert values[150] - values[50] == pytest.approx(50.0)

    def test_spikes_appear(self):
        trace = SeasonalTrace(length=2000, noise_sd=0.0, spike_rate=0.05,
                              spike_size=100.0)
        values = trace.values(np.random.default_rng(2))
        assert np.count_nonzero(np.abs(values) > 50) > 20

    def test_validation(self):
        with pytest.raises(ValueError):
            SeasonalTrace(length=0)
        with pytest.raises(ValueError):
            SeasonalTrace(profiles=())
        with pytest.raises(ValueError):
            SeasonalTrace(profiles=((),))
        with pytest.raises(ValueError):
            SeasonalTrace(noise_sd=-1.0)
        with pytest.raises(ValueError):
            SeasonalTrace(spike_rate=2.0)
        with pytest.raises(ValueError):
            SeasonalTrace(length=10, regime_shift_at=20)


class TestPipeline:
    def test_end_to_end_on_seasonal_trace(self, rng):
        trace = SeasonalTrace(length=1600, noise_sd=0.3)
        values = trace.values(rng)
        report = PeriodicityPipeline(psi=0.6, max_period=40).run_values(values)
        assert report.base_periods
        assert report.base_periods[0] == trace.seasonal_period
        assert report.patterns_for_base()
        assert trace.seasonal_period in report.significant

    def test_aperiodic_trace_yields_no_strong_bases(self, rng):
        values = rng.normal(size=1500)
        report = PeriodicityPipeline(psi=0.6, max_period=40).run_values(values)
        # i.i.d. noise: nothing should clear psi=0.6 with real evidence
        # except short-denominator flukes, which significance filters.
        assert not report.significant

    def test_custom_discretizer(self, rng):
        trace = SeasonalTrace(length=800, level=0.0, noise_sd=0.2)
        pipeline = PeriodicityPipeline(
            discretizer=ThresholdDiscretizer([1.0, 3.0, 6.0, 8.0]),
            psi=0.6,
            max_period=30,
        )
        report = pipeline.run_values(trace.values(rng))
        assert report.series.sigma == 5
        assert report.base_periods[0] == trace.seasonal_period

    def test_anomaly_hookup(self, rng):
        trace = SeasonalTrace(length=1600, noise_sd=0.2)
        values = trace.values(rng)
        values[800:808] += 40.0  # one corrupted period
        report = PeriodicityPipeline(
            psi=0.7, max_period=20, anomaly_threshold=0.6
        ).run_values(values)
        segment = 800 // trace.seasonal_period
        assert any(a.segment == segment for a in report.anomalies)

    def test_render_summarises(self, rng):
        trace = SeasonalTrace(length=800, noise_sd=0.3)
        report = PeriodicityPipeline(psi=0.6, max_period=30).run_values(
            trace.values(rng)
        )
        text = report.render()
        assert "base period" in text and "support" in text

    def test_render_on_empty_result(self, rng):
        values = rng.normal(size=400)
        report = PeriodicityPipeline(psi=0.98, max_period=10).run_values(values)
        # Either no families at all or a no-structure note; render must
        # not crash either way.
        assert isinstance(report.render(), str)

    def test_rejects_bad_psi(self):
        with pytest.raises(ValueError):
            PeriodicityPipeline(psi=0.0)

    def test_single_mining_pass_spectral(self, rng, monkeypatch):
        """Stage 2 reuses the stage-1 table: exactly one mining pass."""
        from repro.core.spectral_miner import SpectralMiner

        calls = []
        original = SpectralMiner.periodicity_table
        monkeypatch.setattr(
            SpectralMiner,
            "periodicity_table",
            lambda self, series: calls.append(1) or original(self, series),
        )
        trace = SeasonalTrace(length=800, noise_sd=0.3)
        report = PeriodicityPipeline(psi=0.6, max_period=30).run_values(
            trace.values(rng)
        )
        assert report.base_periods  # the run found real structure ...
        assert len(calls) == 1  # ... from a single pass over the series

    def test_single_mining_pass_parallel_convolution(self, rng, monkeypatch):
        """Convolution scouting packs and mines the series exactly once."""
        from repro.core.convolution_miner import ConvolutionMiner

        table_calls = []
        pack_calls = []
        original_table = ConvolutionMiner.periodicity_table
        original_pack = ConvolutionMiner._packed_words
        monkeypatch.setattr(
            ConvolutionMiner,
            "periodicity_table",
            lambda self, series: table_calls.append(1)
            or original_table(self, series),
        )
        monkeypatch.setattr(
            ConvolutionMiner,
            "_packed_words",
            lambda self, series: pack_calls.append(1)
            or original_pack(self, series),
        )
        trace = SeasonalTrace(length=600, noise_sd=0.2)
        pipeline = PeriodicityPipeline(
            psi=0.6,
            max_period=30,
            algorithm="convolution",
            engine="parallel",
            workers=2,
        )
        report = pipeline.run_values(trace.values(rng))
        assert report.base_periods[0] == trace.seasonal_period
        assert len(table_calls) == 1
        assert len(pack_calls) == 1

    def test_parallel_engine_matches_default_pipeline(self, rng):
        trace = SeasonalTrace(length=800, noise_sd=0.3)
        values = trace.values(rng)
        serial = PeriodicityPipeline(
            psi=0.6, max_period=30, algorithm="convolution"
        ).run_values(values)
        parallel = PeriodicityPipeline(
            psi=0.6,
            max_period=30,
            algorithm="convolution",
            engine="parallel",
            workers=3,
        ).run_values(values)
        assert serial.base_periods == parallel.base_periods
        assert serial.result.table == parallel.result.table
        assert serial.significant == parallel.significant

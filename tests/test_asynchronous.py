"""Tests for repro.baselines.asynchronous."""

import numpy as np
import pytest

from repro.baselines import AsynchronousMiner
from repro.core import Alphabet, PeriodicPattern, SymbolSequence
from repro.data import apply_noise, generate_periodic


def _planted_series(
    segments: list[tuple[int, int, int]], length: int
) -> SymbolSequence:
    """Background 'x' with 's' planted per (start, period, count) run."""
    codes = np.ones(length, dtype=np.int64)
    for start, period, count in segments:
        for i in range(count):
            codes[start + i * period] = 0
    return SymbolSequence.from_codes(codes, Alphabet("sx"))


class TestCandidatePeriods:
    def test_recurring_gap_nominated(self):
        series = _planted_series([(0, 10, 12)], 130)
        periods = AsynchronousMiner(min_repetitions=3).candidate_periods(series, 0)
        assert 10 in periods

    def test_rare_gap_not_nominated(self):
        series = _planted_series([(0, 10, 2)], 60)
        periods = AsynchronousMiner(min_repetitions=3).candidate_periods(series, 0)
        assert 10 not in periods

    def test_missing_symbol(self):
        series = SymbolSequence.from_string("xxxx", Alphabet("sx"))
        assert AsynchronousMiner().candidate_periods(series, 0) == []


class TestLongestValidSubsequence:
    def test_single_run(self):
        series = _planted_series([(5, 8, 10)], 120)
        miner = AsynchronousMiner(min_repetitions=3, max_disturbance=5)
        pattern = PeriodicPattern.single(8, 0, 0)
        found = miner.longest_valid_subsequence(series, pattern)
        assert found is not None
        assert found.start == 5
        assert found.repetitions == 10
        assert found.runs == 1

    def test_stitches_phase_shifted_runs(self):
        # Two runs with a phase shift of 3 between them, gap under max_dis.
        series = _planted_series([(0, 10, 8), (83, 10, 8)], 200)
        miner = AsynchronousMiner(min_repetitions=3, max_disturbance=15)
        found = miner.longest_valid_subsequence(
            series, PeriodicPattern.single(10, 0, 0)
        )
        assert found is not None
        assert found.runs == 2
        assert found.repetitions == 16

    def test_disturbance_limit_blocks_stitching(self):
        series = _planted_series([(0, 10, 8), (150, 10, 8)], 300)
        miner = AsynchronousMiner(min_repetitions=3, max_disturbance=10)
        found = miner.longest_valid_subsequence(
            series, PeriodicPattern.single(10, 0, 0)
        )
        assert found is not None
        assert found.runs == 1
        assert found.repetitions == 8

    def test_short_runs_discarded(self):
        series = _planted_series([(0, 10, 2)], 60)
        miner = AsynchronousMiner(min_repetitions=3)
        assert (
            miner.longest_valid_subsequence(series, PeriodicPattern.single(10, 0, 0))
            is None
        )

    def test_no_matches(self):
        series = SymbolSequence.from_string("xxxx", Alphabet("sx"))
        miner = AsynchronousMiner()
        assert (
            miner.longest_valid_subsequence(series, PeriodicPattern.single(2, 0, 0))
            is None
        )

    def test_multi_symbol_pattern(self):
        series = SymbolSequence.from_string("abxabxabxabx")
        miner = AsynchronousMiner(min_repetitions=2)
        pattern = PeriodicPattern.from_items(3, {0: 0, 1: 1})
        found = miner.longest_valid_subsequence(series, pattern)
        assert found is not None
        assert found.repetitions == 4


class TestMineSymbol:
    def test_finds_planted_period(self):
        series = _planted_series([(0, 12, 20)], 250)
        found = AsynchronousMiner(min_repetitions=3).mine_symbol(series, 0)
        assert found
        assert found[0].pattern.period == 12

    def test_survives_insertion_shift(self):
        """The asynchronous model's point: an insertion starts a new run
        instead of destroying the pattern."""
        clean = _planted_series([(0, 20, 100)], 2000)
        # one insertion mid-series shifts the whole tail off phase
        codes = np.insert(clean.codes, 1001, 1)
        shifted = SymbolSequence.from_codes(codes, clean.alphabet)
        miner = AsynchronousMiner(min_repetitions=5, max_disturbance=25)
        found = [
            v for v in miner.mine_symbol(shifted, 0) if v.pattern.period == 20
        ]
        assert found
        best = found[0]
        assert best.runs >= 2
        assert best.repetitions >= 90  # both halves recovered

    def test_adjacent_gap_blind_spot_mirrors_ma_hellerstein(self, rng):
        """Phase 1 inherits the published blind spot the EDBT paper
        criticises: a symbol recurring within the period hides the true
        period from adjacent gaps."""
        clean = generate_periodic(2000, 20, 8, rng=rng)
        target = int(clean.codes[0])
        if np.count_nonzero(clean.codes[:20] == target) < 2:
            import pytest as _pytest

            _pytest.skip("this draw has a unique symbol per period")
        periods = AsynchronousMiner(min_repetitions=3).candidate_periods(
            clean, target
        )
        assert 20 not in periods

    def test_validation(self):
        with pytest.raises(ValueError):
            AsynchronousMiner(min_repetitions=0)
        with pytest.raises(ValueError):
            AsynchronousMiner(max_disturbance=-1)

"""Tests for the CIMEG-like, Wal-Mart-like, and event-log simulators."""

import numpy as np
import pytest

from repro.core import SpectralMiner
from repro.data import (
    EventLogSimulator,
    PlantedEvent,
    PowerConsumptionSimulator,
    RetailTransactionsSimulator,
)


class TestPowerSimulator:
    def test_length(self, rng):
        assert PowerConsumptionSimulator(days=100).series(rng).length == 100

    def test_values_non_negative(self, rng):
        assert PowerConsumptionSimulator().values(rng).min() >= 0.0

    def test_five_levels(self, rng):
        series = PowerConsumptionSimulator().series(rng)
        assert series.sigma == 5

    def test_weekly_period_dominates(self, rng):
        series = PowerConsumptionSimulator().series(rng)
        table = SpectralMiner(max_period=30).periodicity_table(series)
        assert table.confidence(7) > 0.6
        assert table.confidence(7) > table.confidence(5) + 0.2
        assert table.confidence(7) > table.confidence(11) + 0.2

    def test_habitual_low_day_in_partial_band(self):
        """The (a, low_day) pattern must live in the 40-85% support band."""
        supports = []
        for seed in range(5):
            simulator = PowerConsumptionSimulator()
            series = simulator.series(np.random.default_rng(seed))
            table = SpectralMiner(max_period=7).periodicity_table(series)
            supports.append(table.support(7, 0, simulator.low_day))
        mean = sum(supports) / len(supports)
        assert 0.4 < mean < 0.85

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerConsumptionSimulator(days=0)
        with pytest.raises(ValueError):
            PowerConsumptionSimulator(weekly_profile=(1.0,) * 6)
        with pytest.raises(ValueError):
            PowerConsumptionSimulator(low_day=9)
        with pytest.raises(ValueError):
            PowerConsumptionSimulator(habit_persistence=1.5)
        with pytest.raises(ValueError):
            PowerConsumptionSimulator(vacation_rate=-0.1)

    def test_reproducible(self):
        a = PowerConsumptionSimulator().series(np.random.default_rng(3))
        b = PowerConsumptionSimulator().series(np.random.default_rng(3))
        assert a == b


class TestRetailSimulator:
    def test_hours(self, rng):
        simulator = RetailTransactionsSimulator(days=30)
        assert simulator.hours == 720
        assert simulator.series(rng).length == 720

    def test_deterministic_means(self):
        simulator = RetailTransactionsSimulator(days=14, noise="none")
        np.testing.assert_array_equal(simulator.values(), simulator.expected_values())

    def test_overnight_closed_in_expectation(self):
        means = RetailTransactionsSimulator(days=7, noise="none").expected_values()
        by_day = means.reshape(7, 24)
        assert (by_day[:, 0:6] == 0).all()
        assert (by_day[:, 22:] == 0).all()

    def test_daily_and_weekly_periods(self, rng):
        series = RetailTransactionsSimulator(days=180).series(rng)
        table = SpectralMiner(psi=0.3, max_period=200).periodicity_table(series)
        assert table.confidence(24) > 0.8
        assert table.confidence(168) > 0.8
        assert table.confidence(23) < 0.5

    def test_dst_shifts_window_profile(self):
        base = RetailTransactionsSimulator(days=365, noise="none", dst=False)
        shifted = RetailTransactionsSimulator(days=365, noise="none", dst=True)
        a = base.expected_values().reshape(365, 24)
        b = shifted.expected_values().reshape(365, 24)
        inside = 100  # day inside the DST window
        outside = 20  # before spring-forward
        np.testing.assert_array_equal(a[outside], b[outside])
        np.testing.assert_array_equal(np.roll(a[inside], -1), b[inside])

    def test_dst_creates_off_by_one_hour_periods(self, rng):
        series = RetailTransactionsSimulator(days=456, dst=True).series(rng)
        table = SpectralMiner(psi=0.4, max_period=400).periodicity_table(series)
        off_by_one = [
            p
            for p in table.candidate_periods(0.5, min_pairs=2)
            if p > 24 and p % 24 in (1, 23)
        ]
        assert off_by_one, "DST must surface obscure off-by-one-hour periods"

    def test_validation(self):
        with pytest.raises(ValueError):
            RetailTransactionsSimulator(days=0)
        with pytest.raises(ValueError):
            RetailTransactionsSimulator(hourly_profile=(1.0,) * 23)
        with pytest.raises(ValueError):
            RetailTransactionsSimulator(weekday_factors=(1.0,) * 6)
        with pytest.raises(ValueError):
            RetailTransactionsSimulator(noise="laplace")
        with pytest.raises(ValueError):
            RetailTransactionsSimulator(holiday_rate=2.0)
        with pytest.raises(ValueError):
            RetailTransactionsSimulator(dst_spring_day=300, dst_fall_day=100)


class TestEventLogSimulator:
    def test_length_and_alphabet(self, rng):
        simulator = EventLogSimulator(length=500)
        log = simulator.series(rng)
        assert log.length == 500
        assert set(log.alphabet.symbols) >= {"H", "B", "x"}

    def test_reliable_event_always_on_schedule(self, rng):
        simulator = EventLogSimulator(
            length=600,
            planted=(PlantedEvent("H", period=50, phase=3, reliability=1.0),),
        )
        log = simulator.series(rng)
        h = log.alphabet.code("H")
        positions = np.nonzero(log.codes == h)[0]
        assert (positions % 50 == 3).all()
        assert positions.size == len(range(3, 600, 50))

    def test_unreliable_event_misses_beats(self):
        simulator = EventLogSimulator(
            length=10_000,
            planted=(PlantedEvent("H", period=10, phase=0, reliability=0.7),),
        )
        log = simulator.series(np.random.default_rng(0))
        h = log.alphabet.code("H")
        fired = int(np.count_nonzero(log.codes == h))
        assert 600 < fired < 800

    def test_planted_periods_mined(self, rng):
        log = EventLogSimulator(length=4000).series(rng)
        table = SpectralMiner(psi=0.5, max_period=100).periodicity_table(log)
        hits = table.periodicities(0.6)
        found = {
            (str(h.symbol(table.alphabet)), h.period, h.position) for h in hits
        }
        assert ("H", 60, 0) in found
        assert ("B", 15, 7) in found

    def test_validation(self):
        with pytest.raises(ValueError):
            EventLogSimulator(length=0)
        with pytest.raises(ValueError):
            EventLogSimulator(background_events=())
        with pytest.raises(ValueError):
            PlantedEvent("H", period=0, phase=0)
        with pytest.raises(ValueError):
            PlantedEvent("H", period=5, phase=5)
        with pytest.raises(ValueError):
            PlantedEvent("H", period=5, phase=0, reliability=0.0)
        with pytest.raises(ValueError):
            EventLogSimulator(
                planted=(PlantedEvent("x", period=5, phase=0),),
            )
        with pytest.raises(ValueError):
            EventLogSimulator(
                planted=(
                    PlantedEvent("H", period=5, phase=0),
                    PlantedEvent("H", period=7, phase=0),
                ),
            )

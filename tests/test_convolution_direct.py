"""Tests for repro.convolution.direct."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.convolution import (
    convolve_direct,
    convolve_full_direct,
    correlate_direct,
    weighted_convolve_direct,
)

floats = st.lists(
    st.integers(-5, 5).map(float), min_size=1, max_size=24
)


class TestFullConvolution:
    def test_known_product(self):
        # (1 + 2x)(3 + 4x) = 3 + 10x + 8x^2
        assert convolve_full_direct([1, 2], [3, 4]).tolist() == [3.0, 10.0, 8.0]

    def test_identity_kernel(self):
        x = [5.0, 1.0, 2.0]
        assert convolve_full_direct(x, [1.0]).tolist() == x

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=17)
        y = rng.normal(size=11)
        np.testing.assert_allclose(
            convolve_full_direct(x, y), np.convolve(x, y), atol=1e-9
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            convolve_full_direct([], [1.0])

    @settings(max_examples=40, deadline=None)
    @given(x=floats, y=floats)
    def test_commutative(self, x, y):
        np.testing.assert_allclose(
            convolve_full_direct(x, y), convolve_full_direct(y, x), atol=1e-9
        )


class TestTruncatedConvolution:
    def test_truncates_to_n(self):
        out = convolve_direct([1.0, 1.0, 1.0], [1.0, 1.0, 1.0])
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_rejects_unequal_lengths(self):
        with pytest.raises(ValueError):
            convolve_direct([1.0], [1.0, 2.0])


class TestWeightedConvolution:
    def test_definition_small(self):
        # (x (*) y)_i = sum_j 2^j x_j y_{i-j}
        out = weighted_convolve_direct([1, 1], [1, 1])
        # i=0: 2^0*1*1 = 1 ; i=1: 2^0*1*1 + 2^1*1*1 = 3
        assert out == [1, 3]

    def test_weights_separate_matches(self):
        # Only x_2 y_0 contributes at i=2 -> exactly 2^2.
        out = weighted_convolve_direct([0, 0, 1], [1, 0, 0])
        assert out == [0, 0, 4]

    def test_exactness_with_large_indices(self):
        n = 70  # 2^69 overflows doubles; ints must stay exact
        x = [0] * n
        y = [0] * n
        x[n - 1] = 1
        y[0] = 1
        out = weighted_convolve_direct(x, y)
        assert out[n - 1] == 2 ** (n - 1)

    def test_rejects_unequal_lengths(self):
        with pytest.raises(ValueError):
            weighted_convolve_direct([1], [1, 0])


class TestCorrelation:
    def test_autocorrelation_counts_matches(self):
        # x = 1,0,1,0,1: lag 2 pairs -> positions (0,2),(2,4)
        x = [1.0, 0.0, 1.0, 0.0, 1.0]
        corr = correlate_direct(x, x)
        assert corr.tolist() == [3.0, 0.0, 2.0, 0.0, 1.0]

    def test_lag_zero_is_dot_product(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=9)
        assert correlate_direct(x, x)[0] == pytest.approx(float(x @ x))

    def test_rejects_unequal_lengths(self):
        with pytest.raises(ValueError):
            correlate_direct([1.0], [1.0, 2.0])

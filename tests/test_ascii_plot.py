"""Tests for repro.experiments.ascii_plot and the experiment runner."""

import pytest

from repro.experiments import ascii_plot, run_all, write_report
from repro.experiments.runner import EXPERIMENT_NAMES


class TestAsciiPlot:
    def test_basic_rendering(self):
        chart = ascii_plot(
            {"up": {0: 0.0, 1: 0.5, 2: 1.0}},
            width=30,
            height=8,
            title="T",
        )
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert "o up" in lines[-1]
        assert any("o" in line for line in lines[2:-2])

    def test_multiple_curves_distinct_markers(self):
        chart = ascii_plot(
            {"a": {0: 1.0}, "b": {0: 0.0}},
            width=20,
            height=6,
        )
        assert "o a" in chart and "x b" in chart

    def test_extremes_land_on_first_and_last_rows(self):
        chart = ascii_plot({"c": {0: 0.0, 1: 1.0}}, width=20, height=8)
        rows = chart.splitlines()[1:]  # skip y-range line
        grid = [r for r in rows if r.startswith("|") or r.startswith("+")]
        assert "o" in grid[0]          # maximum at the top
        assert "o" in grid[-2]         # minimum on the last data row

    def test_explicit_y_bounds_clip(self):
        chart = ascii_plot(
            {"c": {0: 5.0}}, width=20, height=6, y_min=0.0, y_max=1.0
        )
        assert "1.00 (top)" in chart

    def test_x_axis_labels(self):
        chart = ascii_plot({"c": {0.1: 0.2, 0.5: 0.4}}, width=20, height=6)
        assert "x: 0.1 0.5" in chart

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_plot({})
        with pytest.raises(ValueError):
            ascii_plot({"a": {}})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": {0: 1.0}}, width=4, height=2)

    def test_flat_series_does_not_divide_by_zero(self):
        chart = ascii_plot({"flat": {0: 0.5, 1: 0.5}}, width=20, height=6)
        assert "flat" in chart


class TestRunner:
    @pytest.mark.slow
    def test_runs_selected_quick_experiments(self):
        results = run_all(quick=True, only=("table2", "table3"))
        assert set(results) == {"table2", "table3"}
        assert "Table 2" in results["table2"]
        assert "Table 3" in results["table3"]

    def test_rejects_unknown_names(self):
        with pytest.raises(ValueError):
            run_all(only=("fig99",))

    def test_names_registry_is_complete(self):
        assert set(EXPERIMENT_NAMES) == {
            "fig3a", "fig3b", "fig4a", "fig4b", "fig5",
            "fig6a", "fig6b", "table1", "table2", "table3",
        }

    def test_write_report(self, tmp_path):
        path = write_report({"fig3a": "CONTENT"}, tmp_path / "report.md")
        text = path.read_text()
        assert "## fig3a" in text and "CONTENT" in text

    def test_write_report_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            write_report({}, tmp_path / "report.md")

"""Tests for repro.analysis.harmonics and the bitops substrate."""

import numpy as np
import pytest

from repro.analysis import base_periods, group_harmonics
from repro.convolution.bitops import (
    pack_positions,
    set_bit_positions,
    shift_right,
    shifted_self_and,
    word_and,
)
from repro.convolution import bit_positions, pack_bits
from repro.core import SpectralMiner
from repro.data import PowerConsumptionSimulator, generate_periodic


class TestGroupHarmonics:
    def test_multiples_collapse_to_base(self):
        conf = {7: 1.0, 14: 1.0, 21: 1.0, 28: 0.95}.__getitem__
        families = group_harmonics([7, 14, 21, 28], conf)
        assert len(families) == 1
        assert families[0].base == 7
        assert families[0].harmonics == (14, 21, 28)

    def test_stronger_multiple_stays_a_base(self):
        # 14 is much stronger than 7: it is *not* explained by 7.
        conf = {7: 0.4, 14: 0.9}.__getitem__
        families = group_harmonics([7, 14], conf, tolerance=0.1)
        bases = {f.base for f in families}
        assert bases == {7, 14}

    def test_independent_periods(self):
        conf = {5: 0.9, 7: 0.8}.__getitem__
        families = group_harmonics([5, 7], conf)
        assert {f.base for f in families} == {5, 7}

    def test_sorted_by_confidence(self):
        conf = {3: 0.5, 5: 0.9}.__getitem__
        families = group_harmonics([3, 5], conf)
        assert families[0].base == 5

    def test_members_property(self):
        conf = {4: 1.0, 8: 1.0}.__getitem__
        family = group_harmonics([4, 8], conf)[0]
        assert family.members == (4, 8)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            group_harmonics([3], lambda p: 1.0, tolerance=2.0)

    def test_rejects_non_positive_periods(self):
        with pytest.raises(ValueError):
            group_harmonics([0], lambda p: 1.0)


class TestBasePeriods:
    def test_synthetic_collapse(self, rng):
        # A base pattern with no perfect sub-period for any symbol (each
        # symbol's two occurrences are 5 and 7 apart, never a divisor of 12).
        pattern = np.array([0, 1, 2, 3, 4, 5, 1, 0, 3, 2, 5, 4])
        series = generate_periodic(600, 12, 6, rng=rng, pattern=pattern)
        table = SpectralMiner(max_period=60).periodicity_table(series)
        families = base_periods(table, psi=0.95)
        assert families[0].base == 12
        assert set(families[0].harmonics) >= {24, 36, 48}

    def test_power_weekly_family(self, rng):
        series = PowerConsumptionSimulator().series(rng)
        table = SpectralMiner(psi=0.5, max_period=40).periodicity_table(series)
        families = base_periods(table, psi=0.6)
        weekly = next((f for f in families if f.base == 7), None)
        assert weekly is not None
        assert all(h % 7 == 0 for h in weekly.harmonics)


class TestBitops:
    def test_pack_matches_bigint(self, rng):
        positions = np.unique(rng.integers(0, 500, size=60))
        words = pack_positions(positions, 500)
        as_int = pack_bits(positions, 500)
        assert set_bit_positions(words).tolist() == bit_positions(as_int).tolist()

    def test_pack_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            pack_positions(np.array([70]), 64)

    def test_shift_right_matches_int_shift(self, rng):
        positions = np.unique(rng.integers(0, 300, size=40))
        words = pack_positions(positions, 300)
        as_int = pack_bits(positions, 300)
        for bits in (0, 1, 13, 64, 65, 200, 400):
            shifted = set_bit_positions(shift_right(words, bits)).tolist()
            assert shifted == bit_positions(as_int >> bits).tolist()

    def test_shift_rejects_negative(self):
        with pytest.raises(ValueError):
            shift_right(np.zeros(1, dtype=np.uint64), -1)

    def test_word_and(self, rng):
        a = rng.integers(0, 2**63, size=8, dtype=np.int64).astype(np.uint64)
        b = rng.integers(0, 2**63, size=8, dtype=np.int64).astype(np.uint64)
        np.testing.assert_array_equal(word_and(a, b), a & b)

    def test_shifted_self_and_matches_bigint(self, rng):
        positions = np.unique(rng.integers(0, 400, size=80))
        words = pack_positions(positions, 400)
        as_int = pack_bits(positions, 400)
        for bits in (1, 7, 64, 100):
            expected = bit_positions(as_int & (as_int >> bits)).tolist()
            assert shifted_self_and(words, bits).tolist() == expected

    def test_empty_array(self):
        assert set_bit_positions(np.zeros(4, dtype=np.uint64)).size == 0


class TestWordarrayEngine:
    def test_engine_parity(self, rng):
        from repro.core import Alphabet, ConvolutionMiner, SymbolSequence

        for _ in range(5):
            n = int(rng.integers(4, 120))
            sigma = int(rng.integers(2, 6))
            series = SymbolSequence.from_codes(
                rng.integers(0, sigma, size=n), Alphabet.of_size(sigma)
            )
            bitand = ConvolutionMiner("bitand").periodicity_table(series)
            wordarray = ConvolutionMiner("wordarray").periodicity_table(series)
            assert bitand == wordarray

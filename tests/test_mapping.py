"""Tests for repro.core.mapping — the Sect. 3.2 scheme, pinned to the paper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SymbolSequence,
    binary_vector,
    binary_vector_bits,
    decode_witness,
    f2_projection,
    witness_power,
    witnesses_to_f2_table,
)

from conftest import series_strategy


class TestBinaryVector:
    def test_paper_example(self, mapping_series):
        # T = acccabb with a:001, b:010, c:100
        expected = "001100100100001010010"
        assert "".join(map(str, binary_vector(mapping_series))) == expected

    def test_length_is_sigma_n(self):
        series = SymbolSequence.from_string("abcd")
        assert binary_vector(series).size == 16

    def test_one_bit_per_symbol(self, paper_series):
        vector = binary_vector(paper_series)
        blocks = vector.reshape(paper_series.length, paper_series.sigma)
        assert (blocks.sum(axis=1) == 1).all()

    def test_bits_agree_with_vector(self, paper_series):
        vector = binary_vector(paper_series)
        positions = binary_vector_bits(paper_series)
        rebuilt = np.zeros_like(vector)
        rebuilt[positions] = 1
        assert (rebuilt == vector).all()

    def test_block_encodes_power_of_two(self):
        series = SymbolSequence.from_string("cab")
        vector = binary_vector(series)
        sigma = series.sigma
        for i, code in enumerate(series.codes):
            block = vector[i * sigma : (i + 1) * sigma]
            value = int("".join(map(str, block)), 2)
            assert value == 2 ** int(code)


class TestWitnessCodec:
    def test_power_formula_paper_p4(self, mapping_series):
        # c'_4 = 2^6: symbol a (code 0) matched at positions 0 and 4.
        w = witness_power(
            mapping_series.length, mapping_series.sigma,
            earlier_index=0, period=4, symbol_code=0,
        )
        assert w == 6

    def test_decode_paper_p4(self, mapping_series):
        decoded = decode_witness(6, mapping_series.length, mapping_series.sigma, 4)
        assert decoded.symbol_code == 0
        assert decoded.earlier_index == 0
        assert decoded.position == 0
        assert decoded.repetition == 0

    def test_round_trip_all_matches(self, paper_series):
        n, sigma = paper_series.length, paper_series.sigma
        codes = paper_series.codes
        for p in range(1, n):
            for j in range(n - p):
                if codes[j] == codes[j + p]:
                    w = witness_power(n, sigma, j, p, int(codes[j]))
                    decoded = decode_witness(w, n, sigma, p)
                    assert decoded.symbol_code == codes[j]
                    assert decoded.earlier_index == j
                    assert decoded.position == j % p
                    assert decoded.repetition == j // p

    def test_power_rejects_out_of_range_pair(self):
        with pytest.raises(ValueError):
            witness_power(5, 2, earlier_index=3, period=3, symbol_code=0)

    def test_decode_rejects_negative_power(self):
        with pytest.raises(ValueError):
            decode_witness(-1, 10, 3, 2)

    def test_decode_rejects_impossible_power(self):
        # A power so large the earlier index would be negative.
        with pytest.raises(ValueError):
            decode_witness(100, 5, 2, 2)


class TestWitnessTable:
    def test_paper_w3_table(self, paper_series):
        # W_3 = {18, 16, 9, 7} -> F2(a, pi_{3,0}) = 2, F2(b, pi_{3,1}) = 2
        table = witnesses_to_f2_table(
            np.array([18, 16, 9, 7]), paper_series.length, paper_series.sigma, 3
        )
        assert table == {(0, 0): 2, (1, 1): 2}

    def test_paper_cabccbacd_w4(self):
        series = SymbolSequence.from_string("cabccbacd")
        table = witnesses_to_f2_table(np.array([18, 6]), 9, 4, 4)
        c = series.alphabet.code("c")
        assert table == {(c, 0): 1, (c, 3): 1}

    def test_empty_witnesses(self):
        assert witnesses_to_f2_table(np.array([]), 10, 3, 2) == {}

    def test_rejects_invalid_powers(self):
        with pytest.raises(ValueError):
            witnesses_to_f2_table(np.array([1000]), 10, 3, 2)

    @settings(max_examples=50, deadline=None)
    @given(series=series_strategy(min_size=3, max_size=40), p=st.integers(1, 10))
    def test_encode_then_tabulate_equals_f2(self, series, p):
        """Encoding every match then tabulating recovers the F2 counts."""
        n, sigma = series.length, series.sigma
        if p >= n:
            return
        codes = series.codes
        powers = [
            witness_power(n, sigma, j, p, int(codes[j]))
            for j in range(n - p)
            if codes[j] == codes[j + p]
        ]
        table = witnesses_to_f2_table(np.array(powers, dtype=np.int64), n, sigma, p)
        for (k, l), count in table.items():
            assert count == f2_projection(series, k, p, l)

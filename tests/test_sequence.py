"""Tests for repro.core.sequence."""

import numpy as np
import pytest

from repro.core import Alphabet, SymbolSequence


class TestConstruction:
    def test_from_string_infers_alphabet(self):
        series = SymbolSequence.from_string("abcabbabcb")
        assert series.length == 10
        assert series.sigma == 3

    def test_from_string_with_explicit_alphabet(self):
        sigma = Alphabet("abcd")
        series = SymbolSequence.from_string("aa", sigma)
        assert series.sigma == 4

    def test_from_symbols(self):
        series = SymbolSequence.from_symbols(["hi", "lo", "hi"])
        assert series.length == 3
        assert series.symbols() == ["hi", "lo", "hi"]

    def test_from_codes(self):
        series = SymbolSequence.from_codes([0, 1, 0], Alphabet("ab"))
        assert series.to_string() == "aba"

    def test_from_codes_numpy(self):
        series = SymbolSequence.from_codes(np.array([1, 1]), Alphabet("ab"))
        assert series.to_string() == "bb"

    def test_rejects_out_of_range_codes(self):
        with pytest.raises(ValueError):
            SymbolSequence.from_codes([0, 5], Alphabet("ab"))

    def test_rejects_negative_codes(self):
        with pytest.raises(ValueError):
            SymbolSequence.from_codes([-1], Alphabet("ab"))

    def test_rejects_2d_codes(self):
        with pytest.raises(ValueError):
            SymbolSequence(np.zeros((2, 2), dtype=np.int64), Alphabet("ab"))

    def test_codes_are_read_only(self):
        series = SymbolSequence.from_string("ab")
        with pytest.raises(ValueError):
            series.codes[0] = 1


class TestAccessors:
    def test_round_trip_string(self):
        assert SymbolSequence.from_string("cabba").to_string() == "cabba"

    def test_indexing_returns_symbols(self):
        series = SymbolSequence.from_string("abc")
        assert series[1] == "b"
        assert series[-1] == "c"

    def test_slicing_returns_sequence(self):
        series = SymbolSequence.from_string("abcde")
        sliced = series[1:4]
        assert isinstance(sliced, SymbolSequence)
        assert sliced.to_string() == "bcd"
        assert sliced.alphabet == series.alphabet

    def test_iteration(self):
        assert list(SymbolSequence.from_string("aba")) == ["a", "b", "a"]

    def test_len(self):
        assert len(SymbolSequence.from_string("abcd")) == 4

    def test_indicator(self):
        series = SymbolSequence.from_string("abab")
        assert series.indicator(0).tolist() == [1.0, 0.0, 1.0, 0.0]

    def test_repr_short_and_long(self):
        short = SymbolSequence.from_string("ab")
        assert "ab" in repr(short)
        long = SymbolSequence.from_string("ab" * 40)
        assert "..." in repr(long)


class TestDerived:
    def test_shifted_drops_prefix(self):
        series = SymbolSequence.from_string("abcabba")
        assert series.shifted(3).to_string() == "abba"

    def test_shifted_zero_is_identity(self):
        series = SymbolSequence.from_string("abc")
        assert series.shifted(0) == series

    def test_shifted_full_length_is_empty(self):
        assert SymbolSequence.from_string("abc").shifted(3).length == 0

    def test_shifted_out_of_range(self):
        with pytest.raises(ValueError):
            SymbolSequence.from_string("abc").shifted(4)

    def test_concatenated(self):
        sigma = Alphabet("ab")
        left = SymbolSequence.from_string("ab", sigma)
        right = SymbolSequence.from_string("ba", sigma)
        assert left.concatenated(right).to_string() == "abba"

    def test_concatenated_rejects_mismatched_alphabets(self):
        with pytest.raises(ValueError):
            SymbolSequence.from_string("ab").concatenated(
                SymbolSequence.from_string("cd")
            )


class TestEquality:
    def test_equality_and_hash(self):
        a = SymbolSequence.from_string("aba", Alphabet("ab"))
        b = SymbolSequence.from_string("aba", Alphabet("ab"))
        assert a == b
        assert hash(a) == hash(b)

    def test_differs_by_content(self):
        sigma = Alphabet("ab")
        assert SymbolSequence.from_string("ab", sigma) != SymbolSequence.from_string(
            "ba", sigma
        )

    def test_differs_by_alphabet(self):
        a = SymbolSequence.from_codes([0], Alphabet("ab"))
        b = SymbolSequence.from_codes([0], Alphabet("ba"))
        assert a != b

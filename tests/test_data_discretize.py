"""Tests for repro.data.discretize."""

import numpy as np
import pytest

from repro.data import (
    EqualWidthDiscretizer,
    FIVE_LEVELS,
    GaussianDiscretizer,
    QuantileDiscretizer,
    ThresholdDiscretizer,
)
from repro.data.discretize import _normal_ppf


class TestThresholdDiscretizer:
    def test_paper_cimeg_levels(self):
        # "very low < 6000 Watts/Day, and each level has a 2000 Watts range"
        disc = ThresholdDiscretizer([6000, 8000, 10000, 12000])
        values = [1000, 5999, 6000, 7999, 9000, 11000, 12000, 20000]
        codes = disc.codes(values)
        assert codes.tolist() == [0, 0, 1, 1, 2, 3, 4, 4]

    def test_paper_walmart_levels(self):
        # "very low corresponds to zero transactions per hour, low < 200"
        disc = ThresholdDiscretizer([0.5, 200, 400, 600])
        codes = disc.codes([0, 1, 199, 200, 399, 400, 601])
        assert codes.tolist() == [0, 1, 1, 2, 2, 3, 4]

    def test_series_uses_level_alphabet(self):
        disc = ThresholdDiscretizer([10, 20, 30, 40])
        series = disc.discretize([5, 15, 45])
        assert series.to_string() == "abe"
        assert series.alphabet.symbols == FIVE_LEVELS

    def test_custom_level_count(self):
        disc = ThresholdDiscretizer([0.0], levels=2)
        assert disc.codes([-1.0, 1.0]).tolist() == [0, 1]

    def test_rejects_wrong_threshold_count(self):
        with pytest.raises(ValueError):
            ThresholdDiscretizer([1.0, 2.0], levels=5)

    def test_rejects_descending_thresholds(self):
        with pytest.raises(ValueError):
            ThresholdDiscretizer([3.0, 2.0, 4.0, 5.0])


class TestEqualWidth:
    def test_covers_range_evenly(self):
        disc = EqualWidthDiscretizer(levels=4)
        codes = disc.codes([0.0, 1.0, 2.0, 3.0, 4.0])
        assert codes.tolist() == [0, 1, 2, 3, 3]

    def test_constant_input_single_level(self):
        disc = EqualWidthDiscretizer(levels=3)
        codes = disc.codes([5.0, 5.0, 5.0])
        assert len(set(codes.tolist())) == 1


class TestQuantile:
    def test_balanced_bins(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=5000)
        codes = QuantileDiscretizer(levels=5).codes(values)
        counts = np.bincount(codes, minlength=5)
        assert counts.min() > 0.15 * values.size


class TestGaussian:
    def test_balanced_bins_on_normal_data(self):
        rng = np.random.default_rng(1)
        values = rng.normal(10.0, 2.0, size=5000)
        codes = GaussianDiscretizer(levels=5).codes(values)
        counts = np.bincount(codes, minlength=5)
        assert counts.min() > 0.12 * values.size

    def test_constant_input(self):
        codes = GaussianDiscretizer(levels=3).codes([2.0, 2.0])
        assert set(codes.tolist()) <= {0, 1, 2}


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EqualWidthDiscretizer().codes([])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            EqualWidthDiscretizer().codes(np.zeros((2, 2)))


class TestNormalPPF:
    def test_median(self):
        assert _normal_ppf(np.array([0.5]))[0] == pytest.approx(0.0, abs=1e-9)

    def test_known_quantiles(self):
        q = np.array([0.025, 0.975, 0.001, 0.999])
        expected = np.array([-1.9599640, 1.9599640, -3.0902323, 3.0902323])
        np.testing.assert_allclose(_normal_ppf(q), expected, atol=1e-6)

    def test_symmetry(self):
        q = np.linspace(0.01, 0.49, 20)
        np.testing.assert_allclose(_normal_ppf(q), -_normal_ppf(1 - q), atol=1e-8)

    def test_rejects_boundaries(self):
        with pytest.raises(ValueError):
            _normal_ppf(np.array([0.0]))

    @pytest.mark.parametrize("module", ["scipy"])
    def test_against_scipy_if_available(self, module):
        scipy_stats = pytest.importorskip("scipy.stats")
        q = np.linspace(0.001, 0.999, 97)
        np.testing.assert_allclose(
            _normal_ppf(q), scipy_stats.norm.ppf(q), atol=1.5e-9
        )

"""Property-based equivalence: both miners == the brute-force oracle.

The central correctness property of the reproduction: the paper's exact
convolution miner (both engines), the scalable spectral miner, and the
naive shift-and-compare oracle all compute the same F2 evidence for
every series.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import brute_force_table
from repro.core import ConvolutionMiner, SpectralMiner

from conftest import series_strategy


@settings(max_examples=80, deadline=None)
@given(series=series_strategy(min_size=2, max_size=50))
def test_exact_miner_equals_oracle(series):
    assert ConvolutionMiner().periodicity_table(series) == brute_force_table(series)


@settings(max_examples=80, deadline=None)
@given(series=series_strategy(min_size=2, max_size=50))
def test_spectral_miner_equals_oracle(series):
    assert SpectralMiner().periodicity_table(series) == brute_force_table(series)


@settings(max_examples=40, deadline=None)
@given(series=series_strategy(min_size=2, max_size=40))
def test_kronecker_engine_equals_oracle(series):
    miner = ConvolutionMiner(engine="kronecker")
    assert miner.periodicity_table(series) == brute_force_table(series)


@settings(max_examples=40, deadline=None)
@given(series=series_strategy(min_size=2, max_size=40))
def test_parallel_engine_equals_oracle(series):
    """The sharded count-only fast path is exact too."""
    miner = ConvolutionMiner(engine="parallel", workers=2)
    assert miner.periodicity_table(series) == brute_force_table(series)


@settings(max_examples=40, deadline=None)
@given(series=series_strategy(min_size=2, max_size=50), cap=st.integers(1, 12))
def test_max_period_restriction_consistent(series, cap):
    """Capped miners agree with the capped oracle."""
    exact = ConvolutionMiner(max_period=cap).periodicity_table(series)
    spectral = SpectralMiner(max_period=cap).periodicity_table(series)
    oracle = brute_force_table(series, max_period=cap)
    assert exact == oracle
    assert spectral == oracle


@settings(max_examples=40, deadline=None)
@given(series=series_strategy(min_size=4, max_size=40))
def test_alphabet_permutation_invariance(series):
    """Relabelling symbols permutes the evidence but not its structure."""
    from repro.core import Alphabet, SymbolSequence

    sigma = series.sigma
    permuted_codes = (series.codes + 1) % sigma
    permuted = SymbolSequence.from_codes(permuted_codes, Alphabet.of_size(sigma))
    original = ConvolutionMiner().periodicity_table(series)
    relabelled = ConvolutionMiner().periodicity_table(permuted)
    for p in set(original.periods) | set(relabelled.periods):
        source = original.counts_for(p)
        target = relabelled.counts_for(p)
        mapped = {((k + 1) % sigma, l): v for (k, l), v in source.items()}
        assert mapped == target


@settings(max_examples=40, deadline=None)
@given(series=series_strategy(min_size=2, max_size=40))
def test_confidence_bounded_by_one(series):
    table = SpectralMiner().periodicity_table(series)
    for p in table.periods:
        assert 0.0 <= table.confidence(p) <= 1.0

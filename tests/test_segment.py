"""Tests for repro.core.segment."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import (
    SpectralMiner,
    SymbolSequence,
    segment_periodicities,
    segment_supports,
)
from repro.data import generate_periodic

from conftest import series_strategy


class TestSegmentSupports:
    def test_matches_definition(self, rng):
        codes = rng.integers(0, 3, size=120)
        series = SymbolSequence.from_codes(codes, __import__("repro").Alphabet("abc"))
        supports = segment_supports(series, max_period=30)
        for p in range(1, 31):
            expected = np.count_nonzero(codes[:-p] == codes[p:]) / (120 - p)
            assert supports[p] == pytest.approx(expected)

    def test_lag_zero_is_one(self, rng):
        series = generate_periodic(50, 5, 3, rng=rng)
        assert segment_supports(series)[0] == 1.0

    def test_perfect_period_scores_one(self, rng):
        series = generate_periodic(200, 8, 4, rng=rng)
        supports = segment_supports(series, max_period=40)
        assert supports[8] == pytest.approx(1.0)
        assert supports[16] == pytest.approx(1.0)

    def test_tiny_series(self):
        series = SymbolSequence.from_string("a")
        assert segment_supports(series).tolist() == [1.0]

    @settings(max_examples=30, deadline=None)
    @given(series=series_strategy(min_size=4, max_size=50))
    def test_equals_sum_of_symbol_match_counts(self, series):
        supports = segment_supports(series)
        counts = SpectralMiner().match_counts(series)
        for p in range(1, supports.size):
            total = counts[:, p].sum()
            assert supports[p] == pytest.approx(total / (series.length - p))


class TestSegmentPeriodicities:
    def test_detects_embedded_period(self, rng):
        series = generate_periodic(300, 12, 5, rng=rng)
        hits = segment_periodicities(series, psi=0.95, max_period=60)
        periods = {h.period for h in hits}
        assert {12, 24, 36, 48, 60} <= periods

    def test_symbol_periodicity_implies_segment_evidence(self, rng):
        """Any symbol periodicity contributes to segment support."""
        series = generate_periodic(200, 10, 4, rng=rng)
        table = SpectralMiner(max_period=30).periodicity_table(series)
        supports = segment_supports(series, max_period=30)
        for hit in table.periodicities(0.9):
            if hit.period <= 30:
                assert supports[hit.period] > 0

    def test_min_aligned_cuts_vacuous_tail(self):
        series = SymbolSequence.from_string("abab")
        hits = segment_periodicities(series, 0.9, min_aligned=3)
        assert all(series.length - h.period >= 3 for h in hits)

    def test_support_property(self, rng):
        series = generate_periodic(100, 5, 3, rng=rng)
        hits = segment_periodicities(series, 0.9, max_period=20)
        for hit in hits:
            assert hit.support == pytest.approx(hit.matches / hit.aligned)

    def test_rejects_bad_psi(self, rng):
        series = generate_periodic(50, 5, 3, rng=rng)
        with pytest.raises(ValueError):
            segment_periodicities(series, 0.0)

    def test_rejects_bad_min_aligned(self, rng):
        series = generate_periodic(50, 5, 3, rng=rng)
        with pytest.raises(ValueError):
            segment_periodicities(series, 0.5, min_aligned=0)

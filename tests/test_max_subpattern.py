"""Tests for repro.baselines.max_subpattern (Han's hit-set algorithm)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import HanPartialMiner, MaxSubpatternMiner, MaxSubpatternTree
from repro.core import SymbolSequence

from conftest import series_strategy


class TestTree:
    def test_insert_counts(self):
        tree = MaxSubpatternTree((((0, 1)), ((1, 2))))
        tree = MaxSubpatternTree(((0, 1), (1, 2)))
        tree.insert(((0, 1), (1, 2)))
        tree.insert(((0, 1), (1, 2)))
        tree.insert(((0, 1),))
        assert tree.frequency(((0, 1), (1, 2))) == 2
        assert tree.frequency(((0, 1),)) == 3
        assert tree.frequency(((1, 2),)) == 2

    def test_empty_hit_ignored(self):
        tree = MaxSubpatternTree(((0, 1),))
        tree.insert(())
        assert tree.frequency(((0, 1),)) == 0

    def test_canonical_path_materialisation_is_linear(self):
        # Inserting a hit missing k of the root's items creates at most
        # k intermediate nodes, never the 2^k subset lattice.
        root = tuple((l, 0) for l in range(12))
        tree = MaxSubpatternTree(root)
        tree.insert(root[:2])  # missing 10 items
        assert tree.node_count <= 1 + 10 + 1

    def test_hit_patterns_listing(self):
        tree = MaxSubpatternTree(((0, 1), (2, 0)))
        tree.insert(((0, 1),))
        tree.insert(((0, 1),))
        hits = dict(tree.hit_patterns())
        assert hits == {((0, 1),): 2}


class TestMiner:
    def test_frequent_items_counts(self):
        series = SymbolSequence.from_string("abcabcabd")
        miner = MaxSubpatternMiner(min_confidence=0.6)
        f1 = miner.frequent_items(series, 3)
        a, b = series.alphabet.code("a"), series.alphabet.code("b")
        assert f1[(0, a)] == 3
        assert f1[(1, b)] == 3
        c = series.alphabet.code("c")
        assert (2, c) in f1  # 2 of 3 segments

    def test_zero_segments(self):
        series = SymbolSequence.from_string("ab")
        assert MaxSubpatternMiner().mine(series, 5) == []

    def test_perfectly_periodic(self):
        series = SymbolSequence.from_string("abcabcabcabc")
        patterns = MaxSubpatternMiner(min_confidence=0.9).mine(series, 3)
        top = [p for p in patterns if p.arity == 3]
        assert len(top) == 1 and top[0].support == pytest.approx(1.0)

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            MaxSubpatternMiner(min_confidence=1.5)

    def test_rejects_bad_period(self):
        series = SymbolSequence.from_string("abab")
        with pytest.raises(ValueError):
            MaxSubpatternMiner().frequent_items(series, 0)

    def test_max_arity(self):
        series = SymbolSequence.from_string("abcabcabc")
        patterns = MaxSubpatternMiner(min_confidence=0.9, max_arity=2).mine(series, 3)
        assert max(p.arity for p in patterns) == 2

    @settings(max_examples=40, deadline=None)
    @given(
        series=series_strategy(min_size=8, max_size=80, max_sigma=3),
        period=st.integers(2, 8),
        confidence=st.sampled_from([0.3, 0.5, 0.8]),
    )
    def test_equals_apriori_miner(self, series, period, confidence):
        """The published two-scan algorithm and the plain Apriori segment
        miner are definitionally identical — pin both."""
        via_tree = {
            (p.slots, round(p.support, 9))
            for p in MaxSubpatternMiner(confidence).mine(series, period)
        }
        via_apriori = {
            (p.slots, round(p.support, 9))
            for p in HanPartialMiner(confidence).mine(series, period)
        }
        assert via_tree == via_apriori

    def test_tree_stays_small_on_real_workload(self, rng):
        from repro.data import PowerConsumptionSimulator

        series = PowerConsumptionSimulator(days=364).series(rng)
        miner = MaxSubpatternMiner(min_confidence=0.4)
        tree = miner.build_tree(series, 7)
        # 52 segments can create at most 52 counted nodes plus their
        # canonical chains.
        assert tree.node_count < 52 * 8

"""Tests for repro.analysis.anomalies and repro.streaming.monitor."""

import numpy as np
import pytest

from repro.analysis import anomaly_scores, find_anomalies
from repro.core import Alphabet, SymbolSequence, parse_pattern
from repro.streaming import PeriodicityMonitor


def _series_with_bad_segment() -> SymbolSequence:
    """'abc' repeated, with segment 5 corrupted."""
    text = "abc" * 12
    corrupted = text[:15] + "zzz" + text[18:]
    return SymbolSequence.from_string(corrupted, Alphabet("abcz"))


class TestAnomalyScores:
    def test_clean_segments_score_zero(self):
        series = _series_with_bad_segment()
        patterns = [parse_pattern("abc", series.alphabet, support=1.0)]
        scores = anomaly_scores(series, patterns)
        assert scores[0] == 0.0
        assert scores[5] == 1.0

    def test_weighted_by_support(self):
        series = _series_with_bad_segment()
        strong = parse_pattern("a**", series.alphabet, support=0.9)
        weak = parse_pattern("**c", series.alphabet, support=0.1)
        scores = anomaly_scores(series, [strong, weak])
        # segment 5 violates both -> 1.0; a segment violating only the
        # weak pattern would score 0.1.
        assert scores[5] == pytest.approx(1.0)

    def test_rejects_empty_patterns(self):
        series = _series_with_bad_segment()
        with pytest.raises(ValueError):
            anomaly_scores(series, [])

    def test_rejects_mixed_periods(self):
        series = _series_with_bad_segment()
        with pytest.raises(ValueError):
            anomaly_scores(
                series,
                [
                    parse_pattern("ab*", series.alphabet),
                    parse_pattern("ab", series.alphabet),
                ],
            )

    def test_rejects_too_short_series(self):
        series = SymbolSequence.from_string("ab", Alphabet("abcz"))
        with pytest.raises(ValueError):
            anomaly_scores(series, [parse_pattern("abc", series.alphabet)])


class TestFindAnomalies:
    def test_flags_the_corrupted_segment(self):
        series = _series_with_bad_segment()
        patterns = [parse_pattern("abc", series.alphabet, support=1.0)]
        anomalies = find_anomalies(series, patterns, threshold=0.5)
        assert [a.segment for a in anomalies] == [5]
        assert anomalies[0].start == 15
        assert anomalies[0].end == 18
        assert anomalies[0].violated == tuple(patterns)

    def test_holiday_in_retail_data(self, rng):
        from repro.core import mine
        from repro.data import RetailTransactionsSimulator

        simulator = RetailTransactionsSimulator(
            days=90, holiday_rate=0.0, hour_jitter_rate=0.0,
            overnight_activity_rate=0.0,
        )
        series = simulator.series(rng)
        # Manufacture one holiday: zero out one full day.
        codes = series.codes.copy()
        codes[24 * 40 : 24 * 41] = 0
        series = SymbolSequence.from_codes(codes, series.alphabet)
        result = mine(series, psi=0.6, max_period=24, periods=[24], max_arity=3)
        patterns = [p for p in result.patterns if p.arity >= 1]
        anomalies = find_anomalies(series, patterns, threshold=0.5, top=3)
        assert any(a.segment == 40 for a in anomalies)

    def test_top_limits_output(self):
        series = SymbolSequence.from_string("zz" * 10, Alphabet("az"))
        pattern = parse_pattern("a*", series.alphabet, support=1.0)
        anomalies = find_anomalies(series, [pattern], threshold=0.5, top=4)
        assert len(anomalies) == 4

    def test_rejects_bad_threshold(self):
        series = _series_with_bad_segment()
        with pytest.raises(ValueError):
            find_anomalies(series, [parse_pattern("abc", series.alphabet)], threshold=0.0)


class TestPeriodicityMonitor:
    def test_alarm_on_structure_loss(self, rng):
        alphabet = Alphabet.of_size(4)
        periodic = np.tile(np.array([0, 1, 2, 3]), 100)
        noise = rng.integers(0, 4, size=400)
        monitor = PeriodicityMonitor(
            alphabet, period=4, window=64, floor=0.6, patience=3
        )
        events = monitor.extend_codes(periodic)
        assert events == []  # healthy stream never alarms
        events = monitor.extend_codes(noise)
        assert events, "losing the period must raise an alarm"
        assert monitor.alarmed
        assert events[0].confidence < 0.6

    def test_single_alarm_until_recovery(self, rng):
        alphabet = Alphabet.of_size(4)
        monitor = PeriodicityMonitor(
            alphabet, period=4, window=40, floor=0.6, patience=2
        )
        monitor.extend_codes(np.tile(np.array([0, 1, 2, 3]), 20))
        noise_events = monitor.extend_codes(rng.integers(0, 4, size=300))
        assert len(noise_events) == 1  # no re-alarm while still broken
        recovery_events = monitor.extend_codes(np.tile(np.array([0, 1, 2, 3]), 40))
        assert recovery_events == []
        assert not monitor.alarmed
        assert monitor.confidence > 0.9

    def test_events_accumulate_across_episodes(self, rng):
        alphabet = Alphabet.of_size(4)
        monitor = PeriodicityMonitor(
            alphabet, period=4, window=40, floor=0.6, patience=2
        )
        clean = np.tile(np.array([0, 1, 2, 3]), 30)
        for _ in range(2):
            monitor.extend_codes(clean)
            monitor.extend_codes(rng.integers(0, 4, size=200))
        assert len(monitor.events) == 2

    def test_validation(self):
        alphabet = Alphabet.of_size(3)
        with pytest.raises(ValueError):
            PeriodicityMonitor(alphabet, period=0)
        with pytest.raises(ValueError):
            PeriodicityMonitor(alphabet, period=4, floor=0.0)
        with pytest.raises(ValueError):
            PeriodicityMonitor(alphabet, period=4, patience=0)
        with pytest.raises(ValueError):
            PeriodicityMonitor(alphabet, period=4, window=4)
        with pytest.raises(ValueError):
            PeriodicityMonitor(alphabet, period=4, check_every=0)

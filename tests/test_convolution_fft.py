"""Tests for repro.convolution.fft — the from-scratch transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.convolution import (
    convolve_fft,
    convolve_full_direct,
    correlate_direct,
    correlate_fft,
    fft,
    fft_bluestein,
    fft_pow2,
    ifft,
    next_pow2,
)


class TestNextPow2:
    def test_values(self):
        assert next_pow2(1) == 1
        assert next_pow2(2) == 2
        assert next_pow2(3) == 4
        assert next_pow2(1000) == 1024

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            next_pow2(0)


class TestTransforms:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 64, 256])
    def test_pow2_matches_numpy(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        np.testing.assert_allclose(fft_pow2(x), np.fft.fft(x), atol=1e-8)

    def test_pow2_rejects_non_power(self):
        with pytest.raises(ValueError):
            fft_pow2(np.zeros(6))

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7, 12, 100, 243])
    def test_bluestein_matches_numpy(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        np.testing.assert_allclose(fft_bluestein(x), np.fft.fft(x), atol=1e-7)

    @pytest.mark.parametrize("n", [1, 3, 4, 9, 16, 31])
    def test_front_door_matches_numpy(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-7)

    @pytest.mark.parametrize("n", [1, 3, 8, 10, 27])
    def test_ifft_inverts_fft(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        np.testing.assert_allclose(ifft(fft(x)), x, atol=1e-8)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fft_bluestein(np.array([]))

    def test_parseval(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=37)
        spectrum = fft(x)
        assert np.sum(np.abs(spectrum) ** 2) / 37 == pytest.approx(
            float(np.sum(x * x)), rel=1e-9
        )

    def test_dc_component_is_sum(self):
        x = np.array([1.0, 2.0, 3.0, 4.5])
        assert fft(x)[0].real == pytest.approx(10.5)


class TestConvolveFFT:
    @pytest.mark.parametrize("use_numpy", [True, False])
    def test_matches_direct(self, use_numpy):
        rng = np.random.default_rng(2)
        x = rng.integers(0, 4, size=40).astype(float)
        y = rng.integers(0, 4, size=23).astype(float)
        np.testing.assert_allclose(
            convolve_fft(x, y, use_numpy=use_numpy),
            convolve_full_direct(x, y),
            atol=1e-7,
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            convolve_fft(np.array([]), np.array([1.0]))

    @settings(max_examples=30, deadline=None)
    @given(
        x=st.lists(st.integers(0, 3), min_size=1, max_size=32),
        y=st.lists(st.integers(0, 3), min_size=1, max_size=32),
    )
    def test_fft_engines_agree(self, x, y):
        x = np.array(x, dtype=float)
        y = np.array(y, dtype=float)
        np.testing.assert_allclose(
            convolve_fft(x, y, use_numpy=True),
            convolve_fft(x, y, use_numpy=False),
            atol=1e-7,
        )


class TestCorrelateFFT:
    @pytest.mark.parametrize("use_numpy", [True, False])
    def test_matches_direct_correlation(self, use_numpy):
        rng = np.random.default_rng(3)
        x = rng.integers(0, 2, size=50).astype(float)
        np.testing.assert_allclose(
            correlate_fft(x, use_numpy=use_numpy), correlate_direct(x, x), atol=1e-7
        )

    def test_cross_correlation(self):
        x = np.array([1.0, 0.0, 1.0, 1.0])
        y = np.array([1.0, 1.0, 0.0, 1.0])
        np.testing.assert_allclose(correlate_fft(x, y), correlate_direct(x, y), atol=1e-9)

    def test_rejects_unequal_lengths(self):
        with pytest.raises(ValueError):
            correlate_fft(np.ones(3), np.ones(4))

    def test_indicator_autocorrelation_counts_shifted_matches(self):
        # The miner's core identity: corr[p] counts {j: x_j = x_{j+p} = 1}.
        x = np.array([1, 1, 0, 1, 1, 0, 1, 1], dtype=float)
        corr = np.rint(correlate_fft(x)).astype(int)
        for p in range(1, 8):
            expected = int(np.sum(x[:-p] * x[p:]))
            assert corr[p] == expected

"""Tests for repro.convolution.bitops — packed-word bit kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.convolution.bigint import bit_positions, pack_bits
from repro.convolution.bitops import (
    pack_positions,
    popcount,
    set_bit_positions,
    shift_right,
    shifted_self_and,
    unpack_bits,
    word_and,
)


def positions_strategy(max_total=500):
    """(positions, total_bits) with positions unique but unsorted."""
    return st.integers(1, max_total).flatmap(
        lambda total: st.tuples(
            st.lists(
                st.integers(0, total - 1), unique=True, max_size=total
            ).map(lambda ps: np.array(ps, dtype=np.int64)),
            st.just(total),
        )
    )


def words_strategy(max_words=16):
    return st.lists(
        st.integers(0, 2**64 - 1), min_size=0, max_size=max_words
    ).map(lambda ws: np.array(ws, dtype=np.uint64))


class TestPackPositions:
    @settings(max_examples=150, deadline=None)
    @given(args=positions_strategy())
    def test_matches_bigint_pack(self, args):
        """The reduceat pack equals the big-integer reference bit-for-bit."""
        positions, total = args
        words = pack_positions(positions, total)
        expected = pack_bits(positions, total)
        got = int.from_bytes(words.tobytes(), "little")
        assert got == expected
        assert words.size == (total + 63) // 64

    @settings(max_examples=60, deadline=None)
    @given(args=positions_strategy())
    def test_unsorted_input_equals_sorted(self, args):
        positions, total = args
        shuffled = positions[::-1].copy()
        np.testing.assert_array_equal(
            pack_positions(shuffled, total), pack_positions(positions, total)
        )

    def test_duplicates_are_idempotent(self):
        words = pack_positions(np.array([3, 3, 64, 3, 64]), 100)
        assert set_bit_positions(words).tolist() == [3, 64]

    def test_empty(self):
        assert pack_positions(np.array([], dtype=np.int64), 130).tolist() == [0, 0, 0]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_positions(np.array([64]), 64)
        with pytest.raises(ValueError):
            pack_positions(np.array([-1]), 64)


class TestSetBitPositions:
    @settings(max_examples=150, deadline=None)
    @given(words=words_strategy())
    def test_ascending_without_sort(self, words):
        """Decode order is already ascending — the dropped sort was a no-op."""
        got = set_bit_positions(words)
        assert np.all(np.diff(got) > 0)
        expected = bit_positions(int.from_bytes(words.tobytes(), "little"))
        np.testing.assert_array_equal(got, expected)

    @settings(max_examples=80, deadline=None)
    @given(args=positions_strategy())
    def test_roundtrip_with_pack(self, args):
        positions, total = args
        got = set_bit_positions(pack_positions(positions, total))
        np.testing.assert_array_equal(got, np.sort(positions))


class TestPopcountAndUnpack:
    @settings(max_examples=100, deadline=None)
    @given(words=words_strategy())
    def test_popcount_matches_python(self, words):
        expected = sum(int(w).bit_count() for w in words)
        assert popcount(words) == expected

    @settings(max_examples=100, deadline=None)
    @given(words=words_strategy(), trim=st.integers(0, 64))
    def test_unpack_prefix(self, words, trim):
        total = max(0, words.size * 64 - trim)
        bits = unpack_bits(words, total)
        assert bits.size == total
        dense = np.zeros(words.size * 64, dtype=np.uint8)
        dense[set_bit_positions(words)] = 1
        np.testing.assert_array_equal(bits, dense[:total])

    def test_unpack_rejects_overlong(self):
        with pytest.raises(ValueError):
            unpack_bits(np.zeros(1, dtype=np.uint64), 65)


class TestShiftAnd:
    @settings(max_examples=100, deadline=None)
    @given(words=words_strategy(), bits=st.integers(0, 1100))
    def test_shift_matches_bigint(self, words, bits):
        value = int.from_bytes(words.tobytes(), "little")
        got = int.from_bytes(shift_right(words, bits).tobytes(), "little")
        assert got == value >> bits

    @settings(max_examples=100, deadline=None)
    @given(words=words_strategy(max_words=8), bits=st.integers(0, 300))
    def test_shifted_self_and_matches_bigint(self, words, bits):
        value = int.from_bytes(words.tobytes(), "little")
        expected = bit_positions(value & (value >> bits))
        np.testing.assert_array_equal(shifted_self_and(words, bits), expected)

    def test_word_and(self):
        a = np.array([0b1100, 0b1010], dtype=np.uint64)
        b = np.array([0b1010, 0b1010], dtype=np.uint64)
        assert word_and(a, b).tolist() == [0b1000, 0b1010]

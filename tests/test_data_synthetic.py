"""Tests for repro.data.synthetic."""

import numpy as np
import pytest

from repro.core import SpectralMiner
from repro.data import generate_pattern, generate_periodic, generate_random


class TestGeneratePattern:
    def test_length_and_range(self, rng):
        pattern = generate_pattern(10, 5, rng=rng)
        assert pattern.size == 10
        assert pattern.min() >= 0 and pattern.max() < 5

    def test_normal_distribution_prefers_centre(self, rng):
        samples = np.concatenate(
            [generate_pattern(1000, 9, "normal", rng) for _ in range(3)]
        )
        counts = np.bincount(samples, minlength=9)
        assert counts[4] > counts[0]
        assert counts[4] > counts[8]

    def test_uniform_distribution_is_flat(self, rng):
        samples = generate_pattern(9000, 3, "uniform", rng)
        counts = np.bincount(samples, minlength=3)
        assert counts.min() > 0.25 * samples.size

    def test_rejects_unknown_distribution(self, rng):
        with pytest.raises(ValueError):
            generate_pattern(5, 3, "cauchy", rng)

    def test_rejects_bad_sizes(self, rng):
        with pytest.raises(ValueError):
            generate_pattern(0, 3, rng=rng)
        with pytest.raises(ValueError):
            generate_pattern(3, 0, rng=rng)


class TestGeneratePeriodic:
    def test_is_perfectly_periodic(self, rng):
        series = generate_periodic(103, 7, 5, rng=rng)
        codes = series.codes
        assert all(codes[i] == codes[i % 7] for i in range(103))

    def test_exact_length(self, rng):
        assert generate_periodic(100, 7, 4, rng=rng).length == 100

    def test_supplied_pattern(self):
        series = generate_periodic(9, 3, 3, pattern=np.array([0, 1, 2]))
        assert series.codes.tolist() == [0, 1, 2] * 3

    def test_supplied_pattern_validation(self):
        with pytest.raises(ValueError):
            generate_periodic(9, 3, 3, pattern=np.array([0, 1]))
        with pytest.raises(ValueError):
            generate_periodic(9, 3, 2, pattern=np.array([0, 1, 5]))

    def test_embedded_period_detected_with_confidence_one(self, rng):
        series = generate_periodic(500, 25, 10, rng=rng)
        table = SpectralMiner(max_period=100).periodicity_table(series)
        for period in (25, 50, 75):
            assert table.confidence(period) == pytest.approx(1.0)

    def test_reproducible_with_seed(self):
        a = generate_periodic(50, 5, 4, rng=np.random.default_rng(42))
        b = generate_periodic(50, 5, 4, rng=np.random.default_rng(42))
        assert a == b

    def test_rejects_bad_length(self, rng):
        with pytest.raises(ValueError):
            generate_periodic(0, 5, 3, rng=rng)


class TestGenerateRandom:
    def test_length_and_alphabet(self, rng):
        series = generate_random(200, 6, rng=rng)
        assert series.length == 200
        assert series.sigma == 6

    def test_no_strong_periodicity(self, rng):
        series = generate_random(2000, 10, rng=rng)
        table = SpectralMiner(max_period=50).periodicity_table(series)
        # i.i.d. uniform data: supports hover near 1/sigma, far from 1.
        for period in (10, 25, 50):
            assert table.confidence(period) < 0.5

    def test_rejects_bad_length(self, rng):
        with pytest.raises(ValueError):
            generate_random(0, 3, rng=rng)

"""Tests for repro.core.convolution_miner — Fig. 2 of the paper."""

import numpy as np
import pytest

from repro.baselines import brute_force_table
from repro.core import ConvolutionMiner, SymbolSequence

from conftest import random_series


class TestWitnessSets:
    def test_paper_acccabb_p1(self, mapping_series):
        witnesses = ConvolutionMiner().witness_sets(mapping_series)
        assert sorted(witnesses[1].tolist()) == [1, 11, 14]

    def test_paper_acccabb_p4(self, mapping_series):
        witnesses = ConvolutionMiner(max_period=4).witness_sets(mapping_series)
        assert witnesses[4].tolist() == [6]

    def test_paper_abcabbabcb_p3(self, paper_series):
        witnesses = ConvolutionMiner().witness_sets(paper_series)
        assert sorted(witnesses[3].tolist()) == [7, 9, 16, 18]

    def test_paper_cabccbacd_p4(self):
        series = SymbolSequence.from_string("cabccbacd")
        witnesses = ConvolutionMiner().witness_sets(series)
        assert sorted(witnesses[4].tolist()) == [6, 18]

    def test_engines_agree(self, paper_series):
        bitand = ConvolutionMiner(engine="bitand").witness_sets(paper_series)
        kronecker = ConvolutionMiner(engine="kronecker").witness_sets(paper_series)
        assert bitand.keys() == kronecker.keys()
        for p in bitand:
            assert bitand[p].tolist() == kronecker[p].tolist()

    def test_engines_agree_randomised(self, rng):
        for _ in range(5):
            series = random_series(rng, int(rng.integers(4, 60)), int(rng.integers(2, 6)))
            bitand = ConvolutionMiner(engine="bitand").witness_sets(series)
            kronecker = ConvolutionMiner(engine="kronecker").witness_sets(series)
            assert bitand.keys() == kronecker.keys()
            for p in bitand:
                assert bitand[p].tolist() == kronecker[p].tolist()

    def test_empty_for_tiny_series(self):
        series = SymbolSequence.from_string("a")
        assert ConvolutionMiner().witness_sets(series) == {}

    def test_max_period_caps_output(self, paper_series):
        witnesses = ConvolutionMiner(max_period=2).witness_sets(paper_series)
        assert all(p <= 2 for p in witnesses)

    def test_default_max_period_is_half_n(self, paper_series):
        witnesses = ConvolutionMiner().witness_sets(paper_series)
        assert max(witnesses) <= paper_series.length // 2

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            ConvolutionMiner(engine="quantum")

    def test_rejects_bad_max_period(self, paper_series):
        with pytest.raises(ValueError):
            ConvolutionMiner(max_period=0).witness_sets(paper_series)

    def test_kronecker_refuses_oversized_input(self, rng):
        series = random_series(rng, 20_000, 3)
        with pytest.raises(ValueError, match="bitand"):
            ConvolutionMiner(engine="kronecker").witness_sets(series)


class TestPeriodicityTable:
    def test_matches_brute_force_on_paper_example(self, paper_series):
        mined = ConvolutionMiner().periodicity_table(paper_series)
        oracle = brute_force_table(paper_series)
        assert mined == oracle

    def test_matches_brute_force_randomised(self, rng):
        for _ in range(8):
            series = random_series(rng, int(rng.integers(5, 80)), int(rng.integers(2, 7)))
            assert ConvolutionMiner().periodicity_table(series) == brute_force_table(series)

    def test_constant_series_everything_periodic(self):
        series = SymbolSequence.from_codes([0] * 12, alphabet=__import__("repro").Alphabet("ab"))
        table = ConvolutionMiner().periodicity_table(series)
        for p in range(1, 7):
            assert table.confidence(p) == pytest.approx(1.0)

    def test_alternating_series(self):
        series = SymbolSequence.from_string("ababababab")
        table = ConvolutionMiner().periodicity_table(series)
        assert table.confidence(2) == pytest.approx(1.0)
        assert table.confidence(3) == 0.0

    def test_single_symbol_alphabet(self):
        series = SymbolSequence.from_string("aaaaaa")
        table = ConvolutionMiner().periodicity_table(series)
        assert table.confidence(1) == pytest.approx(1.0)

"""Tests for repro.streaming — chunked readers and the online miner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Alphabet, SpectralMiner, SymbolSequence
from repro.streaming import ChunkedReader, OnlineMiner, write_symbol_file

from conftest import random_series, series_strategy


class TestChunkedReader:
    def test_from_sequence(self, rng):
        series = random_series(rng, 100, 4)
        reader = ChunkedReader(series, block_size=17)
        blocks = list(reader)
        assert sum(b.size for b in blocks) == 100
        assert np.concatenate(blocks).tolist() == series.codes.tolist()

    def test_repeatable_iteration(self, rng):
        series = random_series(rng, 50, 3)
        reader = ChunkedReader(series, block_size=8)
        assert [b.tolist() for b in reader] == [b.tolist() for b in reader]

    def test_from_file_round_trip(self, rng, tmp_path):
        series = random_series(rng, 200, 5)
        path = write_symbol_file(series, tmp_path / "series.txt")
        reader = ChunkedReader(path, alphabet=series.alphabet, block_size=33)
        assert reader.materialize() == series

    def test_from_iterable(self):
        reader = ChunkedReader(iter("abcabc"), alphabet=Alphabet("abc"), block_size=4)
        assert reader.materialize().to_string() == "abcabc"

    def test_requires_alphabet_for_raw_sources(self, tmp_path):
        with pytest.raises(ValueError):
            ChunkedReader(tmp_path / "x.txt")

    def test_rejects_bad_block_size(self, rng):
        with pytest.raises(ValueError):
            ChunkedReader(random_series(rng, 10, 2), block_size=0)

    def test_sigma_property(self, rng):
        reader = ChunkedReader(random_series(rng, 10, 4))
        assert reader.sigma == 4

    def test_write_rejects_multichar_symbols(self, tmp_path):
        series = SymbolSequence.from_symbols(["up", "down"])
        with pytest.raises(ValueError):
            write_symbol_file(series, tmp_path / "bad.txt")


class TestOnlineMiner:
    def test_matches_batch_miner(self, rng):
        series = random_series(rng, 300, 4)
        cap = 40
        online = OnlineMiner(series.alphabet, max_period=cap)
        online.consume(series)
        batch = SpectralMiner(max_period=cap).periodicity_table(series)
        assert online.table() == batch

    @settings(max_examples=40, deadline=None)
    @given(series=series_strategy(min_size=2, max_size=80), cap=st.integers(1, 20))
    def test_matches_batch_miner_property(self, series, cap):
        online = OnlineMiner(series.alphabet, max_period=cap)
        online.consume(series)
        batch = SpectralMiner(max_period=cap).periodicity_table(series)
        assert online.table() == batch

    def test_incremental_equals_one_shot(self, rng):
        series = random_series(rng, 120, 3)
        online = OnlineMiner(series.alphabet, max_period=15)
        for code in series.codes:
            online.append_code(int(code))
        batch = SpectralMiner(max_period=15).periodicity_table(series)
        assert online.table() == batch

    def test_append_by_symbol(self):
        miner = OnlineMiner(Alphabet("ab"), max_period=3)
        miner.extend("ababab")
        assert miner.n == 6
        assert miner.confidence(2) == pytest.approx(1.0)

    def test_confidence_grows_with_evidence(self, rng):
        miner = OnlineMiner(Alphabet.of_size(4), max_period=10)
        miner.extend_codes([0, 1, 2, 3] * 25)
        assert miner.confidence(4) == pytest.approx(1.0)
        assert miner.confidence(3) < 0.5

    def test_confidence_beyond_cap_raises(self):
        miner = OnlineMiner(Alphabet("ab"), max_period=5)
        with pytest.raises(ValueError):
            miner.confidence(6)

    def test_rejects_bad_code(self):
        miner = OnlineMiner(Alphabet("ab"), max_period=3)
        with pytest.raises(ValueError):
            miner.append_code(7)

    def test_rejects_bad_max_period(self):
        with pytest.raises(ValueError):
            OnlineMiner(Alphabet("ab"), max_period=0)

    def test_consume_rejects_other_alphabet(self, rng):
        miner = OnlineMiner(Alphabet("ab"), max_period=3)
        with pytest.raises(ValueError):
            miner.consume(random_series(rng, 10, 3))

    def test_periodicities_live_view(self):
        miner = OnlineMiner(Alphabet("ab"), max_period=4)
        miner.extend("abab")
        assert miner.periodicities(0.9) != []

    def test_table_snapshot_is_independent(self):
        miner = OnlineMiner(Alphabet("ab"), max_period=4)
        miner.extend("abababab")
        snapshot = miner.table()
        miner.extend("bbbbbb")
        assert snapshot.n == 8  # unchanged by later appends

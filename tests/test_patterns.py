"""Tests for repro.core.patterns."""

import pytest

from repro.core import Alphabet, DONT_CARE, PeriodicPattern


@pytest.fixture
def abc():
    return Alphabet("abc")


class TestConstruction:
    def test_single(self):
        pattern = PeriodicPattern.single(3, 1, 2, support=0.5)
        assert pattern.slots == (None, 2, None)
        assert pattern.support == 0.5

    def test_single_rejects_bad_position(self):
        with pytest.raises(ValueError):
            PeriodicPattern.single(3, 3, 0)

    def test_from_items(self):
        pattern = PeriodicPattern.from_items(4, {0: 1, 3: 2})
        assert pattern.slots == (1, None, None, 2)

    def test_from_items_rejects_bad_position(self):
        with pytest.raises(ValueError):
            PeriodicPattern.from_items(2, {5: 0})

    def test_rejects_wrong_slot_count(self):
        with pytest.raises(ValueError):
            PeriodicPattern(3, (None, 0))

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            PeriodicPattern(0, ())

    def test_rejects_bad_support(self):
        with pytest.raises(ValueError):
            PeriodicPattern(1, (0,), support=1.5)


class TestStructure:
    def test_items_sorted_by_position(self):
        pattern = PeriodicPattern.from_items(5, {4: 0, 1: 2})
        assert pattern.items == ((1, 2), (4, 0))

    def test_arity(self):
        assert PeriodicPattern.from_items(5, {0: 1, 2: 1}).arity == 2
        assert PeriodicPattern.single(5, 0, 1).arity == 1

    def test_with_support_preserves_identity(self):
        pattern = PeriodicPattern.single(3, 0, 1)
        scored = pattern.with_support(0.8)
        assert scored == pattern  # support excluded from equality
        assert scored.support == 0.8

    def test_equality_ignores_support(self):
        a = PeriodicPattern.single(3, 0, 1, support=0.2)
        b = PeriodicPattern.single(3, 0, 1, support=0.9)
        assert a == b
        assert hash(a) == hash(b)

    def test_matches_segment(self):
        pattern = PeriodicPattern.from_items(3, {0: 0, 2: 1})
        assert pattern.matches_segment((0, 2, 1))
        assert not pattern.matches_segment((1, 2, 1))

    def test_matches_segment_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            PeriodicPattern.single(3, 0, 0).matches_segment((0,))


class TestRendering:
    def test_to_string_paper_style(self, abc):
        # The paper's "ab*" pattern for T = abcabbabcb, p = 3.
        pattern = PeriodicPattern.from_items(3, {0: 0, 1: 1})
        assert pattern.to_string(abc) == "ab" + DONT_CARE

    def test_all_dont_care_renders_stars(self, abc):
        assert PeriodicPattern(3, (None, None, None)).to_string(abc) == "***"

    def test_symbols_mapping(self, abc):
        pattern = PeriodicPattern.from_items(4, {1: 2})
        assert pattern.symbols(abc) == {1: "c"}

    def test_str_contains_period_and_support(self):
        text = str(PeriodicPattern.single(7, 2, 0, support=0.25))
        assert "p=7" in text and "0.250" in text

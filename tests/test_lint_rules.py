"""Per-rule fixtures for repro.lint: every rule must fire on its
known-bad snippet and stay silent on the idiomatic repo pattern.

The fixtures mirror real shapes from ``src/repro`` — the good snippets
are distilled from :mod:`repro.convolution.bitops`,
:mod:`repro.parallel.transport`, and :mod:`repro.parallel.engine`, so a
rule change that would start flagging the production idioms fails here
first.
"""

from repro.lint import FileContext, lint_sources

REGISTRY_MODULE = '''
from typing import Literal

Engine = Literal["bitand", "kronecker"]
ENGINES: tuple[str, ...] = ("bitand", "kronecker")
'''


def _run(sources, docs=None, select=None):
    contexts = [
        FileContext.from_source(src, path) for path, src in sources.items()
    ]
    return lint_sources(contexts, docs=docs or {}, select=select)


def _rules_fired(sources, docs=None, select=None):
    return [f.rule for f in _run(sources, docs, select)]


class TestRL001Uint64Safety:
    def test_int_literal_mix_fires(self):
        bad = (
            "import numpy as np\n"
            "def f(words):\n"
            "    words = np.asarray(words, dtype=np.uint64)\n"
            "    return words & 0xFF\n"
        )
        assert _rules_fired({"src/m.py": bad}) == ["RL001"]

    def test_uncast_shift_amount_fires(self):
        bad = (
            "import numpy as np\n"
            "def f(words, bits):\n"
            "    packed = np.zeros(4, dtype=np.uint64)\n"
            "    return packed >> bits\n"
        )
        assert _rules_fired({"src/m.py": bad}) == ["RL001"]

    def test_inplace_update_fires(self):
        bad = (
            "import numpy as np\n"
            "def f():\n"
            "    x = np.uint64(7)\n"
            "    x <<= 3\n"
            "    return x\n"
        )
        assert _rules_fired({"src/m.py": bad}) == ["RL001"]

    def test_producer_return_values_are_tracked(self):
        bad = (
            "from repro.convolution.bitops import shift_right\n"
            "def f(words):\n"
            "    shifted = shift_right(words, 3)\n"
            "    return shifted + 1\n"
        )
        assert _rules_fired({"src/m.py": bad}) == ["RL001"]

    def test_bitops_idiom_is_clean(self):
        good = (
            "import numpy as np\n"
            "_WORD = 64\n"
            "def shift(words, bits):\n"
            "    words = np.asarray(words, dtype=np.uint64)\n"
            "    shifted = np.zeros_like(words)\n"
            "    shifted[:-1] = words[1:] << np.uint64(_WORD - bits)\n"
            "    return (shifted >> np.uint64(bits)) | shifted\n"
        )
        assert _rules_fired({"src/m.py": good}) == []

    def test_astype_uint64_counts_as_cast(self):
        good = (
            "import numpy as np\n"
            "def masks(positions):\n"
            "    return np.uint64(1) << (positions % 64).astype(np.uint64)\n"
        )
        assert _rules_fired({"src/m.py": good}) == []

    def test_untracked_int_arrays_are_ignored(self):
        good = (
            "import numpy as np\n"
            "def f(words):\n"
            "    nonzero = np.nonzero(words)[0]\n"
            "    return nonzero * 64 + 1\n"
        )
        assert _rules_fired({"src/m.py": good}) == []

    def test_size_attribute_is_not_uint64(self):
        good = (
            "import numpy as np\n"
            "def f(words):\n"
            "    words = np.ascontiguousarray(words, dtype=np.uint64)\n"
            "    return words.size * 64\n"
        )
        assert _rules_fired({"src/m.py": good}) == []


class TestRL002SharedMemoryLifecycle:
    def test_close_outside_finally_fires(self):
        bad = (
            "from multiprocessing import shared_memory\n"
            "def worker(name):\n"
            "    shm = shared_memory.SharedMemory(name=name)\n"
            "    data = bytes(shm.buf[:4])\n"
            "    shm.close()\n"
            "    return data\n"
        )
        assert _rules_fired({"src/m.py": bad}) == ["RL002"]

    def test_unbound_handle_fires(self):
        bad = (
            "from multiprocessing import shared_memory\n"
            "def peek(name):\n"
            "    return bytes(shared_memory.SharedMemory(name=name).buf[:4])\n"
        )
        assert _rules_fired({"src/m.py": bad}) == ["RL002"]

    def test_attach_helper_without_finally_fires(self):
        bad = (
            "from repro.parallel.transport import attach_words\n"
            "def worker(name, n_words):\n"
            "    words, shm = attach_words(name, n_words)\n"
            "    total = int(words.sum())\n"
            "    shm.close()\n"
            "    return total\n"
        )
        assert _rules_fired({"src/m.py": bad}) == ["RL002"]

    def test_read_through_return_is_not_a_transfer(self):
        # Returning a value *derived* from the handle leaks it; only
        # returning the handle itself transfers ownership.
        bad = (
            "from multiprocessing import shared_memory\n"
            "def peek(name):\n"
            "    shm = shared_memory.SharedMemory(name=name)\n"
            "    return bytes(shm.buf[:4])\n"
        )
        assert _rules_fired({"src/m.py": bad}) == ["RL002"]

    def test_try_finally_is_clean(self):
        good = (
            "from repro.parallel.transport import attach_words\n"
            "def worker(name, n_words):\n"
            "    words, shm = attach_words(name, n_words)\n"
            "    try:\n"
            "        return int(words.sum())\n"
            "    finally:\n"
            "        del words\n"
            "        shm.close()\n"
        )
        assert _rules_fired({"src/m.py": good}) == []

    def test_ownership_transfer_by_return_is_clean(self):
        good = (
            "from multiprocessing import shared_memory\n"
            "def attach(name):\n"
            "    shm = shared_memory.SharedMemory(name=name)\n"
            "    return shm\n"
            "def attach_pair(name):\n"
            "    shm = shared_memory.SharedMemory(name=name)\n"
            "    return shm.buf, shm\n"
        )
        assert _rules_fired({"src/m.py": good}) == []

    def test_self_attribute_is_class_managed(self):
        good = (
            "from multiprocessing import shared_memory\n"
            "class Owner:\n"
            "    def __init__(self, n: int) -> None:\n"
            "        self._shm = shared_memory.SharedMemory(create=True, size=n)\n"
            "    def close(self) -> None:\n"
            "        self._shm.close()\n"
        )
        assert _rules_fired({"src/m.py": good}) == []


class TestRL003PicklableTargets:
    def test_lambda_fires(self):
        bad = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(lambda x: x, i) for i in items]\n"
        )
        assert _rules_fired({"src/m.py": bad}) == ["RL003"]

    def test_bound_method_fires(self):
        bad = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "class M:\n"
            "    def go(self, x):\n"
            "        return x\n"
            "    def run(self, items):\n"
            "        with ProcessPoolExecutor() as pool:\n"
            "            return [pool.submit(self.go, i) for i in items]\n"
        )
        assert _rules_fired({"src/m.py": bad}) == ["RL003"]

    def test_closure_fires(self):
        bad = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def run(items):\n"
            "    def helper(x):\n"
            "        return x + 1\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(helper, i) for i in items]\n"
        )
        assert _rules_fired({"src/m.py": bad}) == ["RL003"]

    def test_module_level_target_is_clean(self):
        good = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def work(x):\n"
            "    return x + 1\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(work, i) for i in items]\n"
        )
        assert _rules_fired({"src/m.py": good}) == []

    def test_thread_pool_lambdas_are_fine(self):
        good = (
            "from concurrent.futures import ThreadPoolExecutor\n"
            "def run(items):\n"
            "    with ThreadPoolExecutor() as pool:\n"
            "        return [pool.submit(lambda x: x, i) for i in items]\n"
        )
        assert _rules_fired({"src/m.py": good}) == []


class TestRL004EngineRegistryParity:
    def test_unknown_engine_kwarg_fires(self):
        user = 'from repro import mine\nresult = mine(s, engine="warp")\n'
        fired = _rules_fired(
            {"src/convolution_miner.py": REGISTRY_MODULE, "src/use.py": user}
        )
        assert fired == ["RL004"]

    def test_known_engine_kwarg_is_clean(self):
        user = 'from repro import mine\nresult = mine(s, engine="bitand")\n'
        fired = _rules_fired(
            {"src/convolution_miner.py": REGISTRY_MODULE, "src/use.py": user}
        )
        assert fired == []

    def test_pytest_raises_body_is_exempt(self):
        test = (
            "import pytest\n"
            "def test_rejects():\n"
            "    with pytest.raises(ValueError):\n"
            '        Miner(engine="quantum")\n'
            '    Miner(engine="bitand")\n'
            '    Miner(engine="kronecker")\n'
        )
        fired = _rules_fired(
            {
                "src/convolution_miner.py": REGISTRY_MODULE,
                "tests/test_x.py": test,
            }
        )
        assert fired == []

    def test_literal_alias_drift_fires(self):
        drifted = REGISTRY_MODULE.replace(
            'Literal["bitand", "kronecker"]', 'Literal["bitand"]'
        )
        fired = _rules_fired({"src/convolution_miner.py": drifted})
        assert fired == ["RL004"]

    def test_handlisted_argparse_choices_fire(self):
        cli = (
            "import argparse\n"
            "parser = argparse.ArgumentParser()\n"
            'parser.add_argument("--engine", choices=("bitand",), '
            'default="bitand")\n'
        )
        fired = _rules_fired(
            {"src/convolution_miner.py": REGISTRY_MODULE, "src/cli.py": cli}
        )
        assert fired == ["RL004"]

    def test_derived_argparse_choices_are_clean(self):
        cli = (
            "import argparse\n"
            "from repro.core import ENGINES\n"
            "parser = argparse.ArgumentParser()\n"
            'parser.add_argument("--engine", choices=ENGINES, '
            'default="bitand")\n'
        )
        fired = _rules_fired(
            {"src/convolution_miner.py": REGISTRY_MODULE, "src/cli.py": cli}
        )
        assert fired == []

    def test_unknown_engine_in_docs_fires(self):
        docs = {"docs/api.md": 'Use `engine="warp"` for speed.\n'}
        fired = _rules_fired(
            {"src/convolution_miner.py": REGISTRY_MODULE}, docs=docs
        )
        assert "RL004" in fired

    def test_registry_engine_missing_from_docs_fires(self):
        docs = {"docs/api.md": "Only bitand is documented here.\n"}
        fired = _rules_fired(
            {"src/convolution_miner.py": REGISTRY_MODULE}, docs=docs
        )
        assert fired == ["RL004"]  # 'kronecker' never mentioned

    def test_registry_engine_untested_fires(self):
        test = 'def test_one():\n    Miner(engine="bitand")\n'
        fired = _rules_fired(
            {
                "src/convolution_miner.py": REGISTRY_MODULE,
                "tests/test_x.py": test,
            }
        )
        assert fired == ["RL004"]  # 'kronecker' never exercised

    def test_no_registry_in_scan_set_skips_rule(self):
        user = 'result = mine(s, engine="warp")\n'
        assert _rules_fired({"src/use.py": user}) == []


POLICY_MODULE = '''
FALLBACK_CHAIN: tuple[str, ...] = ("process", "thread", "serial")
FAULT_POLICIES: tuple[str, ...] = ("fallback", "raise")
'''


class TestRL004FaultPolicyParity:
    def test_unknown_on_fault_kwarg_fires(self):
        user = 'miner = Miner(on_fault="explode")\n'
        fired = _rules_fired(
            {"src/engine.py": POLICY_MODULE, "src/use.py": user}
        )
        assert fired == ["RL004"]

    def test_known_on_fault_kwarg_is_clean(self):
        user = 'miner = Miner(on_fault="fallback")\n'
        fired = _rules_fired(
            {"src/engine.py": POLICY_MODULE, "src/use.py": user}
        )
        assert fired == []

    def test_pytest_raises_body_is_exempt(self):
        test = (
            "import pytest\n"
            "def test_rejects():\n"
            "    with pytest.raises(ValueError):\n"
            '        Miner(on_fault="explode")\n'
            '    Miner(on_fault="fallback")\n'
            '    Miner(on_fault="raise")\n'
        )
        fired = _rules_fired(
            {"src/engine.py": POLICY_MODULE, "tests/test_x.py": test}
        )
        assert fired == []

    def test_handlisted_argparse_choices_fire(self):
        cli = (
            "import argparse\n"
            "parser = argparse.ArgumentParser()\n"
            'parser.add_argument("--on-fault", choices=("fallback",), '
            'default="fallback")\n'
        )
        fired = _rules_fired(
            {"src/engine.py": POLICY_MODULE, "src/cli.py": cli}
        )
        assert fired == ["RL004"]

    def test_derived_argparse_choices_are_clean(self):
        cli = (
            "import argparse\n"
            "from repro.parallel import FAULT_POLICIES\n"
            "parser = argparse.ArgumentParser()\n"
            'parser.add_argument("--on-fault", choices=FAULT_POLICIES, '
            'default="fallback")\n'
        )
        fired = _rules_fired(
            {"src/engine.py": POLICY_MODULE, "src/cli.py": cli}
        )
        assert fired == []

    def test_unknown_policy_in_docs_fires(self):
        docs = {
            "docs/api.md": (
                'Pass `on_fault="explode"`; the fallback and raise '
                "policies degrade process, thread, serial backends.\n"
            )
        }
        fired = _rules_fired({"src/engine.py": POLICY_MODULE}, docs=docs)
        assert fired == ["RL004"]

    def test_policy_missing_from_docs_fires(self):
        docs = {
            "docs/api.md": (
                "Only the fallback policy over process, thread, and "
                "serial backends is documented here.\n"
            )
        }
        fired = _rules_fired({"src/engine.py": POLICY_MODULE}, docs=docs)
        assert fired == ["RL004"]  # 'raise' never mentioned

    def test_chain_backend_missing_from_docs_fires(self):
        docs = {
            "docs/api.md": (
                "The fallback and raise policies degrade from process "
                "to thread pools.\n"  # 'serial' never mentioned
            )
        }
        fired = _rules_fired({"src/engine.py": POLICY_MODULE}, docs=docs)
        assert fired == ["RL004"]

    def test_policy_untested_fires(self):
        test = 'def test_one():\n    Miner(on_fault="fallback")\n'
        fired = _rules_fired(
            {"src/engine.py": POLICY_MODULE, "tests/test_x.py": test}
        )
        assert fired == ["RL004"]  # 'raise' never exercised

    def test_no_policy_registry_in_scan_set_skips_checks(self):
        user = 'miner = Miner(on_fault="explode")\n'
        assert _rules_fired({"src/use.py": user}) == []


class TestRL005Hygiene:
    def test_mutable_default_fires(self):
        bad = "def f(x, acc=[]):\n    return acc\n"
        assert _rules_fired({"src/m.py": bad}) == ["RL005"]

    def test_mutable_kwonly_default_fires(self):
        bad = "def f(x, *, acc={}):\n    return acc\n"
        assert _rules_fired({"src/m.py": bad}) == ["RL005"]

    def test_bare_except_fires(self):
        bad = (
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except:\n"
            "        return 0\n"
        )
        assert _rules_fired({"src/m.py": bad}) == ["RL005"]

    def test_typed_except_and_none_default_are_clean(self):
        good = (
            "def f(x, acc=None):\n"
            "    try:\n"
            "        return acc or [x]\n"
            "    except ValueError:\n"
            "        return []\n"
        )
        assert _rules_fired({"src/m.py": good}) == []

    def test_rule_scoped_to_src(self):
        bad = "def f(x, acc=[]):\n    return acc\n"
        assert _rules_fired({"tests/helper.py": bad}) == []

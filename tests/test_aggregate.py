"""Tests for repro.analysis.aggregate."""

import numpy as np
import pytest

from repro.analysis import consensus_periods, mine_many
from repro.data import PowerConsumptionSimulator, generate_periodic, generate_random


class TestMineMany:
    def test_one_table_per_series(self, rng):
        collection = [generate_periodic(200, 7, 4, rng=rng) for _ in range(3)]
        tables = mine_many(collection, psi=0.5, max_period=20)
        assert len(tables) == 3
        assert all(t.n == 200 for t in tables)

    def test_rejects_empty_collection(self):
        with pytest.raises(ValueError):
            mine_many([], psi=0.5)


class TestConsensus:
    def test_shared_period_reaches_consensus(self, rng):
        customers = [
            PowerConsumptionSimulator().series(np.random.default_rng(seed))
            for seed in range(5)
        ]
        tables = mine_many(customers, psi=0.5, max_period=30)
        consensus = consensus_periods(tables, psi=0.6, min_prevalence=0.8)
        assert any(c.period == 7 for c in consensus)

    def test_idiosyncratic_period_filtered(self, rng):
        # Four random series plus one strongly periodic one: the periodic
        # structure of the odd one out must not reach 50% prevalence.
        collection = [generate_random(300, 6, rng=rng) for _ in range(4)]
        collection.append(generate_periodic(300, 13, 6, rng=rng))
        tables = mine_many(collection, psi=0.5, max_period=40)
        consensus = consensus_periods(tables, psi=0.9, min_prevalence=0.5)
        assert all(c.period != 13 for c in consensus)

    def test_prevalence_and_confidence_fields(self, rng):
        collection = [generate_periodic(150, 6, 4, rng=rng) for _ in range(4)]
        tables = mine_many(collection, psi=0.5, max_period=12)
        consensus = consensus_periods(tables, psi=0.9, min_prevalence=1.0)
        six = next(c for c in consensus if c.period == 6)
        assert six.detections == 4
        assert six.prevalence == 1.0
        assert six.mean_confidence == pytest.approx(1.0)

    def test_sorted_strongest_first(self, rng):
        collection = [generate_periodic(200, 8, 4, rng=rng) for _ in range(3)]
        tables = mine_many(collection, psi=0.3, max_period=30)
        consensus = consensus_periods(tables, psi=0.5, min_prevalence=0.3)
        keys = [(-c.prevalence, -c.mean_confidence, c.period) for c in consensus]
        assert keys == sorted(keys)

    def test_rejects_bad_prevalence(self, rng):
        tables = mine_many([generate_periodic(50, 5, 3, rng=rng)], psi=0.5)
        with pytest.raises(ValueError):
            consensus_periods(tables, 0.5, min_prevalence=0.0)

    def test_rejects_empty_tables(self):
        with pytest.raises(ValueError):
            consensus_periods([], 0.5)

"""Edge-case sweep: degenerate inputs through every public entry point.

Empty, single-symbol, constant, two-symbol, and unary-alphabet series
must either work with sensible semantics or fail with a clear
ValueError — never crash with an internal error.
"""

import numpy as np
import pytest

from repro import ConvolutionMiner, OnlineMiner, SpectralMiner, mine
from repro.analysis import base_periods, describe_period, score_periodicities
from repro.core import segment_supports
from repro.baselines import (
    Berberidis,
    HanPartialMiner,
    MaHellerstein,
    MaxSubpatternMiner,
    PeriodicTrends,
    WarpingDetector,
    brute_force_table,
)
from repro.core import Alphabet, SymbolSequence, projection, segment_periodicities
from repro.streaming import SlidingWindowMiner

EMPTY = SymbolSequence.from_codes([], Alphabet("ab"))
SINGLE = SymbolSequence.from_string("a", Alphabet("ab"))
PAIR = SymbolSequence.from_string("ab")
CONSTANT = SymbolSequence.from_string("aaaaaaaa", Alphabet("ab"))
UNARY = SymbolSequence.from_codes([0] * 6, Alphabet("a"))


class TestMiners:
    @pytest.mark.parametrize("series", [EMPTY, SINGLE], ids=["empty", "single"])
    def test_miners_yield_empty_tables(self, series):
        assert SpectralMiner().periodicity_table(series).periods == []
        assert ConvolutionMiner().periodicity_table(series).periods == []
        assert brute_force_table(series).periods == []

    def test_pair_series(self):
        table = SpectralMiner().periodicity_table(PAIR)
        assert table.confidence(1) == 0.0  # a != b at shift 1

    def test_constant_series_every_period_perfect(self):
        table = ConvolutionMiner().periodicity_table(CONSTANT)
        for p in range(1, 5):
            assert table.confidence(p) == pytest.approx(1.0)

    def test_unary_alphabet(self):
        table = SpectralMiner().periodicity_table(UNARY)
        assert table.confidence(1) == pytest.approx(1.0)
        result = mine(UNARY, psi=0.9)
        assert result.patterns

    def test_mine_on_tiny_series(self):
        result = mine(PAIR, psi=0.5)
        assert result.patterns == ()


class TestCoreHelpers:
    def test_projection_of_short_series(self):
        assert projection(PAIR, 5, 1).to_string() == "b"

    def test_segment_supports_tiny(self):
        assert segment_supports(SINGLE).tolist() == [1.0]
        assert segment_supports(EMPTY).tolist() == [1.0]

    def test_segment_periodicities_tiny(self):
        assert segment_periodicities(PAIR, psi=0.5) == []


class TestAnalysis:
    def test_base_periods_empty_table(self):
        table = SpectralMiner().periodicity_table(EMPTY)
        assert base_periods(table, psi=0.5) == []

    def test_score_periodicities_constant(self):
        table = SpectralMiner().periodicity_table(CONSTANT)
        scored = score_periodicities(CONSTANT, table, psi=0.9)
        # Every score exists and lies in [0, 1].
        assert scored
        assert all(0.0 <= s.p_value <= 1.0 for s in scored)

    def test_describe_period_one_sample(self):
        assert describe_period(1, 3600).seconds == 3600


class TestBaselines:
    def test_trends_rejects_tiny(self):
        with pytest.raises(ValueError):
            PeriodicTrends(method="exact").analyse(SINGLE)

    def test_trends_on_pair(self):
        result = PeriodicTrends(method="exact").analyse(PAIR)
        assert result.ranked_periods == (1,)

    def test_ma_hellerstein_empty_and_tiny(self):
        assert MaHellerstein().candidates(SINGLE) == []
        assert MaHellerstein().candidates(CONSTANT) != None  # noqa: E711

    def test_berberidis_tiny(self):
        assert Berberidis().candidate_periods(PAIR) == []

    def test_han_miners_tiny(self):
        assert HanPartialMiner().mine(SINGLE, 3) == []
        assert MaxSubpatternMiner().mine(SINGLE, 3) == []

    def test_warping_rejects_degenerate(self):
        with pytest.raises(ValueError):
            WarpingDetector().confidence(SINGLE, 1)

    def test_warping_on_pair(self):
        assert 0.0 <= WarpingDetector(band=1).confidence(PAIR, 1) <= 1.0


class TestStreaming:
    def test_online_miner_no_input(self):
        miner = OnlineMiner(Alphabet("ab"), max_period=4)
        assert miner.table().periods == []
        assert miner.periodicities(0.5) == []

    def test_online_miner_single_symbol(self):
        miner = OnlineMiner(Alphabet("ab"), max_period=4)
        miner.append("a")
        assert miner.n == 1
        assert miner.table().periods == []

    def test_sliding_window_no_input(self):
        miner = SlidingWindowMiner(Alphabet("ab"), max_period=2, window=5)
        assert miner.size == 0
        assert miner.table().periods == []

    def test_sliding_window_eviction_of_everything(self):
        miner = SlidingWindowMiner(Alphabet("ab"), max_period=2, window=3)
        miner.extend_codes([0, 0, 0, 1, 1, 1])
        # Window now holds only 'b's; period-1 evidence must reflect that.
        table = miner.table()
        assert table.f2(1, 1, 0) == 2
        assert table.f2(1, 0, 0) == 0


class TestFaultHardenedEngine:
    """Degenerate inputs through the hardened parallel engine: faults
    planned everywhere must change nothing when there is nothing (or
    almost nothing) to mine."""

    def _miner(self, **kwargs):
        from repro.faults import FaultPlan

        kwargs.setdefault("fault_plan", FaultPlan.random(seed=1, n_shards=8))
        kwargs.setdefault("retry_backoff", 0.0)
        return ConvolutionMiner(engine="parallel", **kwargs)

    @pytest.mark.parametrize("series", [EMPTY, SINGLE], ids=["empty", "single"])
    def test_degenerate_series_yield_empty_tables(self, series):
        assert self._miner().periodicity_table(series).periods == []
        assert self._miner().fault_events == ()

    def test_unary_alphabet_matches_serial(self):
        serial = ConvolutionMiner(engine="wordarray").periodicity_table(UNARY)
        assert self._miner().periodicity_table(UNARY) == serial

    def test_pair_and_constant_match_serial(self):
        for series in (PAIR, CONSTANT):
            serial = ConvolutionMiner(
                engine="wordarray"
            ).periodicity_table(series)
            assert self._miner().periodicity_table(series) == serial

    def test_more_workers_than_shards(self):
        # 8 periods at most, 32 workers: the planner must not starve or
        # duplicate shards, faults or not.
        series = SymbolSequence.from_string("abcaabca" * 2)
        serial = ConvolutionMiner(engine="wordarray").periodicity_table(series)
        assert self._miner(workers=32).periodicity_table(series) == serial


class TestStreamingEdges:
    def test_extend_codes_with_empty_block_is_a_noop(self):
        online = OnlineMiner(Alphabet("ab"), max_period=4)
        online.extend_codes([])
        assert online.n == 0
        assert online.table().periods == []
        windowed = SlidingWindowMiner(Alphabet("ab"), max_period=2, window=3)
        windowed.extend_codes([])
        assert windowed.size == 0

    def test_extend_codes_empty_between_blocks_preserves_evidence(self):
        miner = OnlineMiner(Alphabet("ab"), max_period=4)
        miner.extend_codes([0, 1, 0, 1])
        before = miner.table()
        miner.extend_codes([])
        assert miner.table() == before

    def test_streaming_agrees_with_hardened_parallel_engine(self):
        from repro.faults import FaultPlan

        rng = np.random.default_rng(12)
        codes = rng.integers(0, 3, size=240)
        alphabet = Alphabet("abc")
        miner = OnlineMiner(alphabet, max_period=16)
        miner.extend_codes(codes)
        streamed = miner.table()
        series = SymbolSequence.from_codes(codes, alphabet)
        parallel = ConvolutionMiner(
            engine="parallel",
            max_period=16,
            workers=4,
            retry_backoff=0.0,
            fault_plan=FaultPlan.random(seed=3, n_shards=8),
        ).periodicity_table(series)
        assert parallel == streamed


class TestConvolutionSubstrate:
    def test_fft_of_length_one(self):
        from repro.convolution import fft, ifft

        np.testing.assert_allclose(fft([5.0]), [5.0 + 0j])
        np.testing.assert_allclose(ifft([5.0]), [5.0 + 0j])

    def test_witnesses_of_minimal_series(self):
        witnesses = ConvolutionMiner().witness_sets(PAIR)
        assert witnesses == {}

    def test_blocked_match_counts_single_symbol(self):
        from repro.convolution import blocked_match_counts

        counts = blocked_match_counts([np.array([0])], sigma=1, max_lag=0)
        assert counts.tolist() == [[1]]

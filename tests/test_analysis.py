"""Tests for repro.analysis."""

import numpy as np
import pytest

from repro.analysis import (
    Timing,
    average_confidences,
    miner_confidences,
    time_callable,
    trends_confidences,
)
from repro.baselines import PeriodicTrends
from repro.data import generate_periodic


class TestMinerConfidences:
    def test_perfect_periods(self, rng):
        series = generate_periodic(400, 20, 6, rng=rng)
        confidences = miner_confidences(series, [20, 40, 60])
        assert all(c == pytest.approx(1.0) for c in confidences.values())

    def test_absent_period_zero(self, rng):
        series = generate_periodic(400, 20, 6, rng=rng)
        assert miner_confidences(series, [19])[19] < 0.5

    def test_requires_periods(self, rng):
        series = generate_periodic(50, 5, 3, rng=rng)
        with pytest.raises(ValueError):
            miner_confidences(series, [])


class TestTrendsConfidences:
    def test_top_candidate_high_confidence(self, rng):
        series = generate_periodic(600, 30, 6, rng=rng)
        confidences = trends_confidences(
            series, [30], trends=PeriodicTrends(method="exact")
        )
        assert confidences[30] > 0.9

    def test_requires_periods(self, rng):
        series = generate_periodic(50, 5, 3, rng=rng)
        with pytest.raises(ValueError):
            trends_confidences(series, [])


class TestAverageConfidences:
    def test_averaging_is_stable_for_deterministic_generator(self, rng):
        series = generate_periodic(300, 10, 5, rng=rng)
        averaged = average_confidences(
            lambda _: series, [10, 20], runs=3, rng=rng
        )
        single = miner_confidences(series, [10, 20])
        assert averaged == pytest.approx(single)

    def test_trends_algorithm_dispatch(self, rng):
        series = generate_periodic(300, 10, 5, rng=rng)
        averaged = average_confidences(
            lambda _: series,
            [10],
            runs=2,
            rng=rng,
            algorithm="trends",
            trends=PeriodicTrends(method="exact"),
        )
        assert 0.0 < averaged[10] <= 1.0

    def test_rejects_bad_runs(self, rng):
        with pytest.raises(ValueError):
            average_confidences(lambda _: None, [5], runs=0, rng=rng)

    def test_rejects_unknown_algorithm(self, rng):
        with pytest.raises(ValueError):
            average_confidences(lambda _: None, [5], runs=1, rng=rng, algorithm="x")


class TestTiming:
    def test_reports_positive_times(self):
        timing = time_callable(lambda: sum(range(2000)), repeats=2)
        assert isinstance(timing, Timing)
        assert timing.best > 0
        assert timing.mean >= timing.best
        assert timing.repeats == 2

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

"""Tests for repro.core.spectral_miner."""

import numpy as np
import pytest

from repro.baselines import brute_force_table
from repro.core import Alphabet, SpectralMiner, SymbolSequence
from repro.streaming import ChunkedReader

from conftest import random_series


class TestMatchCounts:
    def test_counts_against_definition(self, paper_series):
        counts = SpectralMiner().match_counts(paper_series)
        codes = paper_series.codes
        for k in range(paper_series.sigma):
            assert counts[k, 0] == np.count_nonzero(codes == k)
            for p in range(1, paper_series.length // 2 + 1):
                expected = np.count_nonzero((codes[:-p] == k) & (codes[p:] == k))
                assert counts[k, p] == expected

    def test_shape(self, paper_series):
        counts = SpectralMiner(max_period=4).match_counts(paper_series)
        assert counts.shape == (paper_series.sigma, 5)

    def test_empty_series(self):
        series = SymbolSequence.from_codes([], Alphabet("ab"))
        counts = SpectralMiner().match_counts(series)
        assert counts.size == 0 or counts.shape[1] == 1

    def test_from_scratch_fft_variant_agrees(self, rng):
        series = random_series(rng, 64, 4)
        numpy_counts = SpectralMiner(use_numpy_fft=True).match_counts(series)
        scratch_counts = SpectralMiner(use_numpy_fft=False).match_counts(series)
        np.testing.assert_array_equal(numpy_counts, scratch_counts)


class TestCandidatePeriodSymbols:
    def test_perfectly_periodic_symbol(self):
        series = SymbolSequence.from_string("abcabcabcabc")
        pairs = SpectralMiner().candidate_period_symbols(series, psi=0.9)
        assert (3, 0) in pairs and (3, 1) in pairs and (3, 2) in pairs

    def test_never_nominates_period_zero(self, paper_series):
        pairs = SpectralMiner().candidate_period_symbols(paper_series, psi=0.1)
        assert all(p >= 1 for p, _ in pairs)

    def test_superset_of_table_candidates(self, rng):
        """The detection phase may over-nominate but never under-nominate."""
        for _ in range(5):
            series = random_series(rng, 60, 3)
            psi = 0.5
            nominated = set(SpectralMiner().candidate_period_symbols(series, psi))
            table = SpectralMiner().periodicity_table(series)
            actual = {
                (h.period, h.symbol_code) for h in table.periodicities(psi)
            }
            assert actual <= nominated

    def test_rejects_bad_psi(self, paper_series):
        with pytest.raises(ValueError):
            SpectralMiner().candidate_period_symbols(paper_series, psi=0.0)


class TestPeriodicityTable:
    def test_unpruned_matches_brute_force(self, rng):
        for _ in range(8):
            series = random_series(rng, int(rng.integers(5, 90)), int(rng.integers(2, 6)))
            assert SpectralMiner().periodicity_table(series) == brute_force_table(series)

    def test_pruned_table_preserves_hits_at_psi(self, rng):
        for _ in range(5):
            series = random_series(rng, 70, 3)
            psi = 0.4
            full = SpectralMiner().periodicity_table(series)
            pruned = SpectralMiner(psi=psi).periodicity_table(series)
            full_hits = {
                (h.period, h.position, h.symbol_code, h.f2)
                for h in full.periodicities(psi)
            }
            pruned_hits = {
                (h.period, h.position, h.symbol_code, h.f2)
                for h in pruned.periodicities(psi)
            }
            assert full_hits == pruned_hits

    def test_pruned_is_subset_of_full(self, rng):
        series = random_series(rng, 80, 4)
        full = SpectralMiner().periodicity_table(series)
        pruned = SpectralMiner(psi=0.6).periodicity_table(series)
        for p in pruned.periods:
            for (k, l), count in pruned.counts_for(p).items():
                assert full.f2(p, k, l) == count

    def test_rejects_bad_psi(self):
        with pytest.raises(ValueError):
            SpectralMiner(psi=1.5)

    def test_rejects_bad_max_period(self, paper_series):
        with pytest.raises(ValueError):
            SpectralMiner(max_period=0).periodicity_table(paper_series)

    def test_tiny_series_empty_table(self):
        series = SymbolSequence.from_string("a")
        assert SpectralMiner().periodicity_table(series).periods == []


class TestOutOfCore:
    def test_matches_in_memory(self, rng):
        series = random_series(rng, 400, 4)
        miner = SpectralMiner(max_period=50)
        reader = ChunkedReader(series, block_size=64)
        streamed = miner.periodicity_table_out_of_core(iter(reader), series)
        assert streamed == miner.periodicity_table(series)

    def test_pruned_out_of_core(self, rng):
        series = random_series(rng, 300, 3)
        miner = SpectralMiner(psi=0.3, max_period=40)
        reader = ChunkedReader(series, block_size=50)
        streamed = miner.periodicity_table_out_of_core(iter(reader), series)
        in_memory = miner.periodicity_table(series)
        assert streamed == in_memory

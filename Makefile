# Convenience targets for the reproduction repository.

.PHONY: install test test-fast coverage lint typecheck bench bench-regress bench-stream examples experiments clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# The quick loop: everything except @pytest.mark.slow (property sweeps,
# fuzzing, experiment end-to-ends).  Target budget: ~30s.
test-fast:
	pytest tests/ -m "not slow"

# Full suite under coverage.py with the CI line floor; needs the dev
# extras (pip install -e .[dev]) for pytest-cov.
coverage:
	pytest tests/ --cov=repro --cov-report=term --cov-report=xml --cov-fail-under=85

# Custom AST invariant analyzers (RL001-RL005) over code and docs.
lint:
	PYTHONPATH=src python -m repro.lint src tests docs README.md

# Strict typing gate: mypy when installed, stdlib annotation gate otherwise.
typecheck:
	python scripts/typecheck.py

bench:
	pytest benchmarks/ --benchmark-only

# Perf-regression trajectory: times the exact engines and writes
# BENCH_PR1.json so later PRs can diff wall-clock against this one.
bench-regress:
	PYTHONPATH=src python benchmarks/bench_parallel.py --out BENCH_PR1.json

# Streaming-layer trajectory: chunked vs per-symbol ingestion for the
# online and sliding-window miners, written to BENCH_PR3.json.
bench-stream:
	PYTHONPATH=src python benchmarks/bench_streaming_regress.py --out BENCH_PR3.json

examples:
	for ex in examples/*.py; do echo "== $$ex"; python $$ex || exit 1; done

experiments:
	repro experiment all --quick --report experiment_report.md

clean:
	rm -rf benchmarks/results .pytest_cache build *.egg-info experiment_report.md

# Convenience targets for the reproduction repository.

.PHONY: install test bench examples experiments clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	for ex in examples/*.py; do echo "== $$ex"; python $$ex || exit 1; done

experiments:
	repro experiment all --quick --report experiment_report.md

clean:
	rm -rf benchmarks/results .pytest_cache build *.egg-info experiment_report.md

"""Dense ``F2`` evidence store and the vectorized chunk kernels.

The per-symbol streaming update (one ``O(max_period)`` gather plus a
Python dict bump per match) is interpreter-bound: at ``max_period=128``
it tops out around 50k symbols/s.  This module replaces it with
amortized-vectorized ingestion.  For a chunk of ``m`` arrivals the match
pairs ``t_{j-p} == t_j`` for every ``p <= max_period`` fall out of one
``(m, max_period)`` lag-sweep comparison against a sliding view of the
history-extended chunk, and the resulting keys are scatter-added into a
:class:`DenseCountStore` — a flat ``np.int64`` array over every
``(period, code, position)`` triple (layout defined by
:func:`repro.core.periodicity.dense_offsets`) — via ``np.bincount`` /
``np.add.at``.  Eviction retraction in the sliding window is the mirror
kernel: compare each evicted symbol against its ``max_period``
successors and scatter-subtract.

Memory is ``sigma * max_period * (max_period + 1) / 2`` counters —
dense, unlike the sparse dicts it replaces — which buys branch-free
scatter updates and ``O(sigma * p)`` live confidence reads.  At
``sigma=8, max_period=128`` that is ~0.5 MB.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..core.alphabet import Alphabet
from ..core.periodicity import PeriodicityTable, dense_offsets, dense_size

__all__ = ["DenseCountStore"]

#: past this fraction of the store size, one bincount over the whole
#: store beats element-wise np.add.at on the match keys.
_BINCOUNT_THRESHOLD = 16


class DenseCountStore:
    """Flattened ``(period, code, position)`` pair counts up to a cap.

    Parameters
    ----------
    sigma:
        Alphabet size.
    max_period:
        Largest period maintained.
    """

    def __init__(self, sigma: int, max_period: int) -> None:
        self._sigma = sigma
        self._max_period = max_period
        self._offsets = dense_offsets(sigma, max_period)
        self._counts = np.zeros(dense_size(sigma, max_period), dtype=np.int64)

    # -- introspection -------------------------------------------------------

    @property
    def sigma(self) -> int:
        """Alphabet size of the store."""
        return self._sigma

    @property
    def max_period(self) -> int:
        """Largest period maintained."""
        return self._max_period

    @property
    def counts(self) -> np.ndarray:
        """The live flat counter array (mutating it mutates the store)."""
        return self._counts

    # -- key construction ----------------------------------------------------

    def flatten(
        self, periods: np.ndarray, codes: np.ndarray, residues: np.ndarray
    ) -> np.ndarray:
        """Flat store indices of ``(period, code, residue)`` triples."""
        return self._offsets[periods] + codes * periods + residues

    def arrival_keys(
        self, history: np.ndarray, chunk: np.ndarray, first_index: int
    ) -> np.ndarray:
        """Flat keys of every pair created by a chunk of arrivals.

        ``chunk`` holds the codes of the arrivals at absolute stream
        indices ``first_index .. first_index + len(chunk) - 1``;
        ``history`` the ``min(max_period, first_index)`` codes that
        immediately precede them.  Arrival ``t_j`` creates one pair per
        lag ``p <= max_period`` with ``t_{j-p} == t_j``; the key of a
        pair is ``(p, code, (j - p) % p)`` — the *earlier* element's
        residue, as everywhere in the streaming layer.
        """
        period_cap = self._max_period
        if chunk.size == 0:
            return np.empty(0, dtype=np.int64)
        if history.size != min(period_cap, first_index):
            raise ValueError("history must hold min(max_period, first_index) codes")
        pad = period_cap - history.size
        parts = [history, chunk]
        if pad:
            # Codes are >= 0, so a -1 pad can never produce a match:
            # arrivals with fewer than max_period predecessors simply
            # sweep fewer real lags.
            parts.insert(0, np.full(pad, -1, dtype=np.int64))
        extended = np.concatenate(parts)
        # Row k of the view is extended[k : k + cap + 1]; its last entry
        # is chunk[k] and column i holds the symbol at lag cap - i.
        view = sliding_window_view(extended, period_cap + 1)
        mask = view[:, :period_cap] == view[:, period_cap:]
        rows, columns = np.divmod(np.flatnonzero(mask), period_cap)
        periods = period_cap - columns
        # The earlier element's residue (j - p) % p equals j % p.
        return self.flatten(periods, chunk[rows], (first_index + rows) % periods)

    def eviction_keys(
        self, extended: np.ndarray, extended_first: int, evict_first: int, count: int
    ) -> np.ndarray:
        """Flat keys of every pair whose earlier element is evicted.

        ``extended`` holds contiguous codes starting at absolute index
        ``extended_first`` and must cover
        ``evict_first .. evict_first + count - 1 + max_period``.  Evicting
        index ``e`` retracts the pairs ``(e, e + p)`` with
        ``t_e == t_{e+p}`` for every ``p <= max_period`` — keyed, like
        arrivals, by the earlier element's residue ``e % p``.
        """
        period_cap = self._max_period
        if count <= 0:
            return np.empty(0, dtype=np.int64)
        low = evict_first - extended_first
        segment = extended[low : low + count + period_cap]
        if segment.size != count + period_cap:
            raise ValueError("extended array does not cover the eviction span")
        view = sliding_window_view(segment, period_cap + 1)
        mask = view[:, 1:] == view[:, :1]
        rows, columns = np.divmod(np.flatnonzero(mask), period_cap)
        periods = columns + 1
        evicted = evict_first + rows
        return self.flatten(periods, segment[rows], evicted % periods)

    # -- scatter updates -----------------------------------------------------

    def add(self, keys: np.ndarray) -> None:
        """Scatter-add one pair per key into the store."""
        self._apply(keys, 1)

    def subtract(self, keys: np.ndarray) -> None:
        """Scatter-subtract one pair per key from the store."""
        self._apply(keys, -1)
        if keys.size and bool(np.any(self._counts[keys] < 0)):
            raise AssertionError("pair count went negative — eviction bug")

    def _apply(self, keys: np.ndarray, sign: int) -> None:
        if keys.size == 0:
            return
        if keys.size * _BINCOUNT_THRESHOLD >= self._counts.size:
            delta = np.bincount(keys, minlength=self._counts.size)
            if sign > 0:
                self._counts += delta
            else:
                self._counts -= delta
        else:
            np.add.at(self._counts, keys, sign)

    # -- reads ---------------------------------------------------------------

    def period_block(self, period: int) -> np.ndarray:
        """View of period ``p``'s counters, shaped ``(sigma, p)``."""
        if not 1 <= period <= self._max_period:
            raise ValueError(f"period {period} outside 1..{self._max_period}")
        start = int(self._offsets[period])
        block = self._counts[start : start + self._sigma * period]
        return block.reshape(self._sigma, period)

    def confidence(self, n: int, period: int, shift: int = 0) -> float:
        """Best support of any ``(code, position)`` at ``period``.

        ``n`` is the length of the series the counts describe; ``shift``
        rotates absolute residues to series-relative positions (the
        sliding window keys counts by absolute index mod ``p`` and its
        window starts at ``shift`` mod ``p``).  Reads the live counters
        directly — no snapshot, no dict copies.
        """
        block = self.period_block(period)
        best_per_position = block.max(axis=0)
        positions = (np.arange(period, dtype=np.int64) - shift) % period
        pairs = _projection_pairs_vector(n, period, positions)
        valid = pairs > 0
        if not bool(np.any(valid)):
            return 0.0
        return float((best_per_position[valid] / pairs[valid]).max())

    def table(
        self, n: int, alphabet: Alphabet, start: int = 0
    ) -> PeriodicityTable:
        """Snapshot as a standard :class:`PeriodicityTable`.

        ``start`` is the absolute index of the first in-scope symbol:
        residues stored absolutely are rotated to positions relative to
        it (Definition 1's ``l``), which is the identity for the online
        miner (``start == 0``).
        """
        dense = self._counts
        if start:
            dense = self._rotated(start)
        return PeriodicityTable.from_dense(n, alphabet, dense, self._max_period)

    def _rotated(self, start: int) -> np.ndarray:
        """Copy with every period block rolled to ``start``-relative positions."""
        rotated = self._counts.copy()
        for period in range(1, self._max_period + 1):
            shift = start % period
            if not shift:
                continue
            begin = int(self._offsets[period])
            block = self._counts[begin : begin + self._sigma * period]
            rolled = np.roll(block.reshape(self._sigma, period), -shift, axis=1)
            rotated[begin : begin + self._sigma * period] = rolled.ravel()
        return rotated


def _projection_pairs_vector(n: int, period: int, positions: np.ndarray) -> np.ndarray:
    """Vectorised ``projection_pairs(n, period, l)`` over many ``l``."""
    lengths = np.where(
        positions < n, -((positions - n) // period), 0
    )
    return np.maximum(lengths - 1, 0)

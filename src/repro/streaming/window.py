"""Sliding-window periodicity mining over an unbounded stream.

:class:`~repro.streaming.online.OnlineMiner` accumulates evidence over
the whole stream, which is right for stationary data; monitoring
scenarios instead want the periodicities of *the recent past*.  A
:class:`SlidingWindowMiner` maintains the full ``F2`` evidence of
exactly the last ``window`` symbols: arrivals add their match pairs
against the in-window suffix, and evictions retract the pairs whose
earlier element just left.  Both directions run chunked and vectorised:
a chunk of ``m`` arrivals is one lag-sweep comparison for the
additions and one mirrored sweep over the ``m`` evicted symbols for the
retractions, scatter-applied to a dense
:class:`~repro.streaming.counts.DenseCountStore`.  Because ``p <=
max_period < window``, a pair is always added (when its later element
arrives) before it is retracted (when its earlier element leaves), so
the batched add/subtract order is exact — the test suite asserts
equality with batch mining of the window at every step and for every
chunking, including chunks larger than the window itself.

Positions are the subtle part: Definition 1's ``l`` is relative to the
start of the (windowed) series, which moves every slide.  Internally the
counts are keyed by the *absolute* earlier index mod ``p`` — invariant
under sliding — and rotated to window-relative positions only when a
snapshot is taken.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import numpy as np

from ..core.alphabet import Alphabet
from ..core.periodicity import PeriodicityTable, SymbolPeriodicity
from .counts import DenseCountStore
from .online import DEFAULT_CHUNK_SIZE, as_code_array, check_code_range

__all__ = ["SlidingWindowMiner"]


class SlidingWindowMiner:
    """Evidence over the last ``window`` stream symbols, incrementally.

    Parameters
    ----------
    alphabet:
        Alphabet of the stream.
    max_period:
        Largest period maintained; must be smaller than ``window``.
    window:
        Window length in symbols.
    chunk_size:
        Internal ingestion block for :meth:`extend_codes`; a pure
        performance knob — every chunking yields identical evidence.
    """

    def __init__(
        self,
        alphabet: Alphabet,
        max_period: int,
        window: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if max_period < 1:
            raise ValueError("max_period must be >= 1")
        if window <= max_period:
            raise ValueError("window must exceed max_period")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self._alphabet = alphabet
        self._max_period = max_period
        self._window = window
        self._chunk_size = chunk_size
        self._buffer = np.full(window, -1, dtype=np.int64)
        self._n = 0  # total symbols consumed
        self._store = DenseCountStore(len(alphabet), max_period)

    # -- properties --------------------------------------------------------------

    @property
    def alphabet(self) -> Alphabet:
        """Alphabet of the stream."""
        return self._alphabet

    @property
    def window(self) -> int:
        """The window length."""
        return self._window

    @property
    def max_period(self) -> int:
        """The period cap."""
        return self._max_period

    @property
    def n(self) -> int:
        """Total symbols consumed so far."""
        return self._n

    @property
    def start(self) -> int:
        """Absolute index of the oldest in-window symbol."""
        return max(self._n - self._window, 0)

    @property
    def size(self) -> int:
        """Current window occupancy (< window until it fills)."""
        return min(self._n, self._window)

    @property
    def chunk_size(self) -> int:
        """Internal ingestion block size."""
        return self._chunk_size

    # -- feeding -------------------------------------------------------------------

    def append(self, symbol: Hashable) -> None:
        """Consume one symbol."""
        self.append_code(self._alphabet.code(symbol))

    def append_code(self, code: int) -> None:
        """Consume one symbol given as an integer code.

        Compatibility wrapper over the chunked path.
        """
        self.extend_codes(np.array([code], dtype=np.int64))

    def extend_codes(self, codes: Iterable[int] | np.ndarray) -> None:
        """Consume many symbols given as codes — the vectorised fast path."""
        block = as_code_array(codes)
        check_code_range(block, len(self._alphabet))
        step = self._chunk_size
        for start in range(0, block.size, step):
            self._ingest(block[start : start + step])

    def _ingest(self, chunk: np.ndarray) -> None:
        """One chunk: batched arrival additions and eviction retractions.

        Both sweeps read from the *pre-chunk* buffer plus the chunk
        itself, gathered before the buffer is mutated, so evicted
        symbols stay readable even when the chunk overwrites their
        slots.
        """
        first = self._n
        cap = self._max_period
        window = self._window

        # Additions: arrival j pairs with lags 1..min(cap, j).  The
        # earlier element j - p always sits inside the window at the
        # time of arrival because p <= cap < window.
        depth = min(cap, first)
        held = np.arange(first - depth, first)
        history = self._buffer[held % window]
        self._store.add(self._store.arrival_keys(history, chunk, first))

        # Evictions: appending j pushes out index j - window, so this
        # chunk evicts indices first - window .. first + m - 1 - window
        # (clipped at 0).  Each evicted e retracts its pairs (e, e + p)
        # for p <= cap, every one of which was added when e + p arrived
        # (possibly earlier in this same chunk — adds run first, so the
        # batched order is exact).
        evict_first = max(first - window, 0)
        evict_count = first + chunk.size - window - evict_first
        if evict_count > 0:
            end = evict_first + evict_count + cap  # exclusive span end
            spans = np.arange(evict_first, min(end, first))
            parts = [self._buffer[spans % window]]
            if end > first:  # chunk longer than window - cap: span
                parts.append(chunk[: end - first])  # reaches into it
            evicted = np.concatenate(parts)
            self._store.subtract(
                self._store.eviction_keys(evicted, evict_first, evict_first, evict_count)
            )

        tail = chunk[-min(chunk.size, window) :]
        positions = np.arange(first + chunk.size - tail.size, first + chunk.size)
        self._buffer[positions % window] = tail
        self._n += chunk.size

    # -- snapshots ------------------------------------------------------------------

    def table(self) -> PeriodicityTable:
        """Evidence table of the current window (relative positions)."""
        return self._store.table(self.size, self._alphabet, start=self.start)

    def confidence(self, period: int) -> float:
        """Best support of any symbol periodicity at ``period`` right now.

        Reads the live dense counters — no table snapshot, no copies.
        """
        if period > self._max_period:
            raise ValueError(
                f"period {period} exceeds the maintained cap {self._max_period}"
            )
        return self._store.confidence(self.size, period, shift=self.start)

    def periodicities(self, psi: float) -> list[SymbolPeriodicity]:
        """Current symbol periodicities of the window with support >= psi."""
        return self.table().periodicities(psi)

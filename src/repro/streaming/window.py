"""Sliding-window periodicity mining over an unbounded stream.

:class:`~repro.streaming.online.OnlineMiner` accumulates evidence over
the whole stream, which is right for stationary data; monitoring
scenarios instead want the periodicities of *the recent past*.  A
:class:`SlidingWindowMiner` maintains the full ``F2`` evidence of
exactly the last ``window`` symbols: each arrival adds its match pairs
against the in-window suffix, and each eviction retracts the pairs whose
earlier element just left.  At any moment :meth:`table` equals batch
mining of the current window — the test suite asserts the equivalence
at every step of randomized streams.

Positions are the subtle part: Definition 1's ``l`` is relative to the
start of the (windowed) series, which moves every slide.  Internally the
counts are keyed by the *absolute* earlier index mod ``p`` — invariant
under sliding — and rotated to window-relative positions only when a
snapshot is taken.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from ..core.alphabet import Alphabet
from ..core.periodicity import PeriodicityTable, SymbolPeriodicity

__all__ = ["SlidingWindowMiner"]


class SlidingWindowMiner:
    """Evidence over the last ``window`` stream symbols, incrementally.

    Parameters
    ----------
    alphabet:
        Alphabet of the stream.
    max_period:
        Largest period maintained; must be smaller than ``window``.
    window:
        Window length in symbols.
    """

    def __init__(self, alphabet: Alphabet, max_period: int, window: int):
        if max_period < 1:
            raise ValueError("max_period must be >= 1")
        if window <= max_period:
            raise ValueError("window must exceed max_period")
        self._alphabet = alphabet
        self._max_period = max_period
        self._window = window
        self._buffer = np.full(window, -1, dtype=np.int64)
        self._n = 0  # total symbols consumed
        # counts[p][(code, absolute_earlier_index % p)] -> pair count
        self._counts: dict[int, dict[tuple[int, int], int]] = {}

    # -- properties --------------------------------------------------------------

    @property
    def alphabet(self) -> Alphabet:
        """Alphabet of the stream."""
        return self._alphabet

    @property
    def window(self) -> int:
        """The window length."""
        return self._window

    @property
    def max_period(self) -> int:
        """The period cap."""
        return self._max_period

    @property
    def n(self) -> int:
        """Total symbols consumed so far."""
        return self._n

    @property
    def start(self) -> int:
        """Absolute index of the oldest in-window symbol."""
        return max(self._n - self._window, 0)

    @property
    def size(self) -> int:
        """Current window occupancy (< window until it fills)."""
        return min(self._n, self._window)

    # -- feeding -------------------------------------------------------------------

    def append(self, symbol: Hashable) -> None:
        """Consume one symbol."""
        self.append_code(self._alphabet.code(symbol))

    def append_code(self, code: int) -> None:
        """Consume one symbol given as an integer code."""
        if not 0 <= code < len(self._alphabet):
            raise ValueError(f"code {code} out of range")
        if self._n >= self._window:
            self._evict(self._n - self._window)
        j = self._n
        reach = min(self._max_period, j - self.start)
        if reach:
            lags = np.arange(1, reach + 1)
            slots = (j - lags) % self._window
            matching = lags[self._buffer[slots] == code]
            for p in matching:
                p = int(p)
                self._bump(p, code, (j - p) % p, +1)
        self._buffer[j % self._window] = code
        self._n += 1

    def extend_codes(self, codes) -> None:
        """Consume many symbols given as codes."""
        for code in np.asarray(codes, dtype=np.int64):
            self.append_code(int(code))

    def _evict(self, index: int) -> None:
        """Retract the pairs whose earlier element is ``index``."""
        code = int(self._buffer[index % self._window])
        last = self._n - 1  # newest absolute index currently stored
        reach = min(self._max_period, last - index)
        if reach < 1:
            return
        lags = np.arange(1, reach + 1)
        slots = (index + lags) % self._window
        matching = lags[self._buffer[slots] == code]
        for p in matching:
            p = int(p)
            self._bump(p, code, index % p, -1)

    def _bump(self, period: int, code: int, residue: int, delta: int) -> None:
        table = self._counts.setdefault(period, {})
        key = (code, residue)
        value = table.get(key, 0) + delta
        if value < 0:
            raise AssertionError("pair count went negative — eviction bug")
        if value:
            table[key] = value
        else:
            table.pop(key, None)

    # -- snapshots ------------------------------------------------------------------

    def table(self) -> PeriodicityTable:
        """Evidence table of the current window (relative positions)."""
        start = self.start
        rotated: dict[int, dict[tuple[int, int], int]] = {}
        for p, counts in self._counts.items():
            if not counts:
                continue
            shift = start % p
            rotated[p] = {
                (code, (residue - shift) % p): value
                for (code, residue), value in counts.items()
            }
        return PeriodicityTable(self.size, self._alphabet, rotated)

    def confidence(self, period: int) -> float:
        """Best support of any symbol periodicity at ``period`` right now."""
        if period > self._max_period:
            raise ValueError(
                f"period {period} exceeds the maintained cap {self._max_period}"
            )
        return self.table().confidence(period)

    def periodicities(self, psi: float) -> list[SymbolPeriodicity]:
        """Current symbol periodicities of the window with support >= psi."""
        return self.table().periodicities(psi)

"""Chunked one-pass readers for disk-resident symbol series.

The paper's motivation is online environments and databases "mined while
on disk": the series must be consumed in one sequential pass through
bounded memory.  A :class:`ChunkedReader` provides that access pattern —
an iterable of code blocks — from an in-memory array, a text file of
symbols, or any iterator, and composes with
:func:`repro.convolution.external.blocked_match_counts` and
:meth:`repro.core.spectral_miner.SpectralMiner.periodicity_table_out_of_core`.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Protocol

import numpy as np

from ..core.alphabet import Alphabet
from ..core.sequence import SymbolSequence

__all__ = ["ChunkedReader", "CodeSink", "write_symbol_file"]


class CodeSink(Protocol):
    """Anything that ingests code blocks: miners, monitors, ...

    Satisfied structurally by :class:`~repro.streaming.online.OnlineMiner`,
    :class:`~repro.streaming.window.SlidingWindowMiner`, and
    :class:`~repro.streaming.monitor.PeriodicityMonitor`.
    """

    def extend_codes(self, codes: Iterable[int] | np.ndarray) -> object:
        """Consume one block of integer codes."""
        ...


def write_symbol_file(series: SymbolSequence, path: str | os.PathLike) -> Path:
    """Persist a series as a flat text file of one-character symbols.

    The symbols must render as single characters (the default alphabets
    do).  Returns the path written.
    """
    path = Path(path)
    rendered = series.to_string()
    if len(rendered) != series.length:
        raise ValueError("symbols must render as single characters")
    path.write_text(rendered, encoding="ascii")
    return path


class ChunkedReader:
    """One-pass block access to a symbol series.

    Parameters
    ----------
    source:
        A :class:`SymbolSequence`, a path to a symbol file written by
        :func:`write_symbol_file`, or an iterable of symbols.
    alphabet:
        Required unless the source is a :class:`SymbolSequence`.
    block_size:
        Symbols per yielded block.

    Iterating yields ``int64`` code arrays; each full iteration re-reads
    the source from the start (a fresh pass).
    """

    def __init__(
        self,
        source: SymbolSequence | str | os.PathLike | Iterable,
        alphabet: Alphabet | None = None,
        block_size: int = 1 << 16,
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be positive")
        if isinstance(source, SymbolSequence):
            alphabet = source.alphabet
        elif alphabet is None:
            raise ValueError("an alphabet is required for non-sequence sources")
        self._source = source
        self._alphabet = alphabet
        self._block_size = block_size

    @property
    def alphabet(self) -> Alphabet:
        """Alphabet of the streamed series."""
        return self._alphabet

    @property
    def sigma(self) -> int:
        """Alphabet size."""
        return len(self._alphabet)

    def __iter__(self) -> Iterator[np.ndarray]:
        if isinstance(self._source, SymbolSequence):
            codes = self._source.codes
            for start in range(0, codes.size, self._block_size):
                yield codes[start : start + self._block_size]
        elif isinstance(self._source, (str, os.PathLike)):
            yield from self._iter_file(Path(self._source))
        else:
            yield from self._iter_symbols(iter(self._source))

    def _iter_file(self, path: Path) -> Iterator[np.ndarray]:
        encode = self._alphabet.encode
        with open(path, "r", encoding="ascii") as handle:
            while True:
                chunk = handle.read(self._block_size)
                if not chunk:
                    return
                yield np.array(encode(chunk), dtype=np.int64)

    def _iter_symbols(self, symbols: Iterator) -> Iterator[np.ndarray]:
        encode = self._alphabet.encode
        buffer: list = []
        for symbol in symbols:
            buffer.append(symbol)
            if len(buffer) == self._block_size:
                yield np.array(encode(buffer), dtype=np.int64)
                buffer = []
        if buffer:
            yield np.array(encode(buffer), dtype=np.int64)

    def feed_into(self, sink: CodeSink) -> int:
        """Stream every block straight into a miner or monitor.

        One pass over the source, one vectorised ``extend_codes`` call
        per block — the chunked-ingestion fast path end to end, with no
        per-symbol interpreter work in between.  Returns the number of
        symbols fed.
        """
        total = 0
        for block in self:
            sink.extend_codes(block)
            total += block.size
        return total

    def materialize(self) -> SymbolSequence:
        """Concatenate every block into an in-memory series."""
        blocks = list(self)
        codes = np.concatenate(blocks) if blocks else np.empty(0, dtype=np.int64)
        return SymbolSequence.from_codes(codes, self._alphabet)

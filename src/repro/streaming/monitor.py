"""Drift monitoring of a periodicity over a live stream.

The operational companion of the sliding-window miner: watch the
confidence of one period over the recent window and raise an alarm when
it stays below a floor for several consecutive checks — the "our weekly
rhythm broke" pager for the paper's data-stream setting.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from dataclasses import dataclass

import numpy as np

from ..core.alphabet import Alphabet
from .online import as_code_array, check_code_range
from .window import SlidingWindowMiner

__all__ = ["DriftEvent", "PeriodicityMonitor"]


@dataclass(frozen=True, slots=True)
class DriftEvent:
    """One alarm: the watched period's confidence broke the floor.

    ``position`` is the stream index at which the alarm fired;
    ``confidence`` the window confidence at that moment.
    """

    position: int
    confidence: float


class PeriodicityMonitor:
    """Alarm when a period's windowed confidence drops and stays low.

    Parameters
    ----------
    alphabet:
        Stream alphabet.
    period:
        The period to watch.
    window:
        Sliding-window length (symbols).
    floor:
        Confidence floor; readings below it count toward an alarm.
    patience:
        Consecutive low checks required before an alarm fires.
    check_every:
        Run a confidence check every this many symbols.
    """

    def __init__(
        self,
        alphabet: Alphabet,
        period: int,
        window: int | None = None,
        floor: float = 0.5,
        patience: int = 3,
        check_every: int | None = None,
    ) -> None:
        if period < 1:
            raise ValueError("period must be >= 1")
        if not 0 < floor <= 1:
            raise ValueError("floor must lie in (0, 1]")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        window = 8 * period if window is None else window
        if window <= period:
            raise ValueError("window must exceed the period")
        self._period = period
        self._floor = floor
        self._patience = patience
        self._check_every = period if check_every is None else check_every
        if self._check_every < 1:
            raise ValueError("check_every must be >= 1")
        self._miner = SlidingWindowMiner(alphabet, max_period=period, window=window)
        self._low_streak = 0
        self._alarmed = False
        self._events: list[DriftEvent] = []

    # -- feeding -------------------------------------------------------------------

    @property
    def events(self) -> tuple[DriftEvent, ...]:
        """All alarms raised so far."""
        return tuple(self._events)

    @property
    def alarmed(self) -> bool:
        """Whether the monitor is currently in the alarmed state."""
        return self._alarmed

    @property
    def confidence(self) -> float:
        """Current windowed confidence of the watched period."""
        return self._miner.confidence(self._period)

    def append(self, symbol: Hashable) -> DriftEvent | None:
        """Consume one symbol; returns an event iff an alarm fires now."""
        self._miner.append(symbol)
        return self._check()

    def append_code(self, code: int) -> DriftEvent | None:
        """Consume one symbol code; returns an event iff an alarm fires."""
        self._miner.append_code(code)
        return self._check()

    def extend_codes(self, codes: Iterable[int] | np.ndarray) -> list[DriftEvent]:
        """Consume many codes; returns every alarm fired along the way.

        Chunked fast path: confidence checks only ever happen at stream
        positions that are multiples of ``check_every``, so the codes
        are fed to the sliding-window miner in vectorised sub-chunks
        that end exactly on those boundaries and the check runs between
        them — the fired :class:`DriftEvent` sequence is identical to
        per-symbol feeding.
        """
        block = as_code_array(codes)
        check_code_range(block, len(self._miner.alphabet))
        fired: list[DriftEvent] = []
        consumed = 0
        while consumed < block.size:
            boundary = (self._miner.n // self._check_every + 1) * self._check_every
            upto = min(block.size, consumed + boundary - self._miner.n)
            self._miner.extend_codes(block[consumed:upto])
            consumed = upto
            event = self._check()
            if event is not None:
                fired.append(event)
        return fired

    def _check(self) -> DriftEvent | None:
        n = self._miner.n
        if n % self._check_every or n < self._miner.window:
            return None
        confidence = self._miner.confidence(self._period)
        if confidence < self._floor:
            self._low_streak += 1
        else:
            self._low_streak = 0
            self._alarmed = False
        if self._low_streak >= self._patience and not self._alarmed:
            self._alarmed = True
            event = DriftEvent(position=n, confidence=confidence)
            self._events.append(event)
            return event
        return None

"""Online (incremental) periodicity mining over a growing stream.

The paper targets environments "(e.g., data streams)" that cannot abide
multiple passes; its own reference [4] extends the authors' work to
incremental and online mining.  This module provides that extension: an
:class:`OnlineMiner` maintains the complete ``F2`` evidence for every
period up to ``max_period`` while symbols arrive one at a time or — the
fast path — in chunks.

Appending symbol ``t_j`` creates exactly the match pairs ``(j - p, j)``
with ``t_{j-p} = t_j`` for ``p <= max_period``, so a chunk of ``m``
arrivals creates exactly the pairs of one ``(m, max_period)`` lag-sweep
comparison against the ring buffer of the last ``max_period`` symbols;
the matches are scatter-added into a dense
:class:`~repro.streaming.counts.DenseCountStore` in a handful of numpy
calls — no re-scan, no second pass, no per-symbol interpreter work.  At
any moment :meth:`table` yields a
:class:`~repro.core.periodicity.PeriodicityTable` identical (up to the
period cap) to what the batch miners produce on the prefix seen so far;
the test suite asserts that equivalence bit-for-bit, for every chunking.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import numpy as np

from ..core.alphabet import Alphabet
from ..core.periodicity import PeriodicityTable, SymbolPeriodicity
from ..core.sequence import SymbolSequence
from .counts import DenseCountStore

__all__ = ["OnlineMiner", "DEFAULT_CHUNK_SIZE"]

#: ingestion block size: large enough to amortize the numpy call
#: overhead, small enough that the (chunk, max_period) lag-sweep mask
#: stays cache-resident.
DEFAULT_CHUNK_SIZE = 2048


def as_code_array(codes: Iterable[int] | np.ndarray) -> np.ndarray:
    """Coerce any code source into a contiguous ``int64`` array."""
    if isinstance(codes, np.ndarray):
        return np.ascontiguousarray(codes, dtype=np.int64)
    return np.asarray(list(codes), dtype=np.int64)


def check_code_range(codes: np.ndarray, sigma: int) -> None:
    """Reject any code outside ``0 .. sigma - 1`` (one vectorised scan)."""
    if codes.size == 0:
        return
    low = int(codes.min())
    high = int(codes.max())
    if low < 0 or high >= sigma:
        bad = low if low < 0 else high
        raise ValueError(f"code {bad} out of range")


class OnlineMiner:
    """Incremental miner over an unbounded symbol stream.

    Parameters
    ----------
    alphabet:
        Alphabet of the stream.
    max_period:
        Largest period maintained.  Memory is ``O(max_period)`` for the
        ring buffer plus the dense count store
        (``sigma * max_period^2 / 2`` counters).
    chunk_size:
        Internal ingestion block: :meth:`extend_codes` processes at most
        this many arrivals per vectorised sweep.  Purely a
        performance/memory knob — every chunking produces bit-identical
        evidence.
    """

    def __init__(
        self,
        alphabet: Alphabet,
        max_period: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if max_period < 1:
            raise ValueError("max_period must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self._alphabet = alphabet
        self._max_period = max_period
        self._chunk_size = chunk_size
        self._ring = np.full(max_period, -1, dtype=np.int64)
        self._n = 0
        self._store = DenseCountStore(len(alphabet), max_period)

    # -- feeding the stream -------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of symbols consumed so far."""
        return self._n

    @property
    def max_period(self) -> int:
        """The period cap this miner maintains."""
        return self._max_period

    @property
    def alphabet(self) -> Alphabet:
        """Alphabet of the stream."""
        return self._alphabet

    @property
    def chunk_size(self) -> int:
        """Internal ingestion block size."""
        return self._chunk_size

    def append(self, symbol: Hashable) -> None:
        """Consume one symbol."""
        self.append_code(self._alphabet.code(symbol))

    def append_code(self, code: int) -> None:
        """Consume one symbol given as an integer code.

        Compatibility wrapper over the chunked path: a one-element
        chunk goes through the same vectorised kernel.
        """
        self.extend_codes(np.array([code], dtype=np.int64))

    def extend(self, symbols: Iterable[Hashable]) -> None:
        """Consume many symbols."""
        encode = self._alphabet.code
        self.extend_codes(np.asarray([encode(s) for s in symbols], dtype=np.int64))

    def extend_codes(self, codes: Iterable[int] | np.ndarray) -> None:
        """Consume many symbols given as codes — the vectorised fast path."""
        block = as_code_array(codes)
        check_code_range(block, len(self._alphabet))
        step = self._chunk_size
        for start in range(0, block.size, step):
            self._ingest(block[start : start + step])

    def consume(self, series: SymbolSequence) -> None:
        """Consume a whole series (must share this miner's alphabet)."""
        if series.alphabet != self._alphabet:
            raise ValueError("series alphabet differs from the stream alphabet")
        self.extend_codes(series.codes)

    def _ingest(self, chunk: np.ndarray) -> None:
        """One vectorised sweep: count every pair the chunk creates."""
        first = self._n
        cap = self._max_period
        depth = min(cap, first)
        if depth:
            # Ring slot of position i is i % max_period; gather the
            # `depth` positions preceding the chunk in stream order.
            slots = (first - depth + np.arange(depth)) % cap
            history = self._ring[slots]
        else:
            history = np.empty(0, dtype=np.int64)
        self._store.add(self._store.arrival_keys(history, chunk, first))
        tail = chunk[-min(chunk.size, cap) :]
        positions = np.arange(first + chunk.size - tail.size, first + chunk.size)
        self._ring[positions % cap] = tail
        self._n += chunk.size

    # -- querying the current state -------------------------------------------------

    def table(self) -> PeriodicityTable:
        """Snapshot of the evidence as a standard periodicity table."""
        return self._store.table(self._n, self._alphabet)

    def confidence(self, period: int) -> float:
        """Best current support of any symbol periodicity at ``period``.

        Reads the live dense counters — no table snapshot, no copies.
        """
        if period > self._max_period:
            raise ValueError(
                f"period {period} exceeds the maintained cap {self._max_period}"
            )
        return self._store.confidence(self._n, period)

    def periodicities(self, psi: float) -> list[SymbolPeriodicity]:
        """Current symbol periodicities with support ``>= psi``."""
        return self.table().periodicities(psi)

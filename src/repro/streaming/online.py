"""Online (incremental) periodicity mining over a growing stream.

The paper targets environments "(e.g., data streams)" that cannot abide
multiple passes; its own reference [4] extends the authors' work to
incremental and online mining.  This module provides that extension: an
:class:`OnlineMiner` maintains the complete ``F2`` evidence for every
period up to ``max_period`` while symbols arrive one at a time.

Appending symbol ``t_j`` creates exactly the match pairs
``(j - p, j)`` with ``t_{j-p} = t_j`` for ``p <= max_period``, so one
vectorised comparison of the arrival against a ring buffer of the last
``max_period`` symbols updates the evidence in ``O(max_period)`` — no
re-scan, no second pass.  At any moment :meth:`table` yields a
:class:`~repro.core.periodicity.PeriodicityTable` identical (up to the
period cap) to what the batch miners produce on the prefix seen so far;
the test suite asserts that equivalence.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Hashable

import numpy as np

from ..core.alphabet import Alphabet
from ..core.periodicity import PeriodicityTable, SymbolPeriodicity
from ..core.sequence import SymbolSequence

__all__ = ["OnlineMiner"]


class OnlineMiner:
    """Incremental miner over an unbounded symbol stream.

    Parameters
    ----------
    alphabet:
        Alphabet of the stream.
    max_period:
        Largest period maintained.  Memory is ``O(max_period)`` for the
        ring buffer plus one counter per *observed* ``(p, symbol,
        position)`` triple.
    """

    def __init__(self, alphabet: Alphabet, max_period: int):
        if max_period < 1:
            raise ValueError("max_period must be >= 1")
        self._alphabet = alphabet
        self._max_period = max_period
        self._ring = np.full(max_period, -1, dtype=np.int64)
        self._n = 0
        self._counts: dict[int, dict[tuple[int, int], int]] = {}

    # -- feeding the stream -------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of symbols consumed so far."""
        return self._n

    @property
    def max_period(self) -> int:
        """The period cap this miner maintains."""
        return self._max_period

    @property
    def alphabet(self) -> Alphabet:
        """Alphabet of the stream."""
        return self._alphabet

    def append(self, symbol: Hashable) -> None:
        """Consume one symbol."""
        self.append_code(self._alphabet.code(symbol))

    def append_code(self, code: int) -> None:
        """Consume one symbol given as an integer code."""
        if not 0 <= code < len(self._alphabet):
            raise ValueError(f"code {code} out of range")
        j = self._n
        window = min(self._max_period, j)
        if window:
            # Ring slot of position i is i % max_period; gather the last
            # `window` positions j-1 .. j-window and compare in one shot.
            lags = np.arange(1, window + 1)
            slots = (j - lags) % self._max_period
            matching = lags[self._ring[slots] == code]
            for p in matching:
                p = int(p)
                earlier = j - p
                key = (code, earlier % p)
                table = self._counts.setdefault(p, {})
                table[key] = table.get(key, 0) + 1
        self._ring[j % self._max_period] = code
        self._n += 1

    def extend(self, symbols: Iterable[Hashable]) -> None:
        """Consume many symbols."""
        for symbol in symbols:
            self.append(symbol)

    def extend_codes(self, codes: Iterable[int] | np.ndarray) -> None:
        """Consume many symbols given as codes."""
        for code in np.asarray(list(codes) if not isinstance(codes, np.ndarray) else codes, dtype=np.int64):
            self.append_code(int(code))

    def consume(self, series: SymbolSequence) -> None:
        """Consume a whole series (must share this miner's alphabet)."""
        if series.alphabet != self._alphabet:
            raise ValueError("series alphabet differs from the stream alphabet")
        self.extend_codes(series.codes)

    # -- querying the current state -------------------------------------------------

    def table(self) -> PeriodicityTable:
        """Snapshot of the evidence as a standard periodicity table."""
        return PeriodicityTable(
            self._n,
            self._alphabet,
            {p: dict(t) for p, t in self._counts.items()},
        )

    def confidence(self, period: int) -> float:
        """Best current support of any symbol periodicity at ``period``."""
        if period > self._max_period:
            raise ValueError(
                f"period {period} exceeds the maintained cap {self._max_period}"
            )
        return self.table().confidence(period)

    def periodicities(self, psi: float) -> list[SymbolPeriodicity]:
        """Current symbol periodicities with support ``>= psi``."""
        return self.table().periodicities(psi)

"""Streaming substrate: one-pass readers and incremental miners.

* :class:`ChunkedReader` — block-wise, single-pass access to series on
  disk or in memory (:meth:`~ChunkedReader.feed_into` pipes blocks
  straight into any miner);
* :class:`OnlineMiner` — incremental evidence over the whole stream;
* :class:`SlidingWindowMiner` — incremental evidence over the last
  ``window`` symbols (monitoring mode);
* :class:`DenseCountStore` — the flat scatter-add evidence store behind
  both miners' vectorised chunked ingestion.
"""

from .counts import DenseCountStore
from .reader import ChunkedReader, CodeSink, write_symbol_file
from .online import DEFAULT_CHUNK_SIZE, OnlineMiner
from .window import SlidingWindowMiner
from .monitor import DriftEvent, PeriodicityMonitor

__all__ = [
    "ChunkedReader",
    "CodeSink",
    "DenseCountStore",
    "DEFAULT_CHUNK_SIZE",
    "write_symbol_file",
    "OnlineMiner",
    "SlidingWindowMiner",
    "DriftEvent",
    "PeriodicityMonitor",
]

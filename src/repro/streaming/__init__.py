"""Streaming substrate: one-pass readers and incremental miners.

* :class:`ChunkedReader` — block-wise, single-pass access to series on
  disk or in memory;
* :class:`OnlineMiner` — incremental evidence over the whole stream;
* :class:`SlidingWindowMiner` — incremental evidence over the last
  ``window`` symbols (monitoring mode).
"""

from .reader import ChunkedReader, write_symbol_file
from .online import OnlineMiner
from .window import SlidingWindowMiner
from .monitor import DriftEvent, PeriodicityMonitor

__all__ = [
    "ChunkedReader",
    "write_symbol_file",
    "OnlineMiner",
    "SlidingWindowMiner",
    "DriftEvent",
    "PeriodicityMonitor",
]

"""Shared workload definitions for the reproduction experiments.

The paper's synthetic study fixes four configurations — the cross of
{uniform, normal} distributions with embedded periods {25, 32} — on
series of 1M symbols over a 10-symbol alphabet, averaged over 100 runs.
Those scales target a 2004 server; the defaults here (50k symbols, a
handful of runs) finish in seconds on a laptop while preserving every
qualitative conclusion, and all knobs are exposed for full-scale runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.sequence import SymbolSequence
from ..data.noise import apply_noise
from ..data.synthetic import generate_periodic

__all__ = ["SyntheticConfig", "PAPER_CONFIGS", "DEFAULT_LENGTH", "DEFAULT_SIGMA"]

#: Default synthetic series length (the paper uses 1_000_000).
DEFAULT_LENGTH = 50_000

#: Alphabet size used throughout the synthetic study.
DEFAULT_SIGMA = 10


@dataclass(frozen=True, slots=True)
class SyntheticConfig:
    """One synthetic workload configuration of the paper's study."""

    distribution: str
    period: int
    length: int = DEFAULT_LENGTH
    sigma: int = DEFAULT_SIGMA

    @property
    def label(self) -> str:
        """Legend label as printed in the paper, e.g. ``"U, P=25"``."""
        return f"{self.distribution[0].upper()}, P={self.period}"

    def multiples(self, count: int) -> list[int]:
        """The periods ``P, 2P, ..., count*P`` (the figures' x axis)."""
        if count < 1:
            raise ValueError("count must be >= 1")
        return self.periods_for(range(1, count + 1))

    def periods_for(self, multiples) -> list[int]:
        """The periods ``m*P`` for given multiples, capped at ``n // 2``."""
        upper = self.length // 2
        periods = []
        for m in multiples:
            if m < 1:
                raise ValueError("multiples must be >= 1")
            if m * self.period <= upper:
                periods.append(m * self.period)
        if not periods:
            raise ValueError("no requested multiple fits below n/2")
        return periods

    def make_series(
        self,
        rng: np.random.Generator,
        noise_ratio: float = 0.0,
        noise_kinds: str = "R",
    ) -> SymbolSequence:
        """Generate one (optionally noisy) series of this configuration."""
        series = generate_periodic(
            self.length, self.period, self.sigma, self.distribution, rng
        )
        if noise_ratio > 0.0:
            series = apply_noise(series, noise_ratio, noise_kinds, rng)
        return series


#: The paper's four synthetic configurations.
PAPER_CONFIGS = (
    SyntheticConfig("uniform", 25),
    SyntheticConfig("normal", 25),
    SyntheticConfig("uniform", 32),
    SyntheticConfig("normal", 32),
)

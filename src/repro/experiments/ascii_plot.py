"""ASCII line charts for the experiment figures.

The paper's Figs. 3-6 are plots; the tables in ``reporting`` carry the
numbers, and this module adds a terminal rendering of the curves so a
bench run can be eyeballed against the paper's figures directly.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Mapping[str, Mapping[object, float]],
    width: int = 64,
    height: int = 16,
    y_min: float | None = None,
    y_max: float | None = None,
    title: str | None = None,
) -> str:
    """Render labelled curves as an ASCII chart.

    ``series`` maps curve labels to ``{x: y}`` points; the x values are
    taken in their union order of appearance and spaced evenly (the
    figures' x axes are categorical: multiples, ratios, sizes).  Each
    curve gets a marker from ``o x + * ...``; collisions show the later
    curve's marker.
    """
    if not series:
        raise ValueError("at least one curve is required")
    if width < 8 or height < 4:
        raise ValueError("chart too small to render")

    xs: list[object] = []
    for curve in series.values():
        for x in curve:
            if x not in xs:
                xs.append(x)
    if not xs:
        raise ValueError("curves contain no points")

    values = [y for curve in series.values() for y in curve.values()]
    lo = min(values) if y_min is None else y_min
    hi = max(values) if y_max is None else y_max
    if hi <= lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for row in range(height):
        grid[row][0] = "|"
    for col in range(width):
        grid[height - 1][col] = "-"
    grid[height - 1][0] = "+"

    def place(x_index: int, y: float, marker: str) -> None:
        col = 1 + round((width - 2) * (x_index / max(len(xs) - 1, 1)))
        fraction = (y - lo) / (hi - lo)
        fraction = min(max(fraction, 0.0), 1.0)
        row = (height - 2) - round((height - 2) * fraction)
        grid[row][col] = marker

    legend = []
    for index, (label, curve) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} {label}")
        for x, y in curve.items():
            place(xs.index(x), float(y), marker)

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: {hi:.2f} (top) .. {lo:.2f} (bottom)")
    lines.extend("".join(row) for row in grid)
    lines.append("x: " + " ".join(str(x) for x in xs))
    lines.append("   ".join(legend))
    return "\n".join(lines)

"""Figure 4 — correctness of the periodic-trends baseline.

The same workloads as Fig. 3 run through the Indyk et al. algorithm,
reading its normalised candidacy rank as the confidence.  The paper's
finding, which this experiment reproduces: the ranking is *biased toward
larger periods* — confidence rises along ``P, 2P, 3P, ...`` because the
raw shifted self-distance shrinks with the shift — whereas the paper
argues the smallest period is the informative one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.confidence import average_confidences
from ..baselines.periodic_trends import PeriodicTrends
from .reporting import format_series
from .workloads import PAPER_CONFIGS, SyntheticConfig

__all__ = ["Fig4Config", "run_fig4", "render_fig4"]


@dataclass(frozen=True, slots=True)
class Fig4Config:
    """Parameters of the Fig. 4 run."""

    noisy: bool = False
    noise_ratio: float = 0.15
    noise_kinds: str = "R"
    # Wide multiples expose the large-period bias: the raw distance sums
    # over n - p positions, so p must span a real fraction of n.
    multiples: tuple[int, ...] = (1, 2, 3, 5, 10, 20, 40, 60)
    runs: int = 3
    length: int | None = 6_000  # trends ranks all n/2 shifts; keep runs quick
    sketch_dimensions: int = 32
    method: str = "sketch"
    seed: int = 2004

    def workloads(self) -> tuple[SyntheticConfig, ...]:
        if self.length is None:
            return PAPER_CONFIGS
        return tuple(
            SyntheticConfig(c.distribution, c.period, self.length, c.sigma)
            for c in PAPER_CONFIGS
        )


def run_fig4(config: Fig4Config = Fig4Config()) -> dict[str, dict[int, float]]:
    """Series: label -> {period multiple m: normalised-rank confidence}."""
    rng = np.random.default_rng(config.seed)
    out: dict[str, dict[int, float]] = {}
    for workload in config.workloads():
        periods = workload.periods_for(config.multiples)
        ratio = config.noise_ratio if config.noisy else 0.0
        trends = PeriodicTrends(
            method=config.method,
            dimensions=config.sketch_dimensions,
            rng=np.random.default_rng(config.seed + 1),
        )
        confidences = average_confidences(
            lambda child, w=workload: w.make_series(
                child, noise_ratio=ratio, noise_kinds=config.noise_kinds
            ),
            periods,
            runs=config.runs,
            rng=rng,
            algorithm="trends",
            trends=trends,
        )
        out[workload.label] = {
            p // workload.period: confidences[p] for p in periods
        }
    return out


def render_fig4(config: Fig4Config = Fig4Config()) -> str:
    """Run and render the figure as a text table."""
    variant = "(b) Noisy Data" if config.noisy else "(a) Inerrant Data"
    series = run_fig4(config)
    return format_series(
        series,
        x_label="multiple",
        y_label="conf",
        title=f"Fig. 4{variant}: correctness of the periodic trends algorithm",
    )

"""Figure 3 — correctness of the obscure periodic patterns miner.

Panel (a): on inerrant (perfectly periodic) synthetic data the miner
must detect every embedded periodicity — the periods ``P, 2P, 3P, ...``
— with confidence 1 for all four workload configurations.

Panel (b): with noise the confidences drop but stay high (the paper
reports values above 0.7) and, crucially, remain *unbiased in the
period* — the curve is flat across ``P, 2P, 3P, ...`` (contrast Fig. 4).
The paper does not print its Fig. 3(b) noise mix; a replacement-leaning
mix of modest ratio reproduces its confidence band, and both knobs are
exposed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.confidence import average_confidences
from .reporting import format_series
from .workloads import PAPER_CONFIGS, SyntheticConfig

__all__ = ["Fig3Config", "run_fig3", "render_fig3"]


@dataclass(frozen=True, slots=True)
class Fig3Config:
    """Parameters of the Fig. 3 run."""

    noisy: bool = False
    noise_ratio: float = 0.15
    noise_kinds: str = "R"
    multiples: tuple[int, ...] = (1, 2, 3, 4, 5)
    runs: int = 3
    length: int | None = None
    seed: int = 2004

    def workloads(self) -> tuple[SyntheticConfig, ...]:
        if self.length is None:
            return PAPER_CONFIGS
        return tuple(
            SyntheticConfig(c.distribution, c.period, self.length, c.sigma)
            for c in PAPER_CONFIGS
        )


def run_fig3(config: Fig3Config = Fig3Config()) -> dict[str, dict[int, float]]:
    """Produce the figure's series: label -> {period multiple m: confidence}.

    The x key is the multiple ``m`` (1 for P, 2 for 2P, ...), matching
    the paper's "P 2P 3P ..." axis across configurations with different
    base periods.
    """
    rng = np.random.default_rng(config.seed)
    out: dict[str, dict[int, float]] = {}
    for workload in config.workloads():
        periods = workload.periods_for(config.multiples)
        ratio = config.noise_ratio if config.noisy else 0.0
        confidences = average_confidences(
            lambda child, w=workload: w.make_series(
                child, noise_ratio=ratio, noise_kinds=config.noise_kinds
            ),
            periods,
            runs=config.runs,
            rng=rng,
        )
        out[workload.label] = {
            p // workload.period: confidences[p] for p in periods
        }
    return out


def render_fig3(config: Fig3Config = Fig3Config()) -> str:
    """Run and render the figure as a text table."""
    variant = "(b) Noisy Data" if config.noisy else "(a) Inerrant Data"
    series = run_fig3(config)
    return format_series(
        series,
        x_label="multiple",
        y_label="conf",
        title=f"Fig. 3{variant}: correctness of the obscure periodic patterns miner",
    )

"""Table 1 — candidate period values per periodicity threshold.

The paper mines its Wal-Mart (hourly transactions) and CIMEG (daily
power) databases and tabulates, per threshold from 100% down, how many
candidate periods surface and which.  Expected structure, which the
simulators reproduce:

* retail: the daily period 24 from ~70% down, the weekly period 168,
  and — with DST enabled — obscure off-by-one-hour periods, the
  analogue of the paper's 3961-hour "daylight savings" period;
* power: the weekly period 7 from ~60% down and its multiples;
* monotone nesting: every period detected at a threshold appears at all
  lower thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.periodicity import PeriodicityTable
from ..core.spectral_miner import SpectralMiner
from ..data.power import PowerConsumptionSimulator
from ..data.retail import RetailTransactionsSimulator
from .reporting import format_table

__all__ = ["Table1Config", "Table1Row", "run_table1", "render_table1"]

#: The thresholds of the paper's table, in percent.
DEFAULT_THRESHOLDS = (100, 90, 80, 70, 60, 50, 40, 30, 20, 10)


@dataclass(frozen=True, slots=True)
class Table1Config:
    """Parameters of the Table 1 run."""

    thresholds: tuple[int, ...] = DEFAULT_THRESHOLDS
    retail_days: int = 456
    power_days: int = 365
    retail_max_period: int = 512
    dst: bool = True
    sample_size: int = 4
    min_pairs: int = 2
    seed: int = 2004


@dataclass(frozen=True, slots=True)
class Table1Row:
    """One threshold row for one dataset."""

    threshold_percent: int
    period_count: int
    sample_periods: tuple[int, ...]


def _rows(
    table: PeriodicityTable,
    thresholds: tuple[int, ...],
    sample_size: int,
    min_pairs: int,
) -> list[Table1Row]:
    rows = []
    for percent in thresholds:
        periods = table.candidate_periods(percent / 100.0, min_pairs=min_pairs)
        rows.append(
            Table1Row(
                threshold_percent=percent,
                period_count=len(periods),
                sample_periods=tuple(periods[:sample_size]),
            )
        )
    return rows


def run_table1(
    config: Table1Config = Table1Config(),
) -> dict[str, list[Table1Row]]:
    """Mine both datasets once, then tabulate every threshold.

    Returns ``{"retail": rows, "power": rows}``.
    """
    if not config.thresholds:
        raise ValueError("at least one threshold is required")
    rng = np.random.default_rng(config.seed)
    retail = RetailTransactionsSimulator(days=config.retail_days, dst=config.dst).series(rng)
    power = PowerConsumptionSimulator(days=config.power_days).series(rng)
    retail_table = SpectralMiner(
        psi=min(config.thresholds) / 100.0,
        max_period=config.retail_max_period,
    ).periodicity_table(retail)
    power_table = SpectralMiner(
        psi=min(config.thresholds) / 100.0
    ).periodicity_table(power)
    return {
        "retail": _rows(
            retail_table, config.thresholds, config.sample_size, config.min_pairs
        ),
        "power": _rows(
            power_table, config.thresholds, config.sample_size, config.min_pairs
        ),
    }


def render_table1(config: Table1Config = Table1Config()) -> str:
    """Run and render both halves of the table."""
    results = run_table1(config)
    blocks = []
    for name, label in (("retail", "Wal-Mart-like data"), ("power", "CIMEG-like data")):
        rows = results[name]
        blocks.append(
            format_table(
                ["threshold %", "# periods", "some periods"],
                [
                    [r.threshold_percent, r.period_count, ", ".join(map(str, r.sample_periods)) or "-"]
                    for r in rows
                ],
                title=f"Table 1 ({label}): candidate period values",
            )
        )
    return "\n\n".join(blocks)

"""Experiment harness: one module per table and figure of the paper.

Every module exposes a frozen ``*Config`` dataclass, a ``run_*``
function returning structured results, and a ``render_*`` function
producing the paper-style text table.  The ``benchmarks/`` tree wraps
these in pytest-benchmark targets; ``EXPERIMENTS.md`` records the
paper-versus-measured comparison.
"""

from .workloads import DEFAULT_LENGTH, DEFAULT_SIGMA, PAPER_CONFIGS, SyntheticConfig
from .reporting import format_series, format_table
from .fig3 import Fig3Config, render_fig3, run_fig3
from .fig4 import Fig4Config, render_fig4, run_fig4
from .fig5 import Fig5Config, Fig5Row, render_fig5, run_fig5
from .fig6 import Fig6Config, NOISE_COMBOS, render_fig6, run_fig6
from .table1 import Table1Config, Table1Row, render_table1, run_table1
from .table2 import Table2Config, Table2Row, render_table2, run_table2
from .table3 import Table3Config, render_table3, run_table3, select_display_patterns
from .ascii_plot import ascii_plot
from .runner import EXPERIMENT_NAMES, run_all, write_report

__all__ = [
    "DEFAULT_LENGTH",
    "DEFAULT_SIGMA",
    "PAPER_CONFIGS",
    "SyntheticConfig",
    "format_series",
    "format_table",
    "Fig3Config",
    "render_fig3",
    "run_fig3",
    "Fig4Config",
    "render_fig4",
    "run_fig4",
    "Fig5Config",
    "Fig5Row",
    "render_fig5",
    "run_fig5",
    "Fig6Config",
    "NOISE_COMBOS",
    "render_fig6",
    "run_fig6",
    "Table1Config",
    "Table1Row",
    "render_table1",
    "run_table1",
    "Table2Config",
    "Table2Row",
    "render_table2",
    "run_table2",
    "Table3Config",
    "render_table3",
    "run_table3",
    "select_display_patterns",
    "ascii_plot",
    "EXPERIMENT_NAMES",
    "run_all",
    "write_report",
]

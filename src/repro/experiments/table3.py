"""Table 3 — multi-symbol periodic patterns of the retail data.

The paper's final output: the periodic patterns of the Wal-Mart data at
period 24 for a 35% periodicity threshold — long patterns fixing the
overnight very-low hours plus daytime level bands, e.g.
``aaaa****bbbbc***********aa``-style strings, with supports between the
threshold and ~60%.  This experiment mines the retail simulator the same
way and reports the top patterns by support and the deepest (highest
arity) ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.candidates import mine_patterns
from ..core.patterns import PeriodicPattern
from ..core.results import MiningResult, mine
from ..data.retail import RetailTransactionsSimulator
from .reporting import format_table

__all__ = ["Table3Config", "run_table3", "render_table3"]


@dataclass(frozen=True, slots=True)
class Table3Config:
    """Parameters of the Table 3 run."""

    psi: float = 0.35
    period: int = 24
    retail_days: int = 456
    max_arity: int | None = 10
    top: int = 12
    seed: int = 2004


def run_table3(config: Table3Config = Table3Config()) -> MiningResult:
    """Mine the retail data at the table's threshold and period."""
    rng = np.random.default_rng(config.seed)
    series = RetailTransactionsSimulator(days=config.retail_days).series(rng)
    return mine(
        series,
        psi=config.psi,
        max_period=config.period,
        periods=[config.period],
        max_arity=config.max_arity,
    )


def select_display_patterns(
    result: MiningResult, period: int, top: int
) -> list[PeriodicPattern]:
    """The paper-style selection: deepest patterns first, then support."""
    patterns = [p for p in result.patterns if p.period == period and p.arity >= 2]
    patterns.sort(key=lambda p: (-p.arity, -p.support))
    # Keep only maximal-information rows: drop patterns subsumed by a
    # kept pattern with at least the same support.
    kept: list[PeriodicPattern] = []
    for pattern in patterns:
        items = set(pattern.items)
        if any(
            items < set(k.items) and pattern.support <= k.support + 1e-12
            for k in kept
        ):
            continue
        kept.append(pattern)
        if len(kept) == top:
            break
    return kept


def render_table3(config: Table3Config = Table3Config()) -> str:
    """Run and render the table."""
    result = run_table3(config)
    rows = [
        [pattern.to_string(result.alphabet), f"{pattern.support * 100:.1f}"]
        for pattern in select_display_patterns(result, config.period, config.top)
    ]
    return format_table(
        ["periodic pattern", "support (%)"],
        rows,
        title=(
            f"Table 3 (Wal-Mart-like data, period={config.period}, "
            f"threshold={config.psi * 100:.0f}%): periodic patterns"
        ),
    )

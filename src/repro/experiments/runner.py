"""Run every reproduction experiment and collect a report.

`run_all` regenerates all seven paper artifacts (optionally at the quick
scale) and returns the rendered texts; `write_report` persists them as
one markdown file — the machine-written companion to ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from collections.abc import Callable
from pathlib import Path

from .fig3 import Fig3Config, render_fig3
from .fig4 import Fig4Config, render_fig4
from .fig5 import Fig5Config, render_fig5
from .fig6 import Fig6Config, render_fig6
from .table1 import Table1Config, render_table1
from .table2 import Table2Config, render_table2
from .table3 import Table3Config, render_table3

__all__ = ["EXPERIMENT_NAMES", "run_all", "write_report"]

EXPERIMENT_NAMES = (
    "fig3a", "fig3b", "fig4a", "fig4b", "fig5", "fig6a", "fig6b",
    "table1", "table2", "table3",
)


def _renderers(quick: bool) -> dict[str, Callable[[], str]]:
    if quick:
        fig3 = dict(runs=1, length=10_000, multiples=(1, 2, 3))
        fig4 = dict(runs=1, length=4_000, method="exact",
                    multiples=(1, 5, 20, 60))
        fig5 = Fig5Config(sizes=(4_096, 8_192, 16_384), repeats=2)
        fig6 = dict(runs=1, length=10_000, ratios=(0.0, 0.2, 0.4))
        table1 = Table1Config(retail_days=120, retail_max_period=200)
        table2 = Table2Config(retail_days=120)
        table3 = Table3Config(retail_days=120)
    else:
        fig3, fig4, fig6 = {}, {}, {}
        fig5 = Fig5Config()
        table1, table2, table3 = Table1Config(), Table2Config(), Table3Config()
    return {
        "fig3a": lambda: render_fig3(Fig3Config(**fig3)),
        "fig3b": lambda: render_fig3(Fig3Config(noisy=True, **fig3)),
        "fig4a": lambda: render_fig4(Fig4Config(**fig4)),
        "fig4b": lambda: render_fig4(Fig4Config(noisy=True, **fig4)),
        "fig5": lambda: render_fig5(fig5),
        "fig6a": lambda: render_fig6(Fig6Config(**fig6)),
        "fig6b": lambda: render_fig6(
            Fig6Config(distribution="normal", period=32, **fig6)
        ),
        "table1": lambda: render_table1(table1),
        "table2": lambda: render_table2(table2),
        "table3": lambda: render_table3(table3),
    }


def run_all(
    quick: bool = True, only: tuple[str, ...] | None = None
) -> dict[str, str]:
    """Run (a subset of) the experiments; returns name -> rendered text."""
    renderers = _renderers(quick)
    names = EXPERIMENT_NAMES if only is None else only
    unknown = set(names) - set(renderers)
    if unknown:
        raise ValueError(f"unknown experiments: {sorted(unknown)}")
    return {name: renderers[name]() for name in names}


def write_report(
    results: dict[str, str], path: str | Path = "experiment_report.md"
) -> Path:
    """Persist rendered experiments as one markdown report."""
    if not results:
        raise ValueError("no results to write")
    path = Path(path)
    blocks = ["# Reproduction experiment report", ""]
    for name, text in results.items():
        blocks.append(f"## {name}")
        blocks.append("```")
        blocks.append(text)
        blocks.append("```")
        blocks.append("")
    path.write_text("\n".join(blocks), encoding="utf-8")
    return path

"""Figure 5 — time behaviour versus series length (log-log).

The paper times the periodicity-detection phase of its miner against the
periodic-trends algorithm on Wal-Mart data portions doubling up to
128 MB, finding both near-linear on the log-log plot with the
convolution miner consistently faster — the empirical counterpart of
``O(n log n)`` versus ``O(n log^2 n)``.

Here the same doubling sweep runs over the retail simulator.  Both
sides are timed on their *periodicity-detection phase*, the unit the
paper compares ("the periodicity detection phase of our proposed
algorithm"): the miner runs its spectral stage and nominates plausible
``(period, symbol)`` pairs
(:meth:`SpectralMiner.candidate_period_symbols`); the baseline ranks
the same shift range by sketched self-distances
(:meth:`PeriodicTrends.analyse`).  Neither side pays for per-position
pattern extraction, which the trends algorithm cannot produce at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.timing import time_callable
from ..baselines.periodic_trends import PeriodicTrends
from ..core.sequence import SymbolSequence
from ..core.spectral_miner import SpectralMiner
from ..data.retail import RetailTransactionsSimulator
from .reporting import format_table

__all__ = ["Fig5Config", "Fig5Row", "run_fig5", "render_fig5"]


@dataclass(frozen=True, slots=True)
class Fig5Config:
    """Parameters of the Fig. 5 sweep."""

    sizes: tuple[int, ...] = (4_096, 8_192, 16_384, 32_768, 65_536)
    max_period: int = 512
    psi: float = 0.7
    sketch_dimensions: int = 16
    repeats: int = 3
    seed: int = 2004


@dataclass(frozen=True, slots=True)
class Fig5Row:
    """One sweep point: best-of wall-clock seconds per algorithm."""

    size: int
    miner_seconds: float
    trends_seconds: float


def _retail_series(length: int, rng: np.random.Generator) -> SymbolSequence:
    days = -(-length // 24)
    series = RetailTransactionsSimulator(days=days).series(rng)
    return series[:length]


def run_fig5(config: Fig5Config = Fig5Config()) -> list[Fig5Row]:
    """Time both algorithms at every size; returns one row per size."""
    if not config.sizes:
        raise ValueError("at least one size is required")
    rng = np.random.default_rng(config.seed)
    rows: list[Fig5Row] = []
    for size in config.sizes:
        series = _retail_series(size, rng)
        cap = min(config.max_period, size // 2)
        miner = SpectralMiner(psi=config.psi, max_period=cap)
        trends = PeriodicTrends(
            method="sketch",
            dimensions=config.sketch_dimensions,
            rng=np.random.default_rng(config.seed + size),
        )
        miner_timing = time_callable(
            lambda: miner.candidate_period_symbols(series, config.psi),
            repeats=config.repeats,
        )
        trends_timing = time_callable(
            lambda: trends.analyse(series, max_shift=cap), repeats=config.repeats
        )
        rows.append(
            Fig5Row(
                size=size,
                miner_seconds=miner_timing.best,
                trends_seconds=trends_timing.best,
            )
        )
    return rows


def render_fig5(config: Fig5Config = Fig5Config()) -> str:
    """Run and render the sweep as a text table."""
    rows = run_fig5(config)
    return format_table(
        ["n (symbols)", "miner (s)", "periodic trends (s)", "speedup"],
        [
            [
                row.size,
                f"{row.miner_seconds:.4f}",
                f"{row.trends_seconds:.4f}",
                f"{row.trends_seconds / max(row.miner_seconds, 1e-12):.1f}x",
            ]
            for row in rows
        ],
        title="Fig. 5: time behaviour (best of repeats, doubling sizes)",
    )

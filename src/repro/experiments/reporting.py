"""Plain-text rendering of experiment outputs (figure series, tables)."""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Fixed-width table, ready to print next to the paper's tables."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Mapping[object, float]],
    x_label: str,
    y_label: str,
    title: str | None = None,
) -> str:
    """Render figure series (one column per labelled curve)."""
    labels = list(series)
    xs: list[object] = []
    for curve in series.values():
        for x in curve:
            if x not in xs:
                xs.append(x)
    headers = [x_label] + [f"{label} {y_label}" for label in labels]
    rows = []
    for x in xs:
        row: list[object] = [x]
        for label in labels:
            value = series[label].get(x)
            row.append("-" if value is None else f"{value:.3f}")
        rows.append(row)
    return format_table(headers, rows, title=title)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)

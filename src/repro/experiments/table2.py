"""Table 2 — periodic single-symbol patterns at the expected periods.

For the retail data the paper explores period 24 and for the power data
period 7, listing the single-symbol patterns ``(symbol, position)``
detected per threshold — e.g. "(b,7) ... less than 200 transactions per
hour occur in the 7th hour of the day ... for 80% of the days".  The
reproduced structure: the overnight very-low retail patterns at high
thresholds, opening/closing-band patterns in the middle, the power data's
habitual-day pattern around 50-60%, and fewer patterns as the threshold
rises, with strict nesting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from ..core.periodicity import PeriodicityTable
from ..core.spectral_miner import SpectralMiner
from ..data.power import PowerConsumptionSimulator
from ..data.retail import RetailTransactionsSimulator
from .reporting import format_table

__all__ = ["Table2Config", "Table2Row", "run_table2", "render_table2"]

DEFAULT_THRESHOLDS = (95, 90, 80, 70, 60, 50)


@dataclass(frozen=True, slots=True)
class Table2Config:
    """Parameters of the Table 2 run."""

    thresholds: tuple[int, ...] = DEFAULT_THRESHOLDS
    retail_period: int = 24
    power_period: int = 7
    retail_days: int = 456
    power_days: int = 365
    sample_size: int = 6
    seed: int = 2004


@dataclass(frozen=True, slots=True)
class Table2Row:
    """One threshold row: the single-symbol patterns of one period."""

    threshold_percent: int
    pattern_count: int
    sample_patterns: tuple[tuple[Hashable, int], ...]


def _rows(
    table: PeriodicityTable,
    period: int,
    thresholds: tuple[int, ...],
    sample_size: int,
) -> list[Table2Row]:
    rows = []
    for percent in thresholds:
        hits = table.periodicities(percent / 100.0, period=period)
        patterns = tuple(
            (h.symbol(table.alphabet), h.position)
            for h in sorted(hits, key=lambda h: -h.support)
        )
        rows.append(
            Table2Row(
                threshold_percent=percent,
                pattern_count=len(patterns),
                sample_patterns=patterns[:sample_size],
            )
        )
    return rows


def run_table2(config: Table2Config = Table2Config()) -> dict[str, list[Table2Row]]:
    """Mine both datasets and tabulate the expected-period patterns."""
    if not config.thresholds:
        raise ValueError("at least one threshold is required")
    rng = np.random.default_rng(config.seed)
    retail = RetailTransactionsSimulator(days=config.retail_days).series(rng)
    power = PowerConsumptionSimulator(days=config.power_days).series(rng)
    psi_floor = min(config.thresholds) / 100.0
    retail_table = SpectralMiner(
        psi=psi_floor, max_period=config.retail_period
    ).periodicity_table(retail)
    power_table = SpectralMiner(
        psi=psi_floor, max_period=config.power_period
    ).periodicity_table(power)
    return {
        "retail": _rows(
            retail_table, config.retail_period, config.thresholds, config.sample_size
        ),
        "power": _rows(
            power_table, config.power_period, config.thresholds, config.sample_size
        ),
    }


def render_table2(config: Table2Config = Table2Config()) -> str:
    """Run and render both halves of the table."""
    results = run_table2(config)
    blocks = []
    for name, label, period in (
        ("retail", "Wal-Mart-like data", config.retail_period),
        ("power", "CIMEG-like data", config.power_period),
    ):
        rows = results[name]
        blocks.append(
            format_table(
                ["threshold %", "# patterns", "patterns (symbol, position)"],
                [
                    [
                        r.threshold_percent,
                        r.pattern_count,
                        " ".join(f"({s},{l})" for s, l in r.sample_patterns) or "-",
                    ]
                    for r in rows
                ],
                title=f"Table 2 ({label}, period={period}): single-symbol patterns",
            )
        )
    return "\n\n".join(blocks)

"""Figure 6 — resilience of the miner to noise.

Confidence at the embedded period as the noise ratio grows from 0 to
50%, for every noise combination the paper plots (replacement,
insertion, deletion, and their equal-split mixes), on the two panels
(a) uniform data with P=25 and (b) normal data with P=32.

Expected shape, per the paper: replacement noise degrades gracefully
(confidence ~0.5 at 50% noise — "at 40% periodicity threshold, the
algorithm can tolerate 50% replacement noise"), while any mix involving
insertions or deletions collapses quickly because those shift every
subsequent position off phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.confidence import average_confidences
from .reporting import format_series
from .workloads import SyntheticConfig

__all__ = ["Fig6Config", "run_fig6", "render_fig6"]

#: The noise combinations plotted in the paper's legend.
NOISE_COMBOS = ("R", "I", "D", "R-I", "R-D", "I-D", "R-I-D")


@dataclass(frozen=True, slots=True)
class Fig6Config:
    """Parameters of the Fig. 6 run."""

    distribution: str = "uniform"
    period: int = 25
    ratios: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
    combos: tuple[str, ...] = NOISE_COMBOS
    runs: int = 3
    length: int = 50_000
    sigma: int = 10
    seed: int = 2004

    @property
    def panel(self) -> str:
        return f"{self.distribution.capitalize()}, Period={self.period}"


def run_fig6(config: Fig6Config = Fig6Config()) -> dict[str, dict[float, float]]:
    """Series: noise combo -> {noise ratio: mean confidence at the period}."""
    rng = np.random.default_rng(config.seed)
    workload = SyntheticConfig(
        config.distribution, config.period, config.length, config.sigma
    )
    out: dict[str, dict[float, float]] = {}
    for combo in config.combos:
        curve: dict[float, float] = {}
        for ratio in config.ratios:
            confidences = average_confidences(
                lambda child, r=ratio, c=combo: workload.make_series(
                    child, noise_ratio=r, noise_kinds=c
                ),
                [config.period],
                runs=config.runs,
                rng=rng,
            )
            curve[ratio] = confidences[config.period]
        out[combo] = curve
    return out


def render_fig6(config: Fig6Config = Fig6Config()) -> str:
    """Run and render the panel as a text table."""
    series = run_fig6(config)
    return format_series(
        series,
        x_label="noise ratio",
        y_label="conf",
        title=f"Fig. 6 ({config.panel}): resilience to noise",
    )

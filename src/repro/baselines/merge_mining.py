"""Merge mining of partial periodic patterns (paper reference [4]).

The paper's reference [4] — Aref, Elfeky, Elmagarmid, *Incremental,
Online, and Merge Mining of Partial Periodic Patterns* (TKDE) — extends
the same authors' line with three modes; this module implements the
**merge** mode for the Han-style (segment-count) semantics: mine two
series chunks independently, then combine the mined structures into the
result for the concatenation *without touching the raw data again*.

Works on the max-subpattern hit-set trees of
:mod:`repro.baselines.max_subpattern`: hit counts are additive over
segment-aligned chunks (each full period segment lives wholly in one
chunk), so merging is a counted union of the trees over the union
``C_max``, followed by the usual tree-counted Apriori enumeration.

Alignment requirement: every chunk except the last must have a length
divisible by the period — otherwise a segment straddles the boundary
and its count belongs to neither chunk.  ``merge_mine`` enforces this
and the test suite pins merge-vs-monolithic equality.

(The EDBT paper's own F2 semantics has its online counterpart in
:class:`repro.streaming.online.OnlineMiner`; merge mining is the batch
sibling for distributed or archived chunks.)
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.patterns import PeriodicPattern
from ..core.sequence import SymbolSequence
from .max_subpattern import Items, MaxSubpatternMiner, MaxSubpatternTree

__all__ = ["merge_trees", "MergeMiner"]


def merge_trees(
    left: MaxSubpatternTree, right: MaxSubpatternTree
) -> MaxSubpatternTree:
    """Counted union of two hit-set trees.

    The merged root is the union of both ``C_max`` item sets (an item
    frequent in either chunk may be frequent overall; the enumeration
    threshold re-checks every count against the combined segment
    total).  Hit patterns and their counts are preserved verbatim —
    counts are additive because each segment was counted exactly once
    in exactly one chunk.
    """
    if left.root_items != right.root_items:
        raise ValueError(
            "trees must share one candidate max-pattern; build per-chunk "
            "trees against the merged global C_max (see MergeMiner)"
        )
    merged = MaxSubpatternTree(left.root_items)
    for source in (left, right):
        for items, count in source.hit_patterns():
            for _ in range(count):
                merged.insert(items)
    return merged


class MergeMiner:
    """Mine chunks independently, merge, enumerate once.

    Parameters
    ----------
    min_confidence:
        Minimum fraction of (combined) segments a pattern must match.
    max_arity:
        Cap on fixed positions per pattern.
    """

    def __init__(self, min_confidence: float = 0.5, max_arity: int | None = None):
        self._miner = MaxSubpatternMiner(
            min_confidence=min_confidence, max_arity=max_arity
        )
        self._min_confidence = min_confidence
        self._max_arity = max_arity

    def merge_mine(
        self, chunks: Sequence[SymbolSequence], period: int
    ) -> list[PeriodicPattern]:
        """Patterns of the concatenation, from per-chunk mining + merge.

        Every chunk but the last must be segment-aligned (length
        divisible by ``period``); all chunks must share one alphabet.
        """
        if not chunks:
            raise ValueError("at least one chunk is required")
        if period < 1:
            raise ValueError("period must be >= 1")
        alphabet = chunks[0].alphabet
        for chunk in chunks[1:]:
            if chunk.alphabet != alphabet:
                raise ValueError("chunks must share one alphabet")
        for chunk in chunks[:-1]:
            if chunk.length % period:
                raise ValueError(
                    "all chunks but the last must be segment-aligned "
                    f"(length divisible by {period})"
                )

        total_segments = sum(chunk.length // period for chunk in chunks)
        if total_segments == 0:
            return []

        # Phase 1 (exchangeable): per-chunk item counts are additive, so
        # the *global* F1 — and therefore the global C_max — is known
        # before any tree is built.  An item locally infrequent in every
        # chunk can still be globally frequent; this phase catches it.
        global_counts: dict[tuple[int, int], int] = {}
        for chunk in chunks:
            for item, count in self._miner.item_counts(chunk, period).items():
                global_counts[item] = global_counts.get(item, 0) + count
        threshold = self._min_confidence * total_segments
        c_max: Items = tuple(
            sorted(item for item, count in global_counts.items() if count >= threshold)
        )

        # Phase 2: every chunk's tree is built against the same global
        # C_max, so hit counts merge by plain addition.
        trees = [
            self._miner.build_tree(chunk, period, root=c_max) for chunk in chunks
        ]
        merged = trees[0]
        for tree in trees[1:]:
            merged = merge_trees(merged, tree)
        return self._enumerate(merged, period, total_segments)

    def _enumerate(
        self, tree: MaxSubpatternTree, period: int, segments: int
    ) -> list[PeriodicPattern]:
        threshold = self._min_confidence * segments
        f1 = {
            item: tree.frequency((item,))
            for item in tree.root_items
        }
        f1 = {item: count for item, count in f1.items() if count >= threshold}
        out: list[PeriodicPattern] = [
            PeriodicPattern.single(period, l, s, count / segments)
            for (l, s), count in sorted(f1.items())
        ]
        frontier: list[Items] = [(item,) for item in sorted(f1)]
        arity = 1
        while frontier and (self._max_arity is None or arity < self._max_arity):
            next_frontier: list[Items] = []
            for itemset in frontier:
                last_position = itemset[-1][0]
                for item in sorted(f1):
                    if item[0] <= last_position:
                        continue
                    candidate: Items = itemset + (item,)
                    frequency = tree.frequency(candidate)
                    if frequency >= threshold:
                        next_frontier.append(candidate)
                        out.append(
                            PeriodicPattern.from_items(
                                period, dict(candidate), frequency / segments
                            )
                        )
            frontier = next_frontier
            arity += 1
        out.sort(key=lambda p: (-p.support, p.arity))
        return out

"""Brute-force shift-and-compare miner — the testing oracle.

Sect. 3 of the paper describes the naive approach its convolution
replaces: "shift the time series p positions ... and compare this
shifted version to the original version" for every ``p`` — ``O(n^2)``
overall.  This module implements exactly that, with straightforward
loops, to serve as the independent ground truth the fast miners are
property-tested against.
"""

from __future__ import annotations

from ..core.periodicity import PeriodicityTable
from ..core.sequence import SymbolSequence

__all__ = ["brute_force_table", "brute_force_matches"]


def brute_force_matches(series: SymbolSequence, period: int) -> int:
    """Number of symbol matches between ``T`` and ``T^(p)``."""
    if period < 1:
        raise ValueError("period must be >= 1")
    codes = series.codes
    return sum(
        1 for j in range(series.length - period) if codes[j] == codes[j + period]
    )


def brute_force_table(
    series: SymbolSequence, max_period: int | None = None
) -> PeriodicityTable:
    """The full ``F2`` evidence table by exhaustive comparison.

    Quadratic and deliberately naive; use only on small series.
    """
    n = series.length
    if max_period is None:
        max_period = n // 2
    codes = series.codes
    counts: dict[int, dict[tuple[int, int], int]] = {}
    for p in range(1, min(max_period, n - 1) + 1):
        table: dict[tuple[int, int], int] = {}
        for j in range(n - p):
            if codes[j] == codes[j + p]:
                key = (int(codes[j]), j % p)
                table[key] = table.get(key, 0) + 1
        if table:
            counts[p] = table
    return PeriodicityTable(n, series.alphabet, counts)

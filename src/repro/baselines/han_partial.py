"""Partial periodic pattern mining for a *known* period ([11], Han et al.).

The classical second stage of every multi-pass pipeline the paper
discusses: once a candidate period ``p`` is known, mine all partial
periodic patterns of length ``p`` Apriori-style.  Following Han et al.,
a pattern's frequency counts the period segments it matches (each
segment independently), over ``floor(n / p)`` full segments — note this
differs from the EDBT paper's consecutive-repetition (``F2``) support,
which is what lets the two notions be compared in the ablation bench.
"""

from __future__ import annotations

import numpy as np

from ..core.patterns import PeriodicPattern
from ..core.sequence import SymbolSequence

__all__ = ["HanPartialMiner"]


class HanPartialMiner:
    """Apriori miner of partial periodic patterns at a given period.

    Parameters
    ----------
    min_confidence:
        Minimum fraction of segments a pattern must match.
    max_arity:
        Cap on fixed positions per pattern (``None`` = unbounded).
    """

    def __init__(self, min_confidence: float = 0.5, max_arity: int | None = None):
        if not 0 < min_confidence <= 1:
            raise ValueError("min_confidence must be in (0, 1]")
        self._min_confidence = min_confidence
        self._max_arity = max_arity

    def segments(self, series: SymbolSequence, period: int) -> np.ndarray:
        """The series cut into its ``floor(n/p)`` full period segments."""
        if period < 1:
            raise ValueError("period must be >= 1")
        full = series.length // period
        return series.codes[: full * period].reshape(full, period)

    def mine(self, series: SymbolSequence, period: int) -> list[PeriodicPattern]:
        """All partial periodic patterns at ``period``, support-sorted.

        Level-wise search: frequent single positions first, then joins
        growing rightwards, pruned by ``min_confidence`` — the Apriori
        property holds because a pattern matches no more segments than
        any of its sub-patterns.
        """
        matrix = self.segments(series, period)
        rows = matrix.shape[0]
        if rows == 0:
            return []
        threshold = self._min_confidence * rows

        # Level 1: frequent (position, symbol) items.
        item_masks: dict[tuple[int, int], np.ndarray] = {}
        out: list[PeriodicPattern] = []
        for l in range(period):
            column = matrix[:, l]
            for k in np.unique(column):
                mask = column == k
                count = int(np.count_nonzero(mask))
                if count >= threshold:
                    item = (int(l), int(k))
                    item_masks[item] = mask
                    out.append(
                        PeriodicPattern.single(period, int(l), int(k), count / rows)
                    )

        frontier: dict[tuple[tuple[int, int], ...], np.ndarray] = {
            (item,): mask for item, mask in item_masks.items()
        }
        arity = 1
        while frontier and (self._max_arity is None or arity < self._max_arity):
            next_frontier: dict[tuple[tuple[int, int], ...], np.ndarray] = {}
            for itemset, mask in frontier.items():
                last_position = itemset[-1][0]
                for item, item_mask in item_masks.items():
                    if item[0] <= last_position:
                        continue
                    joined = mask & item_mask
                    count = int(np.count_nonzero(joined))
                    if count >= threshold:
                        grown = itemset + (item,)
                        next_frontier[grown] = joined
                        out.append(
                            PeriodicPattern.from_items(
                                period, dict(grown), count / rows
                            )
                        )
            frontier = next_frontier
            arity += 1
        out.sort(key=lambda p: (-p.support, p.arity))
        return out

"""Asynchronous periodic pattern mining (Yang, Wang, Yu [20], KDD 2000).

The last distance-based competitor the paper cites.  Where Definition 1
demands matches at globally aligned positions, an *asynchronous* pattern
may drift: the pattern holds over a longest *valid subsequence* composed
of runs of at least ``min_repetitions`` consecutive matching segments,
where successive runs may be separated by up to ``max_disturbance``
symbols of noise (after which the phase may have shifted).

Implementation (the published two-phase structure):

1. **Candidate distance-based phase** — for each symbol, inter-arrival
   counts nominate (period, offset) candidates, exactly the pruning idea
   of [20] (and with the same blind spot as Ma-Hellerstein's adjacent
   gaps, which the paper criticises);
2. **Longest-subsequence phase** — for a candidate pattern, a linear
   scan over its match positions stitches maximal runs into the longest
   valid subsequence allowed by ``min_repetitions``/``max_disturbance``.

Beyond baseline duty, asynchronous mining is a second answer (next to
:mod:`repro.baselines.warping`) to the paper's insertion/deletion
weakness: a shift caused by an insertion just starts a new run, so the
pattern survives with a shortened valid subsequence instead of
vanishing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.patterns import PeriodicPattern
from ..core.sequence import SymbolSequence

__all__ = ["ValidSubsequence", "AsynchronousMiner"]


@dataclass(frozen=True, slots=True)
class ValidSubsequence:
    """The longest valid subsequence of an asynchronous pattern.

    Attributes
    ----------
    pattern:
        The (single- or multi-symbol) pattern of some period.
    start / end:
        Series positions delimiting the subsequence (end exclusive).
    repetitions:
        Total matching segments inside the subsequence.
    runs:
        Number of maximal consecutive-match runs stitched together.
    """

    pattern: PeriodicPattern
    start: int
    end: int
    repetitions: int
    runs: int

    @property
    def span(self) -> int:
        """Length of the subsequence in symbols."""
        return self.end - self.start


class AsynchronousMiner:
    """Mine asynchronous periodic patterns of a symbol series.

    Parameters
    ----------
    min_repetitions:
        Minimum consecutive matching segments per run (``min_rep``).
    max_disturbance:
        Maximum symbols of disturbance between stitched runs
        (``max_dis``); the phase may shift arbitrarily inside it.
    """

    def __init__(self, min_repetitions: int = 2, max_disturbance: int = 10):
        if min_repetitions < 1:
            raise ValueError("min_repetitions must be >= 1")
        if max_disturbance < 0:
            raise ValueError("max_disturbance must be >= 0")
        self._min_repetitions = min_repetitions
        self._max_disturbance = max_disturbance

    # -- phase 1: candidate periods ---------------------------------------------

    def candidate_periods(
        self, series: SymbolSequence, symbol_code: int, max_period: int | None = None
    ) -> list[int]:
        """Distance-based candidate periods for one symbol.

        Gap values between adjacent occurrences that recur at least
        ``min_repetitions`` times, the pruning count of [20].
        """
        positions = np.nonzero(series.codes == symbol_code)[0]
        if positions.size < 2:
            return []
        gaps = np.diff(positions)
        values, counts = np.unique(gaps, return_counts=True)
        limit = series.length // 2 if max_period is None else max_period
        return [
            int(v)
            for v, c in zip(values, counts)
            if c >= self._min_repetitions and 1 <= v <= limit
        ]

    # -- phase 2: longest valid subsequence ----------------------------------------

    def _match_starts(
        self, series: SymbolSequence, pattern: PeriodicPattern
    ) -> np.ndarray:
        """Every position where a pattern instance starts (any phase)."""
        codes = series.codes
        n = series.length
        period = pattern.period
        if n < period:
            return np.empty(0, dtype=np.int64)
        ok = np.ones(n - period + 1, dtype=bool)
        for l, k in pattern.items:
            ok &= codes[l : l + n - period + 1] == k
        return np.nonzero(ok)[0]

    def longest_valid_subsequence(
        self, series: SymbolSequence, pattern: PeriodicPattern
    ) -> ValidSubsequence | None:
        """The longest valid subsequence of ``pattern`` in ``series``.

        A *run* is a maximal chain of matches exactly ``period`` apart;
        runs shorter than ``min_repetitions`` are discarded; consecutive
        runs are stitched when the gap between them (end of one instance
        to start of the next) is at most ``max_disturbance``.  Returns
        the stitching maximising total repetitions, or ``None``.
        """
        period = pattern.period
        starts = self._match_starts(series, pattern)
        if starts.size == 0:
            return None

        # Maximal arithmetic runs with common difference `period`.  A
        # start opens a run iff no match sits exactly one period before
        # it; other same-symbol occurrences in between do not break the
        # chain (the pattern may match at several phases simultaneously).
        start_set = set(int(s) for s in starts)
        runs: list[tuple[int, int]] = []  # (first_start, repetitions)
        for s in starts:
            s = int(s)
            if s - period in start_set:
                continue
            repetitions = 1
            while s + repetitions * period in start_set:
                repetitions += 1
            runs.append((s, repetitions))
        runs.sort()
        runs = [r for r in runs if r[1] >= self._min_repetitions]
        if not runs:
            return None

        # Stitch greedily-optimal chains: classic linear DP over runs.
        best_total = [0] * len(runs)
        best_prev = [-1] * len(runs)
        for i, (start_i, reps_i) in enumerate(runs):
            best_total[i] = reps_i
            for j in range(i - 1, -1, -1):
                start_j, reps_j = runs[j]
                gap = start_i - (start_j + reps_j * period)
                if gap < 0 or gap > self._max_disturbance:
                    # Runs are start-sorted but their *ends* are not
                    # monotone (runs of different phases overlap), so no
                    # early break — scan them all.
                    continue
                if best_total[j] + reps_i > best_total[i]:
                    best_total[i] = best_total[j] + reps_i
                    best_prev[i] = j
        best_index = max(range(len(runs)), key=best_total.__getitem__)
        chain = []
        cursor = best_index
        while cursor != -1:
            chain.append(cursor)
            cursor = best_prev[cursor]
        chain.reverse()
        first_run = runs[chain[0]]
        last_run = runs[chain[-1]]
        return ValidSubsequence(
            pattern=pattern,
            start=first_run[0],
            end=last_run[0] + last_run[1] * period,
            repetitions=best_total[best_index],
            runs=len(chain),
        )

    # -- front door -------------------------------------------------------------------

    def mine_symbol(
        self,
        series: SymbolSequence,
        symbol_code: int,
        min_repetitions_total: int | None = None,
        max_period: int | None = None,
    ) -> list[ValidSubsequence]:
        """Asynchronous single-symbol patterns for one symbol.

        For every candidate period and phase, the longest valid
        subsequence with at least ``min_repetitions_total`` repetitions
        (default: ``2 * min_repetitions``).  Sorted by repetitions
        descending.
        """
        floor = (
            2 * self._min_repetitions
            if min_repetitions_total is None
            else min_repetitions_total
        )
        out: list[ValidSubsequence] = []
        for period in self.candidate_periods(series, symbol_code, max_period):
            # Asynchronous patterns are phase-free (the valid subsequence
            # may start anywhere), so one canonical position suffices.
            pattern = PeriodicPattern.single(period, 0, symbol_code)
            found = self.longest_valid_subsequence(series, pattern)
            if found is not None and found.repetitions >= floor:
                out.append(found)
        out.sort(key=lambda v: (-v.repetitions, v.pattern.period))
        return out

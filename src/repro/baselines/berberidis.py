"""The Berberidis et al. multi-pass baseline ([6], ECAI 2002).

Candidate-period detection "regarding the symbols of the time series,
one symbol at a time": for each symbol, the circular autocorrelation of
its 0/1 indicator vector is scanned for lags whose value stands out
above the level expected of a random series.  The output is a set of
candidate periods per symbol — to obtain actual periodic *patterns*, a
pattern-mining pass per candidate period must follow (e.g.
:class:`repro.baselines.han_partial.HanPartialMiner`), which is exactly
the multi-pass structure the paper contrasts its one-pass miner with.
:func:`multi_pass_pipeline` wires the two together.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..convolution.fft import correlate_fft
from ..core.patterns import PeriodicPattern
from ..core.sequence import SymbolSequence
from .han_partial import HanPartialMiner

__all__ = ["SymbolPeriodHint", "Berberidis", "multi_pass_pipeline"]


@dataclass(frozen=True, slots=True)
class SymbolPeriodHint:
    """A candidate period for one symbol with its autocorrelation score."""

    symbol_code: int
    period: int
    score: float


class Berberidis:
    """Per-symbol autocorrelation period detection.

    Parameters
    ----------
    strength:
        Detection threshold as a multiple of the random-series
        expectation: lag ``p`` is a candidate for symbol ``k`` when its
        autocorrelation exceeds ``strength * occurrences(k)^2 / n``
        (the expected value for randomly placed occurrences).
    max_period:
        Largest lag scanned; defaults to ``n // 2``.
    """

    def __init__(self, strength: float = 2.0, max_period: int | None = None):
        if strength <= 1.0:
            raise ValueError("strength must exceed 1 (the random baseline)")
        self._strength = strength
        self._max_period = max_period

    def hints_for_symbol(
        self, series: SymbolSequence, symbol_code: int
    ) -> list[SymbolPeriodHint]:
        """Candidate periods for one symbol, strongest first."""
        n = series.length
        max_period = n // 2 if self._max_period is None else min(self._max_period, n - 1)
        indicator = series.indicator(symbol_code)
        occurrences = float(indicator.sum())
        if occurrences < 2 or max_period < 1:
            return []
        corr = correlate_fft(indicator, use_numpy=True)
        out: list[SymbolPeriodHint] = []
        for p in range(1, max_period + 1):
            expected = occurrences * occurrences / n
            score = float(corr[p])
            if score > self._strength * expected:
                out.append(SymbolPeriodHint(int(symbol_code), p, score))
        out.sort(key=lambda h: -h.score)
        return out

    def candidate_periods(self, series: SymbolSequence) -> list[int]:
        """Distinct candidate periods over all symbols, ascending.

        One full pass over the series per symbol — the multi-pass
        behaviour the EDBT paper criticises.
        """
        periods: set[int] = set()
        for k in range(series.sigma):
            periods.update(h.period for h in self.hints_for_symbol(series, k))
        return sorted(periods)


def multi_pass_pipeline(
    series: SymbolSequence,
    psi: float,
    detector: Berberidis | None = None,
    max_patterns_per_period: int | None = None,
) -> dict[int, list[PeriodicPattern]]:
    """Detector + per-period pattern miner: the full multi-pass pipeline.

    Pass 1..sigma: :class:`Berberidis` finds candidate periods.  Then
    one additional :class:`HanPartialMiner` pass *per candidate period*
    mines the patterns.  Returns ``{period: patterns}``.
    """
    detector = Berberidis() if detector is None else detector
    miner = HanPartialMiner(min_confidence=psi)
    out: dict[int, list[PeriodicPattern]] = {}
    for period in detector.candidate_periods(series):
        patterns = miner.mine(series, period)
        if max_patterns_per_period is not None:
            patterns = patterns[:max_patterns_per_period]
        if patterns:
            out[period] = patterns
    return out

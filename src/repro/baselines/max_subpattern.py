"""Han et al.'s max-subpattern hit-set algorithm ([11], ICDE 1999).

The published partial periodic pattern miner for a *known* period — the
algorithm a multi-pass pipeline would actually run per candidate period.
Two scans:

1. count the frequent 1-patterns ``F1`` (one symbol fixed, per
   position), and form the *candidate max-pattern* ``C_max`` whose slot
   ``l`` holds every frequent symbol at ``l``;
2. for each period segment, compute its *maximal hit subpattern* (the
   segment intersected with ``C_max``) and insert it into the
   **max-subpattern tree**, a counted trie of hit patterns.

Every partial pattern's frequency is then the sum of the counts of the
tree nodes whose pattern contains it — no further data scans.  The
final enumeration is Apriori-style over ``F1`` items with support
counted against the tree.

Results are definition-identical to the plain Apriori segment miner in
:mod:`repro.baselines.han_partial`; the test suite asserts the two agree
exactly, which pins both implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.patterns import PeriodicPattern
from ..core.sequence import SymbolSequence

__all__ = ["MaxSubpatternTree", "MaxSubpatternMiner"]

Items = tuple[tuple[int, int], ...]  # ((position, symbol_code), ...) sorted


@dataclass
class _Node:
    """One max-subpattern tree node: a hit pattern with its count."""

    items: Items
    count: int = 0
    children: dict[Items, "_Node"] = field(default_factory=dict)


class MaxSubpatternTree:
    """Counted trie of maximal hit subpatterns.

    Nodes are keyed by their item sets; an insertion bumps the exact
    node's count, creating intermediate nodes with count 0 as needed
    (linked by dropping one item at a time, as in the published
    structure).
    """

    def __init__(self, root_items: Items):
        self._nodes: dict[Items, _Node] = {root_items: _Node(root_items)}
        self._root = root_items

    @property
    def root_items(self) -> Items:
        """The candidate max-pattern ``C_max`` item set."""
        return self._root

    @property
    def node_count(self) -> int:
        """Number of materialised nodes."""
        return len(self._nodes)

    def insert(self, items: Items) -> None:
        """Record one segment's maximal hit subpattern.

        Creates only the nodes along the pattern's *canonical path* from
        the root — ``C_max`` with the missing items removed one at a
        time in item order — which is Han's published structure: each
        node has one parent chain, so an insertion materialises at most
        ``|missing|`` intermediate (count-0) nodes, never a lattice.
        """
        if not items:
            return  # a segment hitting nothing contributes no pattern
        node = self._nodes.get(items)
        if node is None:
            node = _Node(items)
            self._nodes[items] = node
            self._link_canonical_path(node)
        node.count += 1

    def _link_canonical_path(self, node: _Node) -> None:
        missing = [item for item in self._root if item not in set(node.items)]
        current = self._nodes[self._root]
        removed: set[tuple[int, int]] = set()
        for item in missing:
            removed.add(item)
            step_items: Items = tuple(
                i for i in self._root if i not in removed
            )
            child = self._nodes.get(step_items)
            if child is None:
                child = _Node(step_items)
                self._nodes[step_items] = child
            current.children.setdefault(step_items, child)
            current = child

    def frequency(self, items: Items) -> int:
        """Total segments whose hit pattern contains ``items``."""
        target = set(items)
        return sum(
            node.count
            for node in self._nodes.values()
            if node.count and target <= set(node.items)
        )

    def hit_patterns(self) -> list[tuple[Items, int]]:
        """The materialised hit patterns with non-zero counts."""
        return [
            (node.items, node.count)
            for node in self._nodes.values()
            if node.count
        ]


class MaxSubpatternMiner:
    """Two-scan partial periodic pattern mining via the hit-set tree.

    Parameters
    ----------
    min_confidence:
        Minimum fraction of period segments a pattern must match.
    max_arity:
        Cap on fixed positions per reported pattern.
    """

    def __init__(self, min_confidence: float = 0.5, max_arity: int | None = None):
        if not 0 < min_confidence <= 1:
            raise ValueError("min_confidence must be in (0, 1]")
        self._min_confidence = min_confidence
        self._max_arity = max_arity

    # -- scan 1 -------------------------------------------------------------------

    @staticmethod
    def item_counts(
        series: SymbolSequence, period: int
    ) -> dict[tuple[int, int], int]:
        """Raw (position, symbol) segment counts, no threshold applied.

        Additive across segment-aligned chunks — the quantity merge
        mining exchanges instead of raw data.
        """
        if period < 1:
            raise ValueError("period must be >= 1")
        segments = series.length // period
        if segments == 0:
            return {}
        matrix = series.codes[: segments * period].reshape(segments, period)
        items: dict[tuple[int, int], int] = {}
        for l in range(period):
            symbols, counts = np.unique(matrix[:, l], return_counts=True)
            for symbol, count in zip(symbols, counts):
                items[(int(l), int(symbol))] = int(count)
        return items

    def frequent_items(
        self, series: SymbolSequence, period: int
    ) -> dict[tuple[int, int], int]:
        """``F1``: frequent (position, symbol) items with their counts."""
        counts = self.item_counts(series, period)  # validates the period
        segments = series.length // period
        if segments == 0:
            return {}
        threshold = self._min_confidence * segments
        return {item: count for item, count in counts.items() if count >= threshold}

    # -- scan 2 -------------------------------------------------------------------

    def build_tree(
        self,
        series: SymbolSequence,
        period: int,
        root: Items | None = None,
    ) -> MaxSubpatternTree:
        """Second scan: insert each segment's maximal hit subpattern.

        ``root`` overrides the candidate max-pattern — merge mining
        passes the *global* ``C_max`` so per-chunk trees stay mergeable.
        """
        if root is None:
            f1 = self.frequent_items(series, period)
            c_max: Items = tuple(sorted(f1))
        else:
            c_max = tuple(sorted(root))
            if any(not 0 <= l < period for l, _ in c_max):
                raise ValueError("root items outside the period")
        tree = MaxSubpatternTree(c_max)
        segments = series.length // period
        matrix = series.codes[: segments * period].reshape(segments, period)
        for row in matrix:
            hit = tuple(
                (l, int(row[l]))
                for l, s in c_max
                if int(row[l]) == s
            )
            # Dedupe positions hit via multiple F1 symbols is impossible:
            # a segment has one symbol per position, so `hit` is sorted
            # and position-unique by construction.
            tree.insert(hit)
        return tree

    # -- enumeration -----------------------------------------------------------------

    def mine(self, series: SymbolSequence, period: int) -> list[PeriodicPattern]:
        """All partial periodic patterns at ``period``, support-sorted.

        Apriori over ``F1`` items; support of every candidate is counted
        against the tree, never against the data.
        """
        segments = series.length // period
        if segments == 0:
            return []
        threshold = self._min_confidence * segments
        f1 = self.frequent_items(series, period)
        tree = self.build_tree(series, period)

        out: list[PeriodicPattern] = [
            PeriodicPattern.single(period, l, s, count / segments)
            for (l, s), count in sorted(f1.items())
        ]
        frontier: list[Items] = [((l, s),) for (l, s) in sorted(f1)]
        arity = 1
        while frontier and (self._max_arity is None or arity < self._max_arity):
            next_frontier: list[Items] = []
            for itemset in frontier:
                last_position = itemset[-1][0]
                for item in sorted(f1):
                    if item[0] <= last_position:
                        continue
                    candidate: Items = itemset + (item,)
                    frequency = tree.frequency(candidate)
                    if frequency >= threshold:
                        next_frontier.append(candidate)
                        out.append(
                            PeriodicPattern.from_items(
                                period, dict(candidate), frequency / segments
                            )
                        )
            frontier = next_frontier
            arity += 1
        out.sort(key=lambda p: (-p.support, p.arity))
        return out

"""Random-projection sketches for shifted self-distance estimation.

Substrate for the periodic-trends baseline (Indyk, Koudas,
Muthukrishnan, VLDB 2000).  The quantity of interest is the shifted
self-distance of a symbol series,

    D(p) = |{ j : t_j != t_{j+p},  0 <= j < n - p }| ,

for every shift ``p``.  With one-hot symbol encoding this is half the
squared Euclidean distance between ``T[0:n-p]`` and ``T[p:n]``, so it
can be estimated by Johnson-Lindenstrauss sign sketches:

    z_m(p) = sum_j ( g_m(j, t_j) - g_m(j, t_{j+p}) ),    g_m iid +-1

has ``E[z_m(p)^2] = 2 D(p)``.  The first sum is a prefix sum; the second
is, per symbol, a correlation of the sign table against the symbol's
indicator vector — so *one FFT batch per sketch dimension* yields the
estimate for **all** shifts simultaneously.  With ``d = O(log n)``
repetitions the total cost is ``O(sigma n log^2 n)``, the complexity
class the paper quotes for [13].
"""

from __future__ import annotations

import numpy as np

from ..convolution.fft import correlate_fft
from ..core.sequence import SymbolSequence

__all__ = ["SelfDistanceSketch", "exact_self_distances"]


def exact_self_distances(
    series: SymbolSequence, max_shift: int | None = None
) -> np.ndarray:
    """Exact ``D(p)`` for ``p = 1 .. max_shift`` via per-symbol FFTs.

    ``D(p) = (n - p) - sum_k M_k(p)``: total aligned positions minus the
    matches of every symbol.  ``O(sigma n log n)`` for all shifts.
    Index 0 of the returned array is 0 (``D(0)`` is identically zero).
    """
    n = series.length
    if max_shift is None:
        max_shift = n // 2
    max_shift = min(max_shift, n - 1)
    matches = np.zeros(max_shift + 1)
    for k in range(series.sigma):
        indicator = series.indicator(k)
        if indicator.any():
            corr = correlate_fft(indicator, use_numpy=True)
            matches += np.rint(corr[: max_shift + 1])
    aligned = n - np.arange(max_shift + 1, dtype=np.float64)
    distances = aligned - matches
    distances[0] = 0.0
    return distances


class SelfDistanceSketch:
    """JL sign-sketch estimator of the shifted self-distances.

    Parameters
    ----------
    dimensions:
        Number of independent sketches ``d``; the estimator's relative
        standard error is about ``sqrt(2/d)``.
    rng:
        Source of the sign tables.
    """

    def __init__(self, dimensions: int = 64, rng: np.random.Generator | None = None):
        if dimensions < 1:
            raise ValueError("sketch dimensions must be positive")
        self._dimensions = dimensions
        self._rng = np.random.default_rng() if rng is None else rng

    @property
    def dimensions(self) -> int:
        """Number of sketch repetitions."""
        return self._dimensions

    def estimate(
        self, series: SymbolSequence, max_shift: int | None = None
    ) -> np.ndarray:
        """Estimated ``D(p)`` for ``p = 0 .. max_shift``.

        One batch of ``d * sigma`` FFT correlations answers every shift.
        """
        n = series.length
        if max_shift is None:
            max_shift = n // 2
        max_shift = min(max_shift, n - 1)
        codes = series.codes
        estimates = np.zeros(max_shift + 1)
        for _ in range(self._dimensions):
            signs = self._rng.choice((-1.0, 1.0), size=(n, series.sigma))
            own = signs[np.arange(n), codes]  # g(j, t_j)
            # First term: sum_{j < n-p} g(j, t_j) — a suffix of prefix sums.
            prefix = np.concatenate([[0.0], np.cumsum(own)])
            # Second term: sum_{j < n-p} g(j, t_{j+p})
            #            = sum_k sum_{i >= p} g(i-p, k) [t_i = k]
            # — per symbol, the lag-p correlation of the sign column with
            # the symbol's indicator.
            shifted = np.zeros(max_shift + 1)
            for k in range(series.sigma):
                indicator = codes == k
                if indicator.any():
                    corr = correlate_fft(
                        indicator.astype(np.float64), signs[:, k], use_numpy=True
                    )
                    shifted += corr[: max_shift + 1]
            z = prefix[n - np.arange(max_shift + 1)] - shifted
            estimates += z * z
        estimates /= 2.0 * self._dimensions
        estimates[0] = 0.0
        return estimates

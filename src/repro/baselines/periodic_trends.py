"""The periodic-trends baseline (Indyk, Koudas, Muthukrishnan [13]).

The comparison algorithm of the paper's experimental study.  It computes
for every candidate shift the *relaxed-period* objective — the distance
between the series and its shifted self — and ranks periods from the
smallest distance ("the periods that correspond to the minimum absolute
values [are] the most candidate periods").  Sketching brings the total
cost to ``O(n log^2 n)``, versus the convolution miner's ``O(n log n)``.

Output semantics follow Sect. 4.1 of the paper: the candidacy *rank* of
a period, normalised to ``(0, 1]``, acts as its confidence — the top
candidate scores 1.  The paper's Fig. 4 shows this ranking is biased
toward large periods, because the raw distance sums over only ``n - p``
aligned positions; :class:`PeriodicTrends` exposes a ``normalize``
toggle so the ablation benchmark can show the bias disappearing when
distances are divided by ``n - p``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..core.sequence import SymbolSequence
from .sketch import SelfDistanceSketch, exact_self_distances

__all__ = ["PeriodicTrends", "TrendsResult"]

Method = Literal["sketch", "exact"]


@dataclass(frozen=True, slots=True)
class TrendsResult:
    """Ranked candidate periods from the periodic-trends algorithm.

    Attributes
    ----------
    distances:
        (Estimated) shifted self-distance per shift; index = shift,
        entry 0 unused.
    ranked_periods:
        Periods ``1..max_shift`` ordered from most to least candidate.
    """

    distances: np.ndarray
    ranked_periods: tuple[int, ...]

    @property
    def top(self) -> int:
        """The most candidate period."""
        return self.ranked_periods[0]

    def rank(self, period: int) -> int:
        """1-based candidacy rank of a period (1 = most candidate)."""
        try:
            return self.ranked_periods.index(period) + 1
        except ValueError:
            raise ValueError(f"period {period} was not analysed") from None

    def confidence(self, period: int) -> float:
        """Normalised rank in ``(0, 1]``; the top candidate scores 1.

        This is the paper's Sect. 4.1 reading of the algorithm's output
        for the Fig. 4 comparison.
        """
        total = len(self.ranked_periods)
        return (total - self.rank(period) + 1) / total


class PeriodicTrends:
    """Candidate-period detection by (sketched) shifted self-distances.

    Parameters
    ----------
    method:
        ``"sketch"`` — the JL estimator with the algorithm's published
        ``O(n log^2 n)`` character; ``"exact"`` — exact distances via
        per-symbol FFTs (slightly costlier per shift batch but
        deterministic; used to isolate ranking behaviour from sketch
        variance).
    dimensions:
        Sketch repetitions (``"sketch"`` only).
    normalize:
        Divide each distance by its ``n - p`` aligned positions before
        ranking.  **Off by default**, matching the published algorithm
        and reproducing its large-period bias.
    rng:
        Randomness for the sketches.
    """

    def __init__(
        self,
        method: Method = "sketch",
        dimensions: int = 64,
        normalize: bool = False,
        rng: np.random.Generator | None = None,
    ):
        if method not in ("sketch", "exact"):
            raise ValueError(f"unknown method {method!r}")
        self._method = method
        self._dimensions = dimensions
        self._normalize = normalize
        self._rng = rng

    def analyse(
        self, series: SymbolSequence, max_shift: int | None = None
    ) -> TrendsResult:
        """Rank every period ``1 .. max_shift`` (default ``n // 2``)."""
        n = series.length
        if n < 2:
            raise ValueError("the series must contain at least two symbols")
        if max_shift is None:
            max_shift = n // 2
        max_shift = min(max_shift, n - 1)
        if max_shift < 1:
            raise ValueError("max_shift must allow at least one period")
        if self._method == "exact":
            distances = exact_self_distances(series, max_shift)
        else:
            sketch = SelfDistanceSketch(self._dimensions, self._rng)
            distances = sketch.estimate(series, max_shift)
        scores = distances[1:].astype(np.float64).copy()
        if self._normalize:
            scores /= n - np.arange(1, max_shift + 1, dtype=np.float64)
        order = np.argsort(scores, kind="stable") + 1
        return TrendsResult(distances=distances, ranked_periods=tuple(int(p) for p in order))

"""The Ma-Hellerstein inter-arrival baseline ([16], ICDE 2001).

A linear-time, distance-based period detector for "partially periodic
event patterns with unknown periods": for each event type, histogram the
inter-arrival times between *adjacent* occurrences and flag, with a
chi-squared test against random placement, the gap values that occur too
often to be chance.

The paper's Sect. 1.1 criticism — reproduced by this implementation and
pinned by a test — is that adjacency misses valid periods: for a symbol
at positions 0, 4, 5, 7, 10 the adjacent gaps are 4, 1, 2, 3, so the
true underlying period 5 is never examined.  (Extending to all pairwise
gaps would cost ``O(n^2)``.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.sequence import SymbolSequence

__all__ = ["PeriodCandidate", "MaHellerstein", "chi_squared_threshold"]

#: Upper critical values of chi-squared with 1 degree of freedom.
_CHI2_CRITICAL = {0.90: 2.7055, 0.95: 3.8415, 0.99: 6.6349}


def chi_squared_threshold(confidence: float) -> float:
    """Critical value of the 1-df chi-squared test at a confidence level."""
    try:
        return _CHI2_CRITICAL[confidence]
    except KeyError:
        raise ValueError(
            f"supported confidence levels: {sorted(_CHI2_CRITICAL)}"
        ) from None


@dataclass(frozen=True, slots=True)
class PeriodCandidate:
    """A flagged period for one symbol.

    ``statistic`` is the chi-squared score of the gap count against the
    random-placement expectation; larger means more surprising.
    """

    symbol_code: int
    period: int
    count: int
    expected: float
    statistic: float


class MaHellerstein:
    """Adjacent-inter-arrival period detection with a chi-squared test.

    Parameters
    ----------
    confidence:
        Test confidence level (0.90, 0.95, or 0.99).
    min_count:
        Ignore gap values observed fewer times than this (guards the
        test against one-off gaps).
    """

    def __init__(self, confidence: float = 0.95, min_count: int = 2):
        self._threshold = chi_squared_threshold(confidence)
        if min_count < 1:
            raise ValueError("min_count must be >= 1")
        self._min_count = min_count

    def adjacent_gaps(self, series: SymbolSequence, symbol_code: int) -> np.ndarray:
        """Inter-arrival times between adjacent occurrences of a symbol."""
        positions = np.nonzero(series.codes == symbol_code)[0]
        return np.diff(positions)

    def candidates_for_symbol(
        self, series: SymbolSequence, symbol_code: int
    ) -> list[PeriodCandidate]:
        """Flagged periods for one symbol, most surprising first."""
        n = series.length
        gaps = self.adjacent_gaps(series, symbol_code)
        if gaps.size == 0:
            return []
        occurrences = gaps.size + 1
        density = occurrences / n
        values, counts = np.unique(gaps, return_counts=True)
        out: list[PeriodCandidate] = []
        for gap, count in zip(values, counts):
            if count < self._min_count:
                continue
            # Geometric null: P(next occurrence exactly `gap` later).
            expected = gaps.size * density * (1.0 - density) ** (int(gap) - 1)
            if expected <= 0:
                continue
            statistic = (count - expected) ** 2 / expected
            if count > expected and statistic >= self._threshold:
                out.append(
                    PeriodCandidate(
                        symbol_code=int(symbol_code),
                        period=int(gap),
                        count=int(count),
                        expected=float(expected),
                        statistic=float(statistic),
                    )
                )
        out.sort(key=lambda c: -c.statistic)
        return out

    def candidates(self, series: SymbolSequence) -> list[PeriodCandidate]:
        """Flagged periods across all symbols, most surprising first.

        One linear pass per symbol over that symbol's occurrences —
        linear overall, as published.
        """
        out: list[PeriodCandidate] = []
        for k in range(series.sigma):
            out.extend(self.candidates_for_symbol(series, k))
        out.sort(key=lambda c: -c.statistic)
        return out

    def candidate_periods(self, series: SymbolSequence) -> list[int]:
        """Distinct flagged periods, ascending."""
        return sorted({c.period for c in self.candidates(series)})

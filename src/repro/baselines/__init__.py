"""Baselines: every comparison algorithm the paper cites, plus an oracle.

* :mod:`repro.baselines.periodic_trends` — Indyk et al. sketch ranking
  (the paper's experimental comparator, Figs. 4 and 5);
* :mod:`repro.baselines.sketch` — its random-projection substrate;
* :mod:`repro.baselines.ma_hellerstein` — linear inter-arrival detector;
* :mod:`repro.baselines.berberidis` — per-symbol autocorrelation
  detector and the multi-pass pipeline;
* :mod:`repro.baselines.han_partial` — known-period partial pattern
  miner (the pipeline's second pass);
* :mod:`repro.baselines.brute_force` — quadratic oracle for testing.
"""

from .brute_force import brute_force_matches, brute_force_table
from .sketch import SelfDistanceSketch, exact_self_distances
from .periodic_trends import PeriodicTrends, TrendsResult
from .ma_hellerstein import MaHellerstein, PeriodCandidate, chi_squared_threshold
from .han_partial import HanPartialMiner
from .berberidis import Berberidis, SymbolPeriodHint, multi_pass_pipeline
from .warping import WarpingDetector, banded_edit_distance
from .max_subpattern import MaxSubpatternMiner, MaxSubpatternTree
from .asynchronous import AsynchronousMiner, ValidSubsequence
from .merge_mining import MergeMiner, merge_trees

__all__ = [
    "brute_force_matches",
    "brute_force_table",
    "SelfDistanceSketch",
    "exact_self_distances",
    "PeriodicTrends",
    "TrendsResult",
    "MaHellerstein",
    "PeriodCandidate",
    "chi_squared_threshold",
    "HanPartialMiner",
    "Berberidis",
    "SymbolPeriodHint",
    "multi_pass_pipeline",
    "WarpingDetector",
    "banded_edit_distance",
    "MaxSubpatternMiner",
    "MaxSubpatternTree",
    "AsynchronousMiner",
    "ValidSubsequence",
    "MergeMiner",
    "merge_trees",
]

"""Warping-based periodicity detection (the WARP-style extension).

Fig. 6 of the paper shows its convolution miner collapsing under
insertion/deletion noise: one inserted symbol shifts every later
position off phase, so exact shifted comparison stops matching.  The
authors' follow-up line of work cures this with *time warping* — compare
``T`` to ``T^(p)`` with an edit distance instead of the rigid positional
match, so a bounded amount of local drift is absorbed.

This module implements that extension on this library's substrate:

* :func:`banded_edit_distance` — unit-cost Levenshtein distance
  restricted to a Sakoe-Chiba band (``O(n * band)``);
* :class:`WarpingDetector` — warped confidence per candidate period,
  ``1 - edit(T[:-p], T[p:]) / (n - p)``.

Because each period costs ``O(n * band)``, the detector is meant to
*verify* a shortlist of candidate periods (from the miner, the segment
screen, or domain knowledge), not to scan all ``n/2`` shifts.  The
ablation bench shows it holding high confidence under exactly the
insertion/deletion mixes that break the exact miner.

**Resolution trade-off.**  The band both absorbs noise drift *and*
blurs the period axis: any shift within ``band`` of a true period (or
of one of its multiples) aligns almost as well as the period itself, so
warped confidence has a +-``band`` resolution.  Size the band to the
expected drift per period gap — about ``sqrt(noise_ratio * period)``
for balanced insertion/deletion noise — not larger.
"""

from __future__ import annotations

import numpy as np

from ..core.sequence import SymbolSequence

__all__ = ["banded_edit_distance", "WarpingDetector"]


def banded_edit_distance(a: np.ndarray, b: np.ndarray, band: int) -> int:
    """Levenshtein distance of two code arrays within a diagonal band.

    Cells with ``|i - j| > band`` are never entered; if the true optimal
    alignment drifts further than ``band``, the result upper-bounds it.
    Unit costs for substitution, insertion, and deletion.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if band < 0:
        raise ValueError("band must be non-negative")
    m, n = a.size, b.size
    if abs(m - n) > band:
        # The end cell is outside the band; the distance is at least the
        # length difference, which is also what pure indels achieve.
        return max(
            abs(m - n),
            banded_edit_distance(a, b, band=abs(m - n)) if band else abs(m - n),
        )
    if m == 0 or n == 0:
        return max(m, n)
    infinity = m + n + 1
    # Row i stores cells j in [i - band, i + band], width 2*band + 1.
    width = 2 * band + 1
    previous = np.full(width, infinity, dtype=np.int64)
    # Row 0: D[0, j] = j for j <= band.
    offsets = np.arange(width) - band  # j - i
    row0 = offsets  # j = offsets when i = 0
    valid = (row0 >= 0) & (row0 <= n)
    previous[valid] = row0[valid]
    for i in range(1, m + 1):
        current = np.full(width, infinity, dtype=np.int64)
        j_values = i + offsets
        in_range = (j_values >= 0) & (j_values <= n)
        # Deletion: D[i-1, j] is at the same offset + 1 in the previous row
        # (previous row's j - (i-1) = offset + 1).
        deletion = np.full(width, infinity, dtype=np.int64)
        deletion[:-1] = previous[1:]
        deletion = deletion + 1
        # Insertion: D[i, j-1] is current at offset - 1.
        # Substitution/match: D[i-1, j-1] is previous at the same offset.
        j_index = j_values - 1  # b index for cell (i, j)
        char_cost = np.ones(width, dtype=np.int64)
        usable = in_range & (j_values >= 1)
        char_cost[usable] = (
            b[j_index[usable]] != a[i - 1]
        ).astype(np.int64)
        substitution = previous + char_cost
        best = np.minimum(deletion, substitution)
        # The insertion dependency is within the current row; resolve it
        # with a left-to-right scan (cheap: width is small).
        running = infinity
        for w in range(width):
            if not in_range[w]:
                continue
            j = int(j_values[w])
            if j == 0:
                value = i  # D[i, 0] = i
            else:
                value = min(int(best[w]), running + 1)
            current[w] = value
            running = value
        previous = current
    return int(previous[band + (n - m)])


class WarpingDetector:
    """Warped periodicity confidence per candidate period.

    Parameters
    ----------
    band:
        Sakoe-Chiba band radius; ``None`` derives
        ``max(4, ceil(1.5 * sqrt(p)))`` per period — head-room for the
        paper's noise ratios while keeping period resolution useful
        (see the module docstring for the trade-off).
    """

    def __init__(self, band: int | None = None):
        if band is not None and band < 0:
            raise ValueError("band must be non-negative")
        self._band = band

    def _band_for(self, period: int) -> int:
        if self._band is not None:
            return self._band
        return max(4, int(np.ceil(1.5 * np.sqrt(period))))

    def confidence(self, series: SymbolSequence, period: int) -> float:
        """Warped confidence ``1 - edit(T[:-p], T[p:]) / (n - p)``."""
        n = series.length
        if not 1 <= period < n:
            raise ValueError(f"period must lie in [1, n); got {period}")
        codes = series.codes
        aligned = n - period
        distance = banded_edit_distance(
            codes[:aligned], codes[period:], self._band_for(period)
        )
        return max(0.0, 1.0 - distance / aligned)

    def scan(
        self, series: SymbolSequence, periods: list[int]
    ) -> dict[int, float]:
        """Warped confidence for a shortlist of candidate periods."""
        if not periods:
            raise ValueError("at least one candidate period is required")
        return {int(p): self.confidence(series, int(p)) for p in periods}

    def best(self, series: SymbolSequence, periods: list[int]) -> int:
        """The shortlist period with the highest warped confidence."""
        scores = self.scan(series, periods)
        return max(scores, key=lambda p: (scores[p], -p))

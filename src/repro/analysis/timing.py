"""Small wall-clock measurement helpers for the timing experiments."""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

__all__ = ["Timing", "time_callable"]


@dataclass(frozen=True, slots=True)
class Timing:
    """Wall-clock timings of repeated calls, seconds."""

    best: float
    mean: float
    repeats: int


def time_callable(fn: Callable[[], object], repeats: int = 3) -> Timing:
    """Run ``fn`` ``repeats`` times and report best and mean seconds."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return Timing(best=min(samples), mean=sum(samples) / repeats, repeats=repeats)

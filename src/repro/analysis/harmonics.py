"""Base periods and harmonic grouping of detected periods.

A true period ``P`` resurfaces at every multiple — the paper's Table 1
lists 24, 48, 72, … and argues "the smaller periods are more accurate
than the larger ones since they are more informative" (its critique of
the trends baseline's bias).  This module turns that argument into an
operation: collapse a detected period set into *base periods* (those not
explained as a multiple of a stronger, smaller detection) plus their
harmonic families.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.periodicity import PeriodicityTable

__all__ = ["HarmonicFamily", "base_periods", "group_harmonics"]


@dataclass(frozen=True, slots=True)
class HarmonicFamily:
    """A base period with the detected multiples it explains."""

    base: int
    confidence: float
    harmonics: tuple[int, ...]

    @property
    def members(self) -> tuple[int, ...]:
        """Base period plus harmonics, ascending."""
        return (self.base,) + self.harmonics


def group_harmonics(
    periods: list[int],
    confidence_of,
    tolerance: float = 0.1,
) -> list[HarmonicFamily]:
    """Group detected periods into harmonic families.

    A period joins the family of the smallest detected divisor whose
    confidence is within ``tolerance`` of (or above) its own — i.e. the
    multiple adds no information the base did not already carry.
    Periods with no such divisor become bases themselves.  Families are
    returned by descending base confidence, then ascending base.

    ``confidence_of`` maps a period to its confidence (any score works:
    Definition 1 supports, segment supports, warped confidences).
    """
    if not 0 <= tolerance <= 1:
        raise ValueError("tolerance must lie in [0, 1]")
    detected = sorted(set(int(p) for p in periods))
    if any(p < 1 for p in detected):
        raise ValueError("periods must be positive")
    bases: dict[int, list[int]] = {}
    for period in detected:
        owner = None
        for base in sorted(bases):
            if period % base == 0 and confidence_of(base) + tolerance >= confidence_of(period):
                owner = base
                break
        if owner is None:
            bases[period] = []
        else:
            bases[owner].append(period)
    families = [
        HarmonicFamily(
            base=base,
            confidence=float(confidence_of(base)),
            harmonics=tuple(members),
        )
        for base, members in bases.items()
    ]
    families.sort(key=lambda f: (-f.confidence, f.base))
    return families


def base_periods(
    table: PeriodicityTable,
    psi: float,
    min_pairs: int = 1,
    tolerance: float = 0.1,
) -> list[HarmonicFamily]:
    """Harmonic families of a table's candidate periods at ``psi``.

    The usual front door: mine, then ask for the informative bases —
    e.g. the retail table's [24, 48, 72, 96, 168, …] collapses to a
    period-24 family (with 168 surviving as its own base only when its
    confidence genuinely exceeds what period 24 explains).
    """
    periods = table.candidate_periods(psi, min_pairs=min_pairs)
    return group_harmonics(periods, table.confidence, tolerance=tolerance)

"""Forecasting from mined periodicities.

The paper's opening sentence positions periodicity mining "as a tool
for forecasting and predicting the future behavior of time series
data"; this module makes that concrete.  A :class:`PeriodicForecaster`
fits on a series, picks a period (given or discovered), and predicts
future symbols from the per-position symbol distributions of the period
segments — with the marginal mode as the fallback for positions without
periodic structure.

The evaluation helper scores a forecaster against the always-predict-
the-mode baseline, which is the honest yardstick: a forecaster powered
by a real period must beat it, and on aperiodic data must match it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from ..core.segment import segment_supports
from ..core.sequence import SymbolSequence

__all__ = ["PeriodicForecaster", "ForecastEvaluation", "evaluate_forecaster"]


@dataclass(frozen=True, slots=True)
class ForecastEvaluation:
    """Hold-out accuracy of a forecaster against the marginal baseline."""

    accuracy: float
    baseline_accuracy: float
    horizon: int

    @property
    def lift(self) -> float:
        """Accuracy improvement over always predicting the mode."""
        return self.accuracy - self.baseline_accuracy


class PeriodicForecaster:
    """Predict future symbols from a series' periodic structure.

    Parameters
    ----------
    period:
        The period to condition on; ``None`` discovers the strongest
        candidate (by confidence, smallest on ties) up to
        ``max_period``.
    max_period:
        Search cap for period discovery.
    smoothing:
        Additive (Laplace) smoothing for the per-position distributions.
    """

    def __init__(
        self,
        period: int | None = None,
        max_period: int | None = None,
        smoothing: float = 1.0,
    ):
        if period is not None and period < 1:
            raise ValueError("period must be >= 1")
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self._period = period
        self._max_period = max_period
        self._smoothing = smoothing
        self._fitted_period: int | None = None
        self._distributions: np.ndarray | None = None
        self._marginal: np.ndarray | None = None
        self._n: int = 0
        self._alphabet = None

    # -- fitting ---------------------------------------------------------------

    @property
    def period(self) -> int:
        """The fitted period (raises before :meth:`fit`)."""
        if self._fitted_period is None:
            raise RuntimeError("the forecaster has not been fitted")
        return self._fitted_period

    def fit(self, series: SymbolSequence) -> "PeriodicForecaster":
        """Estimate the period (if needed) and the position distributions."""
        if series.length < 2:
            raise ValueError("fitting needs at least two symbols")
        self._alphabet = series.alphabet
        self._n = series.length
        sigma = series.sigma
        counts = np.bincount(series.codes, minlength=sigma).astype(np.float64)
        self._marginal = counts / counts.sum()

        period = self._period
        if period is None:
            # Whole-series repetition (segment support) is the right
            # criterion for forecasting: a single symbol's periodicity
            # (Definition 1 confidence) can be perfect at a sub-period
            # that does not repeat the rest of the alphabet.
            supports = segment_supports(series, max_period=self._max_period)
            if supports.size > 1:
                candidates = np.arange(1, supports.size)
                best = candidates[
                    np.lexsort((candidates, -supports[1:]))
                ][0]
                period = int(best)
            else:
                period = 1
        self._fitted_period = period

        distributions = np.full(
            (period, sigma), self._smoothing, dtype=np.float64
        )
        positions = np.arange(series.length) % period
        np.add.at(distributions, (positions, series.codes), 1.0)
        distributions /= distributions.sum(axis=1, keepdims=True)
        self._distributions = distributions
        return self

    # -- predicting --------------------------------------------------------------

    def predict_codes(self, horizon: int) -> np.ndarray:
        """Most likely codes for the next ``horizon`` positions."""
        if self._distributions is None:
            raise RuntimeError("the forecaster has not been fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        period = self._fitted_period
        positions = (self._n + np.arange(horizon)) % period
        return np.argmax(self._distributions[positions], axis=1).astype(np.int64)

    def predict(self, horizon: int) -> list[Hashable]:
        """Most likely symbols for the next ``horizon`` positions."""
        codes = self.predict_codes(horizon)  # raises if unfitted
        return self._alphabet.decode(codes)

    def probabilities(self, horizon: int) -> np.ndarray:
        """Full per-step distributions, shape ``(horizon, sigma)``."""
        if self._distributions is None:
            raise RuntimeError("the forecaster has not been fitted")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        positions = (self._n + np.arange(horizon)) % self._fitted_period
        return self._distributions[positions].copy()


def evaluate_forecaster(
    series: SymbolSequence,
    horizon: int,
    period: int | None = None,
    max_period: int | None = None,
) -> ForecastEvaluation:
    """Train on ``series[:-horizon]``, score on the held-out tail.

    Returns hold-out accuracy for the periodic forecaster and for the
    always-predict-the-global-mode baseline.
    """
    if not 1 <= horizon < series.length:
        raise ValueError("horizon must leave a non-empty training prefix")
    train = series[: series.length - horizon]
    test_codes = series.codes[series.length - horizon :]
    forecaster = PeriodicForecaster(period=period, max_period=max_period).fit(train)
    predicted = forecaster.predict_codes(horizon)
    accuracy = float(np.mean(predicted == test_codes))
    mode = int(np.bincount(train.codes, minlength=train.sigma).argmax())
    baseline = float(np.mean(test_codes == mode))
    return ForecastEvaluation(
        accuracy=accuracy, baseline_accuracy=baseline, horizon=horizon
    )

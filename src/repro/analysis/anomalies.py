"""Anomaly detection against mined periodic patterns.

The paper's related-work section cites surprising-pattern detection
(Keogh et al.) as the sibling problem; with periodic patterns in hand it
becomes a one-liner of policy: *a segment is anomalous when it violates
patterns that normally hold*.  This module scores each period segment by
the support-weighted fraction of mined patterns it breaks and flags the
outliers — e.g. the holiday in the retail data, or the vacation week in
the power data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pattern_text import segment_matches
from ..core.patterns import PeriodicPattern
from ..core.sequence import SymbolSequence

__all__ = ["SegmentAnomaly", "anomaly_scores", "find_anomalies"]


@dataclass(frozen=True, slots=True)
class SegmentAnomaly:
    """One anomalous period segment.

    Attributes
    ----------
    segment:
        Segment index (segment ``m`` covers ``[m*p, (m+1)*p)``).
    start / end:
        Series positions of the segment.
    score:
        Violation score in ``[0, 1]`` (1 = breaks every pattern).
    violated:
        The patterns the segment breaks, strongest first.
    """

    segment: int
    start: int
    end: int
    score: float
    violated: tuple[PeriodicPattern, ...]


def anomaly_scores(
    series: SymbolSequence, patterns: list[PeriodicPattern]
) -> np.ndarray:
    """Support-weighted violation score per period segment.

    All patterns must share one period.  Score of segment ``m`` is
    ``sum(support of violated patterns) / sum(all supports)``.
    """
    if not patterns:
        raise ValueError("at least one pattern is required")
    periods = {p.period for p in patterns}
    if len(periods) != 1:
        raise ValueError("all patterns must share one period")
    period = periods.pop()
    segments = series.length // period
    if segments == 0:
        raise ValueError("the series is shorter than one period")
    weights = np.array([max(p.support, 1e-9) for p in patterns])
    matches = np.stack(
        [segment_matches(series, p) for p in patterns], axis=1
    )  # (segments, patterns)
    violated_weight = ((~matches) * weights[None, :]).sum(axis=1)
    return violated_weight / weights.sum()


def find_anomalies(
    series: SymbolSequence,
    patterns: list[PeriodicPattern],
    threshold: float = 0.5,
    top: int | None = None,
) -> list[SegmentAnomaly]:
    """Segments whose violation score reaches ``threshold``, worst first."""
    if not 0 < threshold <= 1:
        raise ValueError("threshold must lie in (0, 1]")
    scores = anomaly_scores(series, patterns)
    period = patterns[0].period
    flagged: list[SegmentAnomaly] = []
    for segment in np.nonzero(scores >= threshold)[0]:
        violated = tuple(
            sorted(
                (
                    p
                    for p in patterns
                    if not segment_matches(series, p)[segment]
                ),
                key=lambda p: -p.support,
            )
        )
        flagged.append(
            SegmentAnomaly(
                segment=int(segment),
                start=int(segment) * period,
                end=(int(segment) + 1) * period,
                score=float(scores[segment]),
                violated=violated,
            )
        )
    flagged.sort(key=lambda a: (-a.score, a.segment))
    if top is not None:
        flagged = flagged[:top]
    return flagged

"""Calendar interpretation of mined periods.

The paper reads its raw periods in natural units — "a period of 168
hours (24*7) can be explained as the weekly pattern", "3961 hours shows
a periodicity of exactly 5.5 months plus one hour".  This module
automates that reading: given the sampling interval of the series, it
names each period in calendar units and points out near-misses of
well-known cycles (the off-by-one-hour DST signature included).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PeriodDescription", "describe_period", "SECONDS"]

#: Seconds per named calendar unit, largest first.
SECONDS = {
    "year": 365 * 86_400,
    "month": 30 * 86_400,
    "week": 7 * 86_400,
    "day": 86_400,
    "hour": 3_600,
    "minute": 60,
    "second": 1,
}

#: Cycles worth calling out when a period lands near them.
_LANDMARKS = (
    ("yearly", 365 * 86_400),
    ("monthly", 30 * 86_400),
    ("weekly", 7 * 86_400),
    ("daily", 86_400),
    ("hourly", 3_600),
)


@dataclass(frozen=True, slots=True)
class PeriodDescription:
    """A period translated into calendar terms.

    ``landmark`` names a well-known cycle the period matches or nearly
    matches; ``offset_samples`` is the signed distance from it, in
    samples — the paper's "plus one hour" reading (non-zero offsets on
    an otherwise exact landmark are the obscure-period signature).
    """

    period: int
    seconds: float
    text: str
    landmark: str | None
    offset_samples: int

    @property
    def is_obscure_variant(self) -> bool:
        """Near a landmark but not on it — e.g. the DST 24k±1 periods."""
        return self.landmark is not None and self.offset_samples != 0


def _render_duration(seconds: float) -> str:
    remaining = float(seconds)
    parts: list[str] = []
    for unit, size in SECONDS.items():
        if remaining >= size and len(parts) < 2:
            amount = int(remaining // size)
            remaining -= amount * size
            parts.append(f"{amount} {unit}{'s' if amount != 1 else ''}")
    if not parts:
        return f"{seconds:g} seconds"
    return " ".join(parts)


def describe_period(
    period: int,
    sample_seconds: float,
    landmark_tolerance: int = 2,
) -> PeriodDescription:
    """Describe one period given the sampling interval.

    Parameters
    ----------
    period:
        The period in samples.
    sample_seconds:
        Seconds between consecutive samples (3600 for hourly data,
        86400 for daily data).
    landmark_tolerance:
        Maximum distance, in samples, at which a period is associated
        with a landmark cycle.

    Examples
    --------
    >>> describe_period(168, 3600).text
    '1 week (weekly)'
    >>> describe_period(25, 3600).is_obscure_variant  # a DST-style 24+1
    True
    """
    if period < 1:
        raise ValueError("period must be >= 1")
    if sample_seconds <= 0:
        raise ValueError("sample_seconds must be positive")
    if landmark_tolerance < 0:
        raise ValueError("landmark_tolerance must be non-negative")
    seconds = period * sample_seconds
    landmark_name: str | None = None
    offset = 0
    for name, landmark_seconds in _LANDMARKS:
        if landmark_seconds <= sample_seconds:
            continue  # a landmark of one sample would match everything
        landmark_samples = landmark_seconds / sample_seconds
        # Associate with the nearest multiple of the landmark.
        multiple = max(round(period / landmark_samples), 1)
        distance = period - multiple * landmark_samples
        if abs(distance) <= landmark_tolerance and float(
            multiple * landmark_samples
        ).is_integer():
            landmark_name = name if multiple == 1 else f"{multiple}x {name}"
            offset = int(round(distance))
            break
    duration = _render_duration(seconds)
    if landmark_name is None:
        text = duration
    elif offset == 0:
        text = f"{duration} ({landmark_name})"
    else:
        sign = "+" if offset > 0 else "-"
        text = (
            f"{duration} ({landmark_name} {sign} {abs(offset)} "
            f"sample{'s' if abs(offset) != 1 else ''})"
        )
    return PeriodDescription(
        period=period,
        seconds=seconds,
        text=text,
        landmark=landmark_name,
        offset_samples=offset,
    )

"""Analysis harness: confidence, timing, significance, aggregation."""

from .confidence import average_confidences, miner_confidences, trends_confidences
from .timing import Timing, time_callable
from .significance import (
    ScoredPeriodicity,
    binomial_tail,
    score_periodicities,
    significant_periods,
)
from .aggregate import PeriodConsensus, consensus_periods, mine_many
from .harmonics import HarmonicFamily, base_periods, group_harmonics
from .forecast import ForecastEvaluation, PeriodicForecaster, evaluate_forecaster
from .anomalies import SegmentAnomaly, anomaly_scores, find_anomalies
from .calendar import PeriodDescription, describe_period

__all__ = [
    "average_confidences",
    "miner_confidences",
    "trends_confidences",
    "Timing",
    "time_callable",
    "ScoredPeriodicity",
    "binomial_tail",
    "score_periodicities",
    "significant_periods",
    "PeriodConsensus",
    "consensus_periods",
    "mine_many",
    "HarmonicFamily",
    "base_periods",
    "group_harmonics",
    "ForecastEvaluation",
    "PeriodicForecaster",
    "evaluate_forecaster",
    "SegmentAnomaly",
    "anomaly_scores",
    "find_anomalies",
    "PeriodDescription",
    "describe_period",
]

"""Statistical significance of detected symbol periodicities.

Definition 1 is a pure threshold test: any ``F2 / pairs >= psi``
qualifies, even when the projection has two elements and the symbol
covers half the alphabet — which is why real-data runs (Table 1) list
hundreds of trivially-supported near-``n/2`` periods.  This module
scores each periodicity against the i.i.d. null model:

under random placement, the probability that one adjacent projection
pair repeats symbol ``s`` is ``q = f_s**2`` with ``f_s`` the symbol's
empirical frequency, so ``F2 ~ Binomial(pairs, q)`` and the periodicity's
p-value is the binomial upper tail ``P[X >= F2]``.

The binomial tail is computed in log space from scratch (no scipy
dependency); the test suite cross-checks it against ``scipy.stats``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.periodicity import PeriodicityTable, SymbolPeriodicity
from ..core.sequence import SymbolSequence

__all__ = [
    "binomial_tail",
    "ScoredPeriodicity",
    "score_periodicities",
    "significant_periods",
]


def binomial_tail(successes: int, trials: int, probability: float) -> float:
    """Upper-tail probability ``P[X >= successes]``, ``X ~ Bin(trials, p)``.

    Exact summation in log space; numerically safe for the table sizes
    the miner produces (``trials <= n``).
    """
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must lie in [0, 1]")
    if successes <= 0:
        return 1.0
    if successes > trials:
        return 0.0
    if probability == 0.0:
        return 0.0
    if probability == 1.0:
        return 1.0
    log_p = math.log(probability)
    log_q = math.log1p(-probability)
    # First term at k = successes, then the multiplicative recurrence
    # term(k+1) = term(k) * (trials - k)/(k + 1) * p/q, stopping once the
    # remaining tail cannot matter.
    log_term = (
        math.lgamma(trials + 1)
        - math.lgamma(successes + 1)
        - math.lgamma(trials - successes + 1)
        + successes * log_p
        + (trials - successes) * log_q
    )
    term = math.exp(log_term)
    total = term
    ratio = probability / (1.0 - probability)
    for k in range(successes, trials):
        term *= (trials - k) / (k + 1) * ratio
        total += term
        if term < total * 1e-17:
            break
    return min(total, 1.0)


@dataclass(frozen=True, slots=True)
class ScoredPeriodicity:
    """A symbol periodicity with its null-model p-value."""

    periodicity: SymbolPeriodicity
    symbol_frequency: float
    p_value: float

    @property
    def significant_at(self) -> float:
        """Convenience mirror of the p-value for threshold comparisons."""
        return self.p_value


def score_periodicities(
    series: SymbolSequence,
    table: PeriodicityTable,
    psi: float,
    min_pairs: int = 1,
) -> list[ScoredPeriodicity]:
    """Attach binomial p-values to every periodicity at ``psi``.

    Sorted most-significant first; ties broken by period ascending so
    the informative base periods lead their multiples.
    """
    n = series.length
    if n == 0:
        return []
    frequencies = np.bincount(series.codes, minlength=series.sigma) / n
    scored = []
    for hit in table.periodicities(psi, min_pairs=min_pairs):
        frequency = float(frequencies[hit.symbol_code])
        p_value = binomial_tail(hit.f2, hit.pairs, frequency * frequency)
        scored.append(
            ScoredPeriodicity(
                periodicity=hit, symbol_frequency=frequency, p_value=p_value
            )
        )
    scored.sort(key=lambda s: (s.p_value, s.periodicity.period))
    return scored


def significant_periods(
    series: SymbolSequence,
    table: PeriodicityTable,
    psi: float,
    alpha: float = 1e-3,
    min_pairs: int = 1,
) -> list[int]:
    """Distinct periods with at least one periodicity below ``alpha``.

    A Bonferroni-style correction is applied for the number of
    periodicities tested, so the trivial near-``n/2`` certainties (two
    pairs, frequent symbol) drop out while the structural periods stay.
    """
    if not 0 < alpha < 1:
        raise ValueError("alpha must lie in (0, 1)")
    scored = score_periodicities(series, table, psi, min_pairs=min_pairs)
    if not scored:
        return []
    corrected = alpha / len(scored)
    return sorted(
        {s.periodicity.period for s in scored if s.p_value <= corrected}
    )

"""Detection-confidence measurement (the y-axis of Figs. 3, 4, and 6).

The paper's correctness experiments report, per period, "the minimum
periodicity threshold value required to detect a specific period" and
call it the *confidence* of that period.  For the convolution miner this
equals the best support of any symbol periodicity at the period; for the
periodic-trends baseline the paper substitutes the normalised candidacy
rank.  The helpers here compute both and average them over repeated
randomised runs, which is how every figure series is produced.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from ..baselines.periodic_trends import PeriodicTrends
from ..core.sequence import SymbolSequence
from ..core.spectral_miner import SpectralMiner

__all__ = [
    "miner_confidences",
    "trends_confidences",
    "average_confidences",
]


def miner_confidences(
    series: SymbolSequence,
    periods: Sequence[int],
    max_period: int | None = None,
) -> dict[int, float]:
    """Confidence of each period under the obscure-patterns miner.

    Uses the spectral miner unpruned so small supports remain visible.
    """
    periods = [int(p) for p in periods]
    if not periods:
        raise ValueError("at least one period is required")
    cap = max(periods) if max_period is None else max_period
    table = SpectralMiner(max_period=min(cap, series.length - 1)).periodicity_table(
        series
    )
    return {p: table.confidence(p) for p in periods}


def trends_confidences(
    series: SymbolSequence,
    periods: Sequence[int],
    trends: PeriodicTrends | None = None,
    max_shift: int | None = None,
) -> dict[int, float]:
    """Normalised-rank confidence of each period under periodic trends.

    The full shift range (default ``n // 2``) is ranked — ranking only
    the queried periods would hide the baseline's bias, which is the
    point of Fig. 4.
    """
    periods = [int(p) for p in periods]
    if not periods:
        raise ValueError("at least one period is required")
    trends = PeriodicTrends() if trends is None else trends
    result = trends.analyse(series, max_shift=max_shift)
    return {p: result.confidence(p) for p in periods}


def average_confidences(
    make_series: Callable[[np.random.Generator], SymbolSequence],
    periods: Sequence[int],
    runs: int,
    rng: np.random.Generator | None = None,
    algorithm: str = "miner",
    **kwargs,
) -> dict[int, float]:
    """Mean per-period confidence over ``runs`` generated series.

    Parameters
    ----------
    make_series:
        Generator invoked once per run with a child RNG.
    periods:
        Periods to evaluate (e.g. ``[P, 2*P, 3*P]``).
    runs:
        Number of repetitions ("the values collected are averaged over
        100 runs" in the paper; scale to taste).
    algorithm:
        ``"miner"`` or ``"trends"``.
    kwargs:
        Forwarded to the per-run confidence function.
    """
    if runs < 1:
        raise ValueError("runs must be >= 1")
    if algorithm not in ("miner", "trends"):
        raise ValueError(f"unknown algorithm {algorithm!r}")
    rng = np.random.default_rng() if rng is None else rng
    totals = {int(p): 0.0 for p in periods}
    for _ in range(runs):
        series = make_series(rng)
        if algorithm == "miner":
            confidences = miner_confidences(series, periods, **kwargs)
        else:
            confidences = trends_confidences(series, periods, **kwargs)
        for p, c in confidences.items():
            totals[p] += c
    return {p: total / runs for p, total in totals.items()}

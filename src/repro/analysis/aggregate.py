"""Aggregating periodicity evidence across many series.

The paper's real datasets are collections — "daily power consumption
rates of *some customers*", "timed sales transactions for *some*
Wal-Mart stores" — mined one series at a time.  This module provides the
cross-series view a deployment needs: mine every series, then find the
periods that hold across the population (consensus) and how strongly
(mean confidence), so a fleet-level weekly rhythm is separable from one
customer's idiosyncrasy.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..core.periodicity import PeriodicityTable
from ..core.sequence import SymbolSequence
from ..core.spectral_miner import SpectralMiner

__all__ = ["PeriodConsensus", "mine_many", "consensus_periods"]


@dataclass(frozen=True, slots=True)
class PeriodConsensus:
    """Cross-series agreement on one period.

    Attributes
    ----------
    period:
        The period.
    detections:
        How many series detect it at the queried threshold.
    series_count:
        How many series were mined.
    mean_confidence:
        Mean per-series confidence (best support) at this period.
    """

    period: int
    detections: int
    series_count: int
    mean_confidence: float

    @property
    def prevalence(self) -> float:
        """Fraction of series detecting the period."""
        return self.detections / self.series_count if self.series_count else 0.0


def mine_many(
    series_collection: Iterable[SymbolSequence],
    psi: float,
    max_period: int | None = None,
) -> list[PeriodicityTable]:
    """Mine every series with the spectral miner; returns the tables.

    ``psi`` prunes each table (pass a low value to keep more evidence).
    """
    tables = [
        SpectralMiner(psi=psi, max_period=max_period).periodicity_table(series)
        for series in series_collection
    ]
    if not tables:
        raise ValueError("at least one series is required")
    return tables


def consensus_periods(
    tables: Sequence[PeriodicityTable],
    psi: float,
    min_prevalence: float = 0.5,
    min_pairs: int = 1,
) -> list[PeriodConsensus]:
    """Periods detected (at ``psi``) in at least ``min_prevalence`` of
    the series, strongest consensus first.

    Sorted by (prevalence, mean confidence) descending, then by period
    ascending so base periods precede their multiples on ties.
    """
    if not tables:
        raise ValueError("at least one table is required")
    if not 0 < min_prevalence <= 1:
        raise ValueError("min_prevalence must lie in (0, 1]")
    total = len(tables)
    detections: dict[int, int] = {}
    confidence_sums: dict[int, float] = {}
    for table in tables:
        for period in table.candidate_periods(psi, min_pairs=min_pairs):
            detections[period] = detections.get(period, 0) + 1
    for period in detections:
        confidence_sums[period] = sum(t.confidence(period) for t in tables)
    out = [
        PeriodConsensus(
            period=period,
            detections=count,
            series_count=total,
            mean_confidence=confidence_sums[period] / total,
        )
        for period, count in detections.items()
        if count / total >= min_prevalence
    ]
    out.sort(key=lambda c: (-c.prevalence, -c.mean_confidence, c.period))
    return out

"""Structured records of faults survived and fallbacks taken.

Degradation must be observable, not silent: every retried shard emits
a :class:`FaultEvent` and every backend downgrade emits a
:class:`FallbackEvent`.  The engine keeps the records of its last run
(``ParallelWitnessEngine.events``, surfaced as
``ConvolutionMiner.fault_events``) and mirrors each one to the
``repro.parallel.faults`` logger at WARNING, so an operator sees a
degraded mine in the logs even when nobody polls the API.
"""

from __future__ import annotations

import logging
from concurrent.futures import BrokenExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass

from .inject import FaultInjected, PoisonedShard
from .plan import (
    RESULT_POISON,
    SHARD_TIMEOUT,
    SHM_ATTACH,
    WORKER_CRASH,
    WORKER_EXIT,
)

__all__ = ["FaultEvent", "FallbackEvent", "classify_fault", "FAULT_LOGGER"]

#: structured fault/fallback records are mirrored here at WARNING.
FAULT_LOGGER = logging.getLogger("repro.parallel.faults")


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One shard dispatch that failed (and what the engine did next).

    Attributes
    ----------
    site:
        Classified failure site (one of :data:`repro.faults.SITES`).
    shard:
        Index of the shard in the run's shard plan.
    lo, hi:
        The shard's period range (both inclusive).
    attempt:
        Dispatch attempt that failed (0 = first try).
    backend:
        Backend the failure happened on (``process`` / ``thread``).
    action:
        ``"retry"`` (re-dispatched with backoff), ``"fallback"``
        (retries exhausted or the pool broke: degrade backend), or
        ``"raise"`` (``on_fault="raise"``: abort the run).
    error:
        ``repr`` of the underlying exception.
    """

    site: str
    shard: int
    lo: int
    hi: int
    attempt: int
    backend: str
    action: str
    error: str

    def __str__(self) -> str:
        return (
            f"fault {self.site} on {self.backend} shard {self.shard} "
            f"(periods {self.lo}..{self.hi}, attempt {self.attempt}) "
            f"-> {self.action}: {self.error}"
        )


@dataclass(frozen=True, slots=True)
class FallbackEvent:
    """One backend downgrade along the ``process -> thread -> serial`` chain."""

    from_backend: str
    to_backend: str
    reason: str
    redispatched: int

    def __str__(self) -> str:
        return (
            f"fallback {self.from_backend} -> {self.to_backend} "
            f"({self.redispatched} shard(s) re-dispatched): {self.reason}"
        )


def classify_fault(error: BaseException) -> str:
    """Map an exception to the injection-site taxonomy.

    Injected faults carry their site; real failures are classified by
    type so the same event stream describes both (timeouts look like
    ``shard.timeout`` whether injected or genuine, a dead pool looks
    like ``worker.exit``, a missing segment like ``shm.attach``).
    """
    if isinstance(error, FaultInjected):
        return error.site
    if isinstance(error, PoisonedShard):
        return RESULT_POISON
    if isinstance(error, (TimeoutError, FutureTimeoutError)):
        return SHARD_TIMEOUT
    if isinstance(error, BrokenExecutor):
        return WORKER_EXIT
    if isinstance(error, FileNotFoundError):
        return SHM_ATTACH
    return WORKER_CRASH

"""Deterministic fault plans: *what* fails, *where*, and *how often*.

A :class:`FaultPlan` is pure data — a tuple of :class:`Injection`
records keyed by ``(site, shard, attempt)`` — so a plan is

* **deterministic**: whether a fault fires depends only on the named
  injection site, the shard index, and the dispatch attempt number,
  never on wall-clock time or scheduling order;
* **picklable**: plans travel into process-pool workers as plain
  frozen dataclasses, so the same plan governs the parent and every
  worker;
* **seedable**: :meth:`FaultPlan.random` derives a whole plan from one
  integer seed, which is what the differential fuzzing harness sweeps.

The streaming-periodicity setting (Ergün et al.) is one pass over data
that cannot be replayed; a mine that aborts mid-pass loses the pass.
The plan's job is to make every partial-failure mode reproducible on
demand so the engine's recovery paths can be proven equivalent to the
serial engine, not just believed.

Injection sites
---------------

========================  ====================================================
``worker.crash``          the shard computation raises mid-shard
``worker.exit``           the worker process dies hard (``os._exit``),
                          breaking the whole process pool; never fired
                          outside a child process
``shm.attach``            the worker's shared-memory attach fails
``shard.timeout``         the shard hangs (sleeps ``delay`` seconds) so the
                          parent's per-shard timeout expires
``result.poison``         the shard returns a corrupted result (period keys
                          dropped/added, or values of the wrong type)
========================  ====================================================

An :class:`Injection` fires while ``attempt < count``; with ``count``
at most the engine's retry budget the shard recovers in place, above
it the shard exhausts its retries and forces a backend fallback.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

__all__ = [
    "Injection",
    "FaultPlan",
    "SITES",
    "POISON_FLAVORS",
    "WORKER_CRASH",
    "WORKER_EXIT",
    "SHM_ATTACH",
    "SHARD_TIMEOUT",
    "RESULT_POISON",
]

WORKER_CRASH = "worker.crash"
WORKER_EXIT = "worker.exit"
SHM_ATTACH = "shm.attach"
SHARD_TIMEOUT = "shard.timeout"
RESULT_POISON = "result.poison"

#: every named injection site, in documentation order.
SITES: tuple[str, ...] = (
    WORKER_CRASH,
    WORKER_EXIT,
    SHM_ATTACH,
    SHARD_TIMEOUT,
    RESULT_POISON,
)

#: how a poisoned shard result is corrupted: ``drop`` removes the
#: highest period key, ``alien`` adds a period outside the shard,
#: ``none`` replaces one value with ``None``.
POISON_FLAVORS: tuple[str, ...] = ("drop", "alien", "none")


@dataclass(frozen=True, slots=True)
class Injection:
    """One planned fault: fire ``site`` at ``shard`` while ``attempt < count``.

    Parameters
    ----------
    site:
        One of :data:`SITES`.
    shard:
        Shard index the fault targets; ``None`` targets every shard.
    count:
        Number of consecutive attempts that fail before the shard is
        allowed to succeed (attempts are numbered from 0 per backend).
    delay:
        Sleep length in seconds for ``shard.timeout`` injections.
    flavor:
        Corruption style for ``result.poison`` injections
        (:data:`POISON_FLAVORS`).
    """

    site: str
    shard: int | None = None
    count: int = 1
    delay: float = 0.25
    flavor: str = "drop"

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown injection site {self.site!r}")
        if self.shard is not None and self.shard < 0:
            raise ValueError("shard index must be >= 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")
        if self.flavor not in POISON_FLAVORS:
            raise ValueError(f"unknown poison flavor {self.flavor!r}")

    def matches(self, site: str, shard: int, attempt: int) -> bool:
        """Does this injection fire at ``(site, shard, attempt)``?"""
        return (
            self.site == site
            and (self.shard is None or self.shard == shard)
            and attempt < self.count
        )


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A deterministic set of injections governing one mining run."""

    injections: tuple[Injection, ...] = field(default_factory=tuple)

    def match(self, site: str, shard: int, attempt: int) -> Injection | None:
        """The first injection firing at ``(site, shard, attempt)``."""
        for injection in self.injections:
            if injection.matches(site, shard, attempt):
                return injection
        return None

    @property
    def sites(self) -> frozenset[str]:
        """The distinct sites this plan injects at."""
        return frozenset(injection.site for injection in self.injections)

    def _with(self, injection: Injection) -> "FaultPlan":
        return replace(self, injections=self.injections + (injection,))

    # -- chainable builders ----------------------------------------------------

    def with_crash(self, shard: int | None = None, count: int = 1) -> "FaultPlan":
        """Add a worker crash (an exception mid-shard)."""
        return self._with(Injection(WORKER_CRASH, shard, count))

    def with_exit(self, shard: int | None = None, count: int = 1) -> "FaultPlan":
        """Add a hard worker death (breaks the whole process pool)."""
        return self._with(Injection(WORKER_EXIT, shard, count))

    def with_attach_failure(
        self, shard: int | None = None, count: int = 1
    ) -> "FaultPlan":
        """Add a shared-memory attach failure in the worker."""
        return self._with(Injection(SHM_ATTACH, shard, count))

    def with_hang(
        self, shard: int | None = None, count: int = 1, delay: float = 0.25
    ) -> "FaultPlan":
        """Add a shard hang of ``delay`` seconds (trips the timeout)."""
        return self._with(Injection(SHARD_TIMEOUT, shard, count, delay=delay))

    def with_poison(
        self, shard: int | None = None, count: int = 1, flavor: str = "drop"
    ) -> "FaultPlan":
        """Add a corrupted shard result."""
        return self._with(Injection(RESULT_POISON, shard, count, flavor=flavor))

    @classmethod
    def random(
        cls,
        seed: int,
        n_shards: int,
        *,
        sites: tuple[str, ...] = SITES,
        max_faults: int = 3,
        max_count: int = 4,
        delay: float = 0.2,
    ) -> "FaultPlan":
        """A seeded random plan over ``n_shards`` shards.

        The same ``(seed, n_shards, ...)`` always yields the same plan
        — the fuzz harness's whole contract.  ``max_count`` above the
        engine's retry budget makes exhaustion (and therefore backend
        fallback) reachable; at or below it every fault recovers by
        retry.
        """
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        rng = random.Random(seed)
        injections = tuple(
            Injection(
                site=rng.choice(sites),
                shard=rng.randrange(n_shards),
                count=rng.randint(1, max_count),
                delay=delay,
                flavor=rng.choice(POISON_FLAVORS),
            )
            for _ in range(rng.randint(1, max_faults))
        )
        return cls(injections)

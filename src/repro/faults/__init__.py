"""Deterministic fault injection for the parallel witness engine.

One pass over a stream cannot be repeated (Ergün et al., *Periodicity
in Data Streams with Wildcards*; *Streaming Periodicity with
Mismatches*), so the engine must survive partial failure mid-pass
instead of restarting it.  This package supplies the proof machinery:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a seeded, picklable,
  deterministic schedule of worker crashes, hard worker exits,
  shared-memory attach failures, shard hangs, and poisoned results at
  named injection sites;
* :mod:`repro.faults.inject` — the worker-side delivery helpers
  (no-ops without a plan) and the injected-fault exception types;
* :mod:`repro.faults.events` — :class:`FaultEvent` /
  :class:`FallbackEvent` records plus the exception-to-site
  classifier, so recovery is observable rather than silent.

The hardened engine (:mod:`repro.parallel.engine`) takes a
``fault_plan=`` and must return results identical to the serial
engines under any plan — the invariant the differential fuzzing
harness (``tests/test_fault_fuzz.py``) sweeps seeds against.
"""

from .events import FAULT_LOGGER, FallbackEvent, FaultEvent, classify_fault
from .inject import FaultInjected, PoisonedShard, fire, hang, poison
from .plan import (
    POISON_FLAVORS,
    RESULT_POISON,
    SHARD_TIMEOUT,
    SHM_ATTACH,
    SITES,
    WORKER_CRASH,
    WORKER_EXIT,
    FaultPlan,
    Injection,
)

__all__ = [
    "FaultPlan",
    "Injection",
    "SITES",
    "POISON_FLAVORS",
    "WORKER_CRASH",
    "WORKER_EXIT",
    "SHM_ATTACH",
    "SHARD_TIMEOUT",
    "RESULT_POISON",
    "FaultInjected",
    "PoisonedShard",
    "fire",
    "hang",
    "poison",
    "FaultEvent",
    "FallbackEvent",
    "classify_fault",
    "FAULT_LOGGER",
]

"""Runtime delivery of planned faults inside shard workers.

These helpers are called from the parallel engine's worker functions
at the named injection sites.  They are no-ops when ``plan`` is
``None`` (the production configuration), so the hot path pays one
``is None`` test per site and nothing else.

Exceptions defined here carry their context in ``args`` only, which
keeps them picklable across the process-pool result channel (exception
instances are rebuilt in the parent by calling ``type(*args)``).
"""

from __future__ import annotations

import multiprocessing
import os
import time

from .plan import (
    RESULT_POISON,
    SHARD_TIMEOUT,
    WORKER_EXIT,
    FaultPlan,
)

__all__ = [
    "FaultInjected",
    "PoisonedShard",
    "fire",
    "hang",
    "poison",
]

#: exit status of a hard-killed worker; distinctive in core dumps/logs.
_EXIT_STATUS = 113


class FaultInjected(RuntimeError):
    """An injected fault fired in a worker.

    Constructed as ``FaultInjected(site, shard, attempt)`` so the
    instance survives pickling between worker and parent.
    """

    @property
    def site(self) -> str:
        """The injection site that fired."""
        return str(self.args[0])

    @property
    def shard(self) -> int:
        """Index of the shard the fault hit."""
        return int(self.args[1])

    @property
    def attempt(self) -> int:
        """Dispatch attempt (0 = first try) the fault hit."""
        return int(self.args[2])

    def __str__(self) -> str:
        return (
            f"injected {self.args[0]} at shard {self.args[1]} "
            f"(attempt {self.args[2]})"
        )


class PoisonedShard(RuntimeError):
    """A shard result failed the parent's integrity check.

    Raised in the *parent*, not the worker — poisoned results come back
    through the normal result channel and are caught by validation.
    Constructed as ``PoisonedShard(shard, lo, hi)``.
    """

    def __str__(self) -> str:
        return (
            f"shard {self.args[0]} returned a corrupted result for "
            f"periods {self.args[1]}..{self.args[2]}"
        )


def fire(plan: FaultPlan | None, site: str, shard: int, attempt: int) -> None:
    """Raise (or hard-exit) if ``plan`` injects ``site`` here.

    ``worker.exit`` calls ``os._exit`` — but only inside a child
    process; in a thread backend (or the serial fallback) the guard
    turns it into a no-op rather than killing the whole interpreter.
    """
    if plan is None:
        return
    injection = plan.match(site, shard, attempt)
    if injection is None:
        return
    if site == WORKER_EXIT:
        if multiprocessing.parent_process() is None:
            return  # not a child process: a hard exit would kill the miner
        os._exit(_EXIT_STATUS)
    raise FaultInjected(site, shard, attempt)


def hang(plan: FaultPlan | None, shard: int, attempt: int) -> None:
    """Sleep through the parent's shard timeout if one is planned."""
    if plan is None:
        return
    injection = plan.match(SHARD_TIMEOUT, shard, attempt)
    if injection is not None:
        time.sleep(injection.delay)


def poison(
    plan: FaultPlan | None,
    shard: int,
    attempt: int,
    result: dict[int, object],
    lo: int,
    hi: int,
) -> dict[int, object]:
    """Corrupt a shard result if the plan says so (returns a copy).

    Every flavor is *detectable* by the engine's integrity check
    (exact period-key cover ``lo..hi`` plus value types) — a poisoned
    shard must look like a fault, never silently merge into the table.
    """
    if plan is None:
        return result
    injection = plan.match(RESULT_POISON, shard, attempt)
    if injection is None:
        return result
    corrupted = dict(result)
    if injection.flavor == "alien":
        corrupted[hi + 1] = corrupted.get(hi, {})
    elif injection.flavor == "none":
        corrupted[lo] = None
    else:  # "drop"
        corrupted.pop(hi, None)
    return corrupted

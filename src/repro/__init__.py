"""repro — obscure periodic pattern mining in one pass.

A complete reproduction of *"Using Convolution to Mine Obscure Periodic
Patterns in One Pass"* (Elfeky, Aref, Elmagarmid — EDBT 2004): the
convolution-based one-pass miner, a scalable FFT twin, every baseline
the paper compares against, data simulators for its (proprietary)
evaluation datasets, and the harness regenerating each of its tables and
figures.

Quickstart::

    from repro import SymbolSequence, mine

    T = SymbolSequence.from_string("abcabbabcb")
    result = mine(T, psi=2 / 3)
    for pattern in result.patterns_for(3):
        print(pattern.to_string(result.alphabet), pattern.support)

Sub-packages:

* :mod:`repro.core` — data model, both miners, pattern mining;
* :mod:`repro.convolution` — FFT / big-integer / out-of-core engines;
* :mod:`repro.parallel` — sharded worker-pool witness engine with
  shared-memory transport and the count-only fast path;
* :mod:`repro.baselines` — periodic trends, Ma-Hellerstein, Berberidis,
  Han-style partial miner, brute-force oracle;
* :mod:`repro.data` — synthetic generator, noise models, discretizers,
  CIMEG/Wal-Mart-like simulators;
* :mod:`repro.streaming` — chunked readers and the online miner;
* :mod:`repro.analysis` — confidence and timing harnesses;
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from .core import (
    Alphabet,
    ConvolutionMiner,
    DONT_CARE,
    ENGINES,
    Engine,
    MiningResult,
    PeriodicPattern,
    PeriodicityTable,
    SpectralMiner,
    SymbolPeriodicity,
    SymbolSequence,
    mine,
    mine_patterns,
)
from .streaming import ChunkedReader, OnlineMiner
from .pipeline import PeriodicityPipeline, PipelineReport

__version__ = "1.0.0"

__all__ = [
    "Alphabet",
    "ConvolutionMiner",
    "DONT_CARE",
    "ENGINES",
    "Engine",
    "MiningResult",
    "PeriodicPattern",
    "PeriodicityTable",
    "SpectralMiner",
    "SymbolPeriodicity",
    "SymbolSequence",
    "mine",
    "mine_patterns",
    "ChunkedReader",
    "OnlineMiner",
    "PeriodicityPipeline",
    "PipelineReport",
    "__version__",
]

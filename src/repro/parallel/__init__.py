"""Sharded parallel evaluation of the exact convolution components.

The period range ``1..n/2`` of the paper's one-pass miner is
embarrassingly parallel — each component ``X & (X >> sigma*p)`` reads
the same packed array independently — so this package shards it across
a worker pool:

* :mod:`repro.parallel.plan` — shard planner (oversubscribed contiguous
  period ranges, process/thread backend choice);
* :mod:`repro.parallel.transport` — one-shot shared-memory export of
  the packed ``uint64`` words, so tasks ship a name, not megabytes;
* :mod:`repro.parallel.engine` — the executor plus the count-only
  ``F2`` fast path used by pipeline scouting, hardened with per-shard
  timeouts, bounded retry, and the ``process -> thread -> serial``
  fallback chain (:data:`FALLBACK_CHAIN`, :data:`FAULT_POLICIES`).

Reached through ``ConvolutionMiner(engine="parallel", workers=...)``;
direct use is for callers that already hold packed words.
"""

from .engine import (
    FALLBACK_CHAIN,
    FAULT_POLICIES,
    ParallelWitnessEngine,
    ShardFailure,
    component_f2_counts,
)
from .plan import Shard, ShardPlan, plan_shards
from .transport import SharedWords, attach_words

__all__ = [
    "ParallelWitnessEngine",
    "component_f2_counts",
    "FALLBACK_CHAIN",
    "FAULT_POLICIES",
    "ShardFailure",
    "Shard",
    "ShardPlan",
    "plan_shards",
    "SharedWords",
    "attach_words",
]

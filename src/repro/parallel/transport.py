"""Zero-copy transport of the packed word array to worker processes.

A mining run over ``max_period`` shards would, with naive
``ProcessPoolExecutor`` argument passing, pickle the packed ``uint64``
array once **per task** — megabytes of redundant copying that dwarfs
the per-shard compute.  Instead the parent exports the words once into
a :mod:`multiprocessing.shared_memory` segment; workers attach by name
and map the same physical pages read-only-by-convention, so a shard
task ships only the segment name and a handful of integers.

Lifecycle: the parent owns the segment (create + unlink via the
:class:`SharedWords` context manager); workers attach, compute, drop
their view, and close.  Attachment is untracked where the runtime
allows it, so a worker exiting never unlinks the parent's segment.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedWords", "attach_words"]


class SharedWords:
    """A ``uint64`` word array exported once via shared memory.

    Use as a context manager; the segment is unlinked on exit::

        with SharedWords(words) as shared:
            pool.submit(worker, shared.name, shared.n_words, ...)
    """

    __slots__ = ("_shm", "n_words")

    def __init__(self, words: np.ndarray) -> None:
        words = np.ascontiguousarray(words, dtype=np.uint64)
        self.n_words = int(words.size)
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, words.nbytes)
        )
        if self.n_words:
            view = np.frombuffer(self._shm.buf, dtype=np.uint64, count=self.n_words)
            view[:] = words
            del view

    @property
    def name(self) -> str:
        """Segment name workers attach to."""
        return self._shm.name

    def close(self) -> None:
        """Release the parent's mapping and unlink the segment."""
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedWords":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def attach_words(name: str, n_words: int) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Attach to an exported segment; returns ``(view, handle)``.

    The caller must drop every reference to ``view`` before calling
    ``handle.close()`` (a live numpy view pins the mapping).
    """
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python < 3.13 has no ``track`` parameter; attaching registers
        # with the resource tracker, which pool workers share with the
        # parent, so the duplicate registration deduplicates to a no-op
        # and the parent's unlink stays the single cleanup point.
        shm = shared_memory.SharedMemory(name=name)
    try:
        words = np.frombuffer(shm.buf, dtype=np.uint64, count=n_words)
    except BaseException:
        # A failed view (e.g. a truncated segment) must not leak the
        # just-attached mapping in the worker.
        shm.close()
        raise
    return words, shm

"""Shard planning for the parallel witness engine.

The exact convolution components ``X & (X >> sigma*p)`` for
``p = 1 .. max_period`` are mutually independent, so the period range
splits into contiguous shards that workers evaluate without any
coordination.  The planner decides two things:

* **how many shards** — more shards than workers (oversubscription) so
  the pool self-balances: low periods carry denser witness sets (the
  overlap window ``n - p`` is larger), so equal-width shards have
  unequal cost and a 1:1 split would leave workers idle at the tail;
* **processes or threads** — worker processes pay a fork plus a
  shared-memory attach per pool, which only amortises once the packed
  array and the period range are big enough.  Small inputs run on a
  thread pool (numpy releases the GIL inside the shift/AND kernels) or
  serially in-process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["Shard", "ShardPlan", "plan_shards"]

#: below this many packed bits a process pool costs more than it saves.
_PROCESS_MIN_BITS = 1 << 18
#: a process pool also needs enough periods to keep every worker busy.
_PROCESS_MIN_PERIODS = 64
#: shards per worker; the slack lets the pool absorb cost imbalance.
_OVERSUBSCRIPTION = 4


@dataclass(frozen=True, slots=True)
class Shard:
    """One contiguous period range ``lo..hi`` (both inclusive)."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 1 <= self.lo <= self.hi:
            raise ValueError(f"invalid shard bounds [{self.lo}, {self.hi}]")

    @property
    def size(self) -> int:
        """Number of periods in the shard."""
        return self.hi - self.lo + 1

    def periods(self) -> range:
        """The periods of the shard, ascending."""
        return range(self.lo, self.hi + 1)


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """The planner's verdict: shards plus the execution backend."""

    shards: tuple[Shard, ...]
    workers: int
    use_processes: bool

    @property
    def max_period(self) -> int:
        """Largest period covered by the plan (0 when empty)."""
        return self.shards[-1].hi if self.shards else 0


def default_workers() -> int:
    """Worker count when the caller does not pin one: the CPU count."""
    return os.cpu_count() or 1


def plan_shards(
    max_period: int,
    *,
    total_bits: int,
    workers: int | None = None,
    mode: str = "auto",
) -> ShardPlan:
    """Split ``1..max_period`` into shards and pick the backend.

    Parameters
    ----------
    max_period:
        Upper end of the period range (inclusive); ``< 1`` yields an
        empty plan.
    total_bits:
        Size of the packed word array in bits (``sigma * n``) — the
        per-period work, which drives the process/thread decision.
    workers:
        Worker cap; defaults to the CPU count.  Clamped to the number
        of periods.
    mode:
        ``"auto"`` (size-based backend choice), ``"process"``, or
        ``"thread"``.
    """
    if mode not in ("auto", "process", "thread"):
        raise ValueError(f"unknown mode {mode!r}")
    if total_bits < 0:
        raise ValueError("total_bits must be non-negative")
    if max_period < 1:
        return ShardPlan((), workers=1, use_processes=False)
    workers = default_workers() if workers is None else workers
    if workers < 1:
        raise ValueError("workers must be >= 1")
    workers = min(workers, max_period)
    if mode == "process":
        use_processes = workers > 1
    elif mode == "thread":
        use_processes = False
    else:
        use_processes = (
            workers > 1
            and total_bits >= _PROCESS_MIN_BITS
            and max_period >= _PROCESS_MIN_PERIODS
        )
    n_shards = min(max_period, workers * _OVERSUBSCRIPTION) if workers > 1 else 1
    base, extra = divmod(max_period, n_shards)
    shards = []
    lo = 1
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        shards.append(Shard(lo, lo + size - 1))
        lo += size
    return ShardPlan(tuple(shards), workers=workers, use_processes=use_processes)

"""The sharded parallel witness engine.

Evaluates the paper's exact convolution components
``X & (X >> sigma*p)`` for a whole period range by fanning contiguous
period shards (:mod:`repro.parallel.plan`) out over a process pool —
the packed word array travels once via shared memory
(:mod:`repro.parallel.transport`), never per task — with a thread pool
or a plain in-process loop as the small-input fallbacks.

Two result shapes:

* **witnesses** — the full ascending witness-power arrays ``W_p``,
  bit-for-bit identical to the serial ``bitand`` / ``wordarray``
  engines;
* **count-only** — the ``F2`` tables ``{(symbol, position): count}``
  directly.  Stage-1 scouting never looks at witness *positions*, only
  at the per-residue-class cardinalities, so this path sums the bits of
  the masked AND result per ``(k, l)`` class (one dense ``unpackbits``
  of the component, one ``flatnonzero``, one ``bincount``) and skips
  the sparse position decode (``set_bit_positions``), its per-word
  scatter, and the ``np.unique`` row-grouping of
  :func:`repro.core.mapping.witnesses_to_f2_table` entirely.

The residue decode mirrors :mod:`repro.core.mapping`: a set bit
``w = sigma*q + k`` of the component for period ``p`` witnesses the
match ``t_j = t_{j+p} = s_k`` with ``j = n - p - 1 - q``, so the class
key is ``(k, j mod p)``.
"""

from __future__ import annotations

import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from ..convolution.bitops import (
    shift_right,
    shifted_self_and,
    unpack_bits,
    word_and,
)
from .plan import ShardPlan, plan_shards
from .transport import SharedWords, attach_words

__all__ = ["ParallelWitnessEngine", "component_f2_counts"]


def component_f2_counts(
    component: np.ndarray, n: int, sigma: int, period: int
) -> dict[tuple[int, int], int]:
    """Count-only decode of one AND component into its ``F2`` table.

    Equals ``witnesses_to_f2_table(set_bit_positions(component), ...)``
    but never materialises sorted witness positions: the component's
    bits are expanded densely once, and one ``bincount`` over the
    ``(symbol, position)`` class keys yields every cardinality.
    """
    if period < 1 or period >= n:
        return {}
    # The shifted operand has no bits >= sigma*(n - period), so neither
    # does the AND; expanding only the valid prefix is pure economy.
    valid_bits = sigma * (n - period)
    w = np.flatnonzero(unpack_bits(component, valid_bits))
    if w.size == 0:
        return {}
    symbols = w % sigma
    earlier = (n - period - 1) - w // sigma
    positions = earlier % period
    counts = np.bincount(symbols * period + positions, minlength=sigma * period)
    return {
        (int(key // period), int(key % period)): int(counts[key])
        for key in np.flatnonzero(counts)
    }


def _mine_shard(
    words: np.ndarray,
    n: int,
    sigma: int,
    lo: int,
    hi: int,
    count_only: bool,
) -> dict[int, object]:
    """Evaluate one shard's components over an already-attached array."""
    out: dict[int, object] = {}
    for p in range(lo, hi + 1):
        if count_only:
            component = word_and(words, shift_right(words, sigma * p))
            out[p] = component_f2_counts(component, n, sigma, p)
        else:
            out[p] = shifted_self_and(words, sigma * p)
    return out


def _mine_shard_shm(
    shm_name: str,
    n_words: int,
    n: int,
    sigma: int,
    lo: int,
    hi: int,
    count_only: bool,
) -> dict[int, object]:
    """Process-pool entry point: attach, mine the shard, detach."""
    words, shm = attach_words(shm_name, n_words)
    try:
        return _mine_shard(words, n, sigma, lo, hi, count_only)
    except BaseException as error:
        # The in-flight traceback pins the numpy view of the mapping
        # through the raising frame's locals, so close() below would
        # fail with BufferError (masking the worker's real error) and
        # leak the attachment; drop those frame locals first.
        traceback.clear_frames(error.__traceback__)
        raise
    finally:
        del words
        shm.close()


class ParallelWitnessEngine:
    """Sharded evaluator of all exact components of one packed series.

    Parameters
    ----------
    workers:
        Worker cap (default: CPU count).
    mode:
        ``"auto"`` (default), ``"process"``, or ``"thread"`` — forwarded
        to the shard planner; ``"auto"`` picks processes only when the
        input is large enough to amortise the pool.
    """

    def __init__(self, workers: int | None = None, mode: str = "auto") -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if mode not in ("auto", "process", "thread"):
            raise ValueError(f"unknown mode {mode!r}")
        self._workers = workers
        self._mode = mode

    def witness_sets(
        self, words: np.ndarray, n: int, sigma: int, max_period: int
    ) -> dict[int, np.ndarray]:
        """Witness powers ``W_p`` for every ``p`` in ``1..max_period``."""
        return self._run(words, n, sigma, max_period, count_only=False)

    def f2_tables(
        self, words: np.ndarray, n: int, sigma: int, max_period: int
    ) -> dict[int, dict[tuple[int, int], int]]:
        """Count-only fast path: the ``F2`` table of every period."""
        return self._run(words, n, sigma, max_period, count_only=True)

    def plan(self, max_period: int, total_bits: int) -> ShardPlan:
        """The shard plan this engine would execute (exposed for tests)."""
        return plan_shards(
            max_period,
            total_bits=total_bits,
            workers=self._workers,
            mode=self._mode,
        )

    def _run(
        self,
        words: np.ndarray,
        n: int,
        sigma: int,
        max_period: int,
        count_only: bool,
    ) -> dict[int, object]:
        words = np.ascontiguousarray(words, dtype=np.uint64)
        plan = self.plan(max_period, total_bits=words.size * 64)
        if not plan.shards:
            return {}
        if len(plan.shards) == 1:
            only = plan.shards[0]
            return _mine_shard(words, n, sigma, only.lo, only.hi, count_only)
        if plan.use_processes:
            with SharedWords(words) as shared:
                with ProcessPoolExecutor(max_workers=plan.workers) as pool:
                    futures = [
                        pool.submit(
                            _mine_shard_shm,
                            shared.name,
                            shared.n_words,
                            n,
                            sigma,
                            s.lo,
                            s.hi,
                            count_only,
                        )
                        for s in plan.shards
                    ]
                    results = [f.result() for f in futures]
        else:
            with ThreadPoolExecutor(max_workers=plan.workers) as pool:
                futures = [
                    pool.submit(
                        _mine_shard, words, n, sigma, s.lo, s.hi, count_only
                    )
                    for s in plan.shards
                ]
                results = [f.result() for f in futures]
        merged: dict[int, object] = {}
        for chunk in results:
            merged.update(chunk)
        return merged

"""The sharded parallel witness engine, hardened against partial failure.

Evaluates the paper's exact convolution components
``X & (X >> sigma*p)`` for a whole period range by fanning contiguous
period shards (:mod:`repro.parallel.plan`) out over a process pool —
the packed word array travels once via shared memory
(:mod:`repro.parallel.transport`), never per task — with a thread pool
or a plain in-process loop as the small-input fallbacks.

Two result shapes:

* **witnesses** — the full ascending witness-power arrays ``W_p``,
  bit-for-bit identical to the serial ``bitand`` / ``wordarray``
  engines;
* **count-only** — the ``F2`` tables ``{(symbol, position): count}``
  directly.  Stage-1 scouting never looks at witness *positions*, only
  at the per-residue-class cardinalities, so this path sums the bits of
  the masked AND result per ``(k, l)`` class (one dense ``unpackbits``
  of the component, one ``flatnonzero``, one ``bincount``) and skips
  the sparse position decode (``set_bit_positions``), its per-word
  scatter, and the ``np.unique`` row-grouping of
  :func:`repro.core.mapping.witnesses_to_f2_table` entirely.

Fault tolerance
---------------

A mine over a one-pass stream cannot be restarted, so a single worker
crash, shared-memory attach failure, or hung shard must not abort the
run.  The engine recovers in three nested layers, each observable
through :class:`repro.faults.FaultEvent` / :class:`~repro.faults.FallbackEvent`
records (``events`` property, mirrored to the ``repro.parallel.faults``
logger):

1. **per-shard timeout** — ``shard_timeout`` bounds how long the
   parent waits for any one shard before treating it as hung;
2. **bounded retry with exponential backoff** — a failed or timed-out
   shard is re-dispatched to the surviving workers up to
   ``max_retries`` times, sleeping ``retry_backoff * 2**attempt``
   between dispatches; results that fail the integrity check (exact
   period-key cover plus value types) count as faults too;
3. **backend degradation** — when a shard exhausts its retries or the
   pool itself breaks (a dead worker process takes the whole
   ``ProcessPoolExecutor`` with it), completed shard results are kept
   and only the remainder is re-dispatched one step down the
   ``process -> thread -> serial`` chain (:data:`FALLBACK_CHAIN`).
   The serial step runs in-process, injects nothing, and cannot fail,
   so under the default ``on_fault="fallback"`` policy the engine
   always returns a table identical to the serial engines;
   ``on_fault="raise"`` aborts instead with :class:`ShardFailure`
   (:data:`FAULT_POLICIES` names both policies).

Deterministic fault injection (:mod:`repro.faults`) threads a
``fault_plan`` into every worker so each recovery path is provable in
tests rather than waited for in production.

The residue decode mirrors :mod:`repro.core.mapping`: a set bit
``w = sigma*q + k`` of the component for period ``p`` witnesses the
match ``t_j = t_{j+p} = s_k`` with ``j = n - p - 1 - q``, so the class
key is ``(k, j mod p)``.
"""

from __future__ import annotations

import time
import traceback
from collections.abc import Callable
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)

import numpy as np

from ..convolution.bitops import (
    shift_right,
    shifted_self_and,
    unpack_bits,
    word_and,
)
from ..faults import (
    FAULT_LOGGER,
    SHM_ATTACH,
    WORKER_CRASH,
    WORKER_EXIT,
    FallbackEvent,
    FaultEvent,
    FaultPlan,
    PoisonedShard,
    classify_fault,
    fire,
    hang,
    poison,
)
from .plan import Shard, ShardPlan, plan_shards
from .transport import SharedWords, attach_words

__all__ = [
    "ParallelWitnessEngine",
    "component_f2_counts",
    "ShardFailure",
    "FALLBACK_CHAIN",
    "FAULT_POLICIES",
]

#: the degradation order: each backend hands unfinished shards to the
#: next; the final ``serial`` step runs in-process and cannot fail.
FALLBACK_CHAIN: tuple[str, ...] = ("process", "thread", "serial")

#: what to do when a shard exhausts its retries (or the pool breaks):
#: ``fallback`` degrades down :data:`FALLBACK_CHAIN`, ``raise`` aborts
#: the run with :class:`ShardFailure`.
FAULT_POLICIES: tuple[str, ...] = ("fallback", "raise")


class ShardFailure(RuntimeError):
    """A shard could not be completed under ``on_fault="raise"``."""


class _BackendBroken(RuntimeError):
    """Internal: the current backend cannot finish its pending shards."""

    def __init__(
        self, backend: str, reason: str, cause: BaseException | None
    ) -> None:
        super().__init__(f"{backend} backend failed: {reason}")
        self.backend = backend
        self.reason = reason
        self.cause = cause


def component_f2_counts(
    component: np.ndarray, n: int, sigma: int, period: int
) -> dict[tuple[int, int], int]:
    """Count-only decode of one AND component into its ``F2`` table.

    Equals ``witnesses_to_f2_table(set_bit_positions(component), ...)``
    but never materialises sorted witness positions: the component's
    bits are expanded densely once, and one ``bincount`` over the
    ``(symbol, position)`` class keys yields every cardinality.
    """
    if period < 1 or period >= n:
        return {}
    # The shifted operand has no bits >= sigma*(n - period), so neither
    # does the AND; expanding only the valid prefix is pure economy.
    valid_bits = sigma * (n - period)
    w = np.flatnonzero(unpack_bits(component, valid_bits))
    if w.size == 0:
        return {}
    symbols = w % sigma
    earlier = (n - period - 1) - w // sigma
    positions = earlier % period
    counts = np.bincount(symbols * period + positions, minlength=sigma * period)
    return {
        (int(key // period), int(key % period)): int(counts[key])
        for key in np.flatnonzero(counts)
    }


def _mine_shard(
    words: np.ndarray,
    n: int,
    sigma: int,
    lo: int,
    hi: int,
    count_only: bool,
    shard_index: int = 0,
    attempt: int = 0,
    faults: FaultPlan | None = None,
) -> dict[int, object]:
    """Evaluate one shard's components over an already-attached array."""
    fire(faults, WORKER_CRASH, shard_index, attempt)
    fire(faults, WORKER_EXIT, shard_index, attempt)
    hang(faults, shard_index, attempt)
    out: dict[int, object] = {}
    for p in range(lo, hi + 1):
        if count_only:
            component = word_and(words, shift_right(words, sigma * p))
            out[p] = component_f2_counts(component, n, sigma, p)
        else:
            out[p] = shifted_self_and(words, sigma * p)
    return poison(faults, shard_index, attempt, out, lo, hi)


def _mine_shard_shm(
    shm_name: str,
    n_words: int,
    n: int,
    sigma: int,
    lo: int,
    hi: int,
    count_only: bool,
    shard_index: int = 0,
    attempt: int = 0,
    faults: FaultPlan | None = None,
) -> dict[int, object]:
    """Process-pool entry point: attach, mine the shard, detach."""
    fire(faults, SHM_ATTACH, shard_index, attempt)
    words, shm = attach_words(shm_name, n_words)
    try:
        return _mine_shard(
            words, n, sigma, lo, hi, count_only, shard_index, attempt, faults
        )
    except BaseException as error:
        # The in-flight traceback pins the view through the raising
        # frames' locals; close() would then fail with BufferError,
        # masking the shard's real error (injected faults included)
        # and leaking the attachment.
        traceback.clear_frames(error.__traceback__)
        raise
    finally:
        del words
        shm.close()


def _shard_result_ok(value: object, shard: Shard, count_only: bool) -> bool:
    """Integrity check: exact period-key cover plus plausible values.

    Catches poisoned/truncated shard results before they merge into
    the table; a failed check is treated like any other shard fault
    (retry, then fallback).
    """
    if not isinstance(value, dict) or set(value) != set(shard.periods()):
        return False
    expect: type = dict if count_only else np.ndarray
    return all(isinstance(v, expect) for v in value.values())


class ParallelWitnessEngine:
    """Sharded evaluator of all exact components of one packed series.

    Parameters
    ----------
    workers:
        Worker cap (default: CPU count).
    mode:
        ``"auto"`` (default), ``"process"``, or ``"thread"`` — forwarded
        to the shard planner; ``"auto"`` picks processes only when the
        input is large enough to amortise the pool.
    shard_timeout:
        Seconds the parent waits for any one shard before treating it
        as hung and re-dispatching (``None``: wait forever).
    max_retries:
        Re-dispatches granted to a failing shard per backend before
        the backend is declared broken.
    retry_backoff:
        Base of the exponential backoff between re-dispatches
        (``retry_backoff * 2**attempt`` seconds; ``0`` disables).
    on_fault:
        ``"fallback"`` (default) degrades down
        ``process -> thread -> serial`` and always completes;
        ``"raise"`` aborts with :class:`ShardFailure` instead.
    fault_plan:
        Deterministic :class:`repro.faults.FaultPlan` injected into
        workers (testing/chaos drills; ``None`` in production).
    """

    def __init__(
        self,
        workers: int | None = None,
        mode: str = "auto",
        *,
        shard_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.01,
        on_fault: str = "fallback",
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if mode not in ("auto", "process", "thread"):
            raise ValueError(f"unknown mode {mode!r}")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive (or None)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if on_fault not in FAULT_POLICIES:
            raise ValueError(
                f"unknown on_fault policy {on_fault!r} "
                f"(choose from {FAULT_POLICIES})"
            )
        self._workers = workers
        self._mode = mode
        self._shard_timeout = shard_timeout
        self._max_retries = max_retries
        self._retry_backoff = retry_backoff
        self._on_fault = on_fault
        self._fault_plan = fault_plan
        self._events: list[FaultEvent | FallbackEvent] = []

    @property
    def events(self) -> tuple[FaultEvent | FallbackEvent, ...]:
        """Fault/fallback records of the most recent run (oldest first)."""
        return tuple(self._events)

    def witness_sets(
        self, words: np.ndarray, n: int, sigma: int, max_period: int
    ) -> dict[int, np.ndarray]:
        """Witness powers ``W_p`` for every ``p`` in ``1..max_period``."""
        return self._run(words, n, sigma, max_period, count_only=False)

    def f2_tables(
        self, words: np.ndarray, n: int, sigma: int, max_period: int
    ) -> dict[int, dict[tuple[int, int], int]]:
        """Count-only fast path: the ``F2`` table of every period."""
        return self._run(words, n, sigma, max_period, count_only=True)

    def plan(self, max_period: int, total_bits: int) -> ShardPlan:
        """The shard plan this engine would execute (exposed for tests)."""
        return plan_shards(
            max_period,
            total_bits=total_bits,
            workers=self._workers,
            mode=self._mode,
        )

    # -- execution -------------------------------------------------------------

    def _run(
        self,
        words: np.ndarray,
        n: int,
        sigma: int,
        max_period: int,
        count_only: bool,
    ) -> dict[int, object]:
        words = np.ascontiguousarray(words, dtype=np.uint64)
        plan = self.plan(max_period, total_bits=words.size * 64)
        self._events = []
        if not plan.shards:
            return {}
        if len(plan.shards) == 1:
            # One shard = the serial last resort already; no pool to
            # fail, no faults injected.
            only = plan.shards[0]
            return _mine_shard(words, n, sigma, only.lo, only.hi, count_only)
        pending = dict(enumerate(plan.shards))
        done: dict[int, dict[int, object]] = {}
        chain = FALLBACK_CHAIN if plan.use_processes else FALLBACK_CHAIN[1:]
        for position, backend in enumerate(chain):
            try:
                self._run_backend(
                    backend, plan, words, n, sigma, count_only, pending, done
                )
            except _BackendBroken as broken:
                if self._on_fault == "raise":
                    raise ShardFailure(str(broken)) from broken.cause
                # The serial tail of the chain cannot break, so there
                # is always a next backend here.
                fallback = FallbackEvent(
                    from_backend=backend,
                    to_backend=chain[position + 1],
                    reason=broken.reason,
                    redispatched=len(pending),
                )
                self._events.append(fallback)
                FAULT_LOGGER.warning("%s", fallback)
                continue
            break
        merged: dict[int, object] = {}
        for index in sorted(done):
            merged.update(done[index])
        return merged

    def _run_backend(
        self,
        backend: str,
        plan: ShardPlan,
        words: np.ndarray,
        n: int,
        sigma: int,
        count_only: bool,
        pending: dict[int, Shard],
        done: dict[int, dict[int, object]],
    ) -> None:
        if backend == "serial":
            for index in sorted(pending):
                shard = pending[index]
                done[index] = _mine_shard(
                    words, n, sigma, shard.lo, shard.hi, count_only
                )
                del pending[index]
        elif backend == "process":
            self._run_process(plan, words, n, sigma, count_only, pending, done)
        else:
            self._run_thread(plan, words, n, sigma, count_only, pending, done)

    def _run_process(
        self,
        plan: ShardPlan,
        words: np.ndarray,
        n: int,
        sigma: int,
        count_only: bool,
        pending: dict[int, Shard],
        done: dict[int, dict[int, object]],
    ) -> None:
        try:
            shared = SharedWords(words)
        except OSError as error:
            raise _BackendBroken(
                "process", f"shared-memory export failed: {error!r}", error
            ) from error
        try:
            try:
                pool = ProcessPoolExecutor(max_workers=plan.workers)
            except OSError as error:
                raise _BackendBroken(
                    "process", f"pool spawn failed: {error!r}", error
                ) from error
            try:
                faults = self._fault_plan

                def submit(
                    index: int, shard: Shard, attempt: int
                ) -> "Future[dict[int, object]]":
                    return pool.submit(
                        _mine_shard_shm,
                        shared.name,
                        shared.n_words,
                        n,
                        sigma,
                        shard.lo,
                        shard.hi,
                        count_only,
                        index,
                        attempt,
                        faults,
                    )

                self._drain("process", submit, count_only, pending, done)
            finally:
                # wait=False: a hung (or abandoned timed-out) worker
                # must not stall completed results; cancel_futures
                # drops anything still queued.
                pool.shutdown(wait=False, cancel_futures=True)
        finally:
            shared.close()

    def _run_thread(
        self,
        plan: ShardPlan,
        words: np.ndarray,
        n: int,
        sigma: int,
        count_only: bool,
        pending: dict[int, Shard],
        done: dict[int, dict[int, object]],
    ) -> None:
        pool = ThreadPoolExecutor(max_workers=plan.workers)
        try:
            faults = self._fault_plan

            def submit(
                index: int, shard: Shard, attempt: int
            ) -> "Future[dict[int, object]]":
                return pool.submit(
                    _mine_shard,
                    words,
                    n,
                    sigma,
                    shard.lo,
                    shard.hi,
                    count_only,
                    index,
                    attempt,
                    faults,
                )

            self._drain("thread", submit, count_only, pending, done)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _drain(
        self,
        backend: str,
        submit: Callable[[int, Shard, int], "Future[dict[int, object]]"],
        count_only: bool,
        pending: dict[int, Shard],
        done: dict[int, dict[int, object]],
    ) -> None:
        """Dispatch every pending shard; retry faults; harvest results.

        Mutates ``pending``/``done`` in place so a :class:`_BackendBroken`
        escape leaves exactly the unfinished shards for the next
        backend — completed work is never recomputed.
        """
        attempts = dict.fromkeys(pending, 0)
        futures: dict[int, "Future[dict[int, object]]"] = {}
        try:
            for index in sorted(pending):
                futures[index] = submit(index, pending[index], 0)
        except BrokenExecutor as error:
            raise _BackendBroken(
                backend, f"executor broke on submit: {error!r}", error
            ) from error
        while futures:
            index = min(futures)
            future = futures.pop(index)
            shard = pending[index]
            try:
                value = future.result(timeout=self._shard_timeout)
                if not _shard_result_ok(value, shard, count_only):
                    raise PoisonedShard(index, shard.lo, shard.hi)
            except Exception as error:
                future.cancel()
                self._handle_fault(
                    backend,
                    submit,
                    count_only,
                    error,
                    index,
                    shard,
                    attempts,
                    futures,
                    pending,
                    done,
                )
            else:
                done[index] = value
                del pending[index]

    def _handle_fault(
        self,
        backend: str,
        submit: Callable[[int, Shard, int], "Future[dict[int, object]]"],
        count_only: bool,
        error: Exception,
        index: int,
        shard: Shard,
        attempts: dict[int, int],
        futures: dict[int, "Future[dict[int, object]]"],
        pending: dict[int, Shard],
        done: dict[int, dict[int, object]],
    ) -> None:
        attempt = attempts[index]
        site = classify_fault(error)
        broken = isinstance(error, BrokenExecutor)
        exhausted = attempt >= self._max_retries
        if broken or exhausted:
            action = "fallback" if self._on_fault == "fallback" else "raise"
        else:
            action = "retry"
        event = FaultEvent(
            site=site,
            shard=index,
            lo=shard.lo,
            hi=shard.hi,
            attempt=attempt,
            backend=backend,
            action=action,
            error=repr(error),
        )
        self._events.append(event)
        FAULT_LOGGER.warning("%s", event)
        if broken or exhausted:
            self._harvest(futures, count_only, pending, done)
            reason = (
                f"shard {index} ({site}) broke the executor"
                if broken
                else f"shard {index} ({site}) exhausted "
                f"{self._max_retries} retries"
            )
            raise _BackendBroken(backend, reason, error) from error
        if self._retry_backoff > 0:
            time.sleep(self._retry_backoff * (2.0 ** attempt))
        attempts[index] = attempt + 1
        try:
            futures[index] = submit(index, shard, attempts[index])
        except BrokenExecutor as submit_error:
            self._harvest(futures, count_only, pending, done)
            raise _BackendBroken(
                backend,
                f"executor broke on re-dispatch: {submit_error!r}",
                submit_error,
            ) from submit_error

    def _harvest(
        self,
        futures: dict[int, "Future[dict[int, object]]"],
        count_only: bool,
        pending: dict[int, Shard],
        done: dict[int, dict[int, object]],
    ) -> None:
        """Salvage already-finished shards before abandoning a backend."""
        for index, future in list(futures.items()):
            if not future.done():
                future.cancel()
                continue
            try:
                value = future.result(timeout=0)
            except Exception:
                continue  # its fault will be retried on the next backend
            if _shard_result_ok(value, pending[index], count_only):
                done[index] = value
                del pending[index]
        futures.clear()

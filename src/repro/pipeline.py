"""End-to-end pipeline: numeric values -> discretize -> mine -> report.

The front door a downstream user actually wants: hand in raw numeric
measurements, get back the informative periods (harmonics collapsed,
optionally significance-filtered), the patterns, and the anomalous
segments — the full arc of the paper applied in one call.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from .analysis.anomalies import SegmentAnomaly, find_anomalies
from .analysis.harmonics import HarmonicFamily, base_periods
from .analysis.significance import significant_periods
from .core.patterns import PeriodicPattern
from .core.results import MiningResult, mine
from .core.sequence import SymbolSequence
from .data.discretize import Discretizer, QuantileDiscretizer

__all__ = ["PipelineReport", "PeriodicityPipeline"]


@dataclass(frozen=True, slots=True)
class PipelineReport:
    """Everything one pipeline run produced."""

    series: SymbolSequence
    result: MiningResult
    families: tuple[HarmonicFamily, ...]
    significant: tuple[int, ...]
    anomalies: tuple[SegmentAnomaly, ...]

    @property
    def base_periods(self) -> tuple[int, ...]:
        """The informative base periods, strongest first."""
        return tuple(f.base for f in self.families)

    def patterns_for_base(self, index: int = 0) -> tuple[PeriodicPattern, ...]:
        """Patterns of the ``index``-th base period."""
        if not self.families:
            return ()
        return self.result.patterns_for(self.families[index].base)

    def render(self) -> str:
        """Human-readable pipeline summary."""
        lines = [
            f"n={self.series.length}, sigma={self.series.sigma}, "
            f"psi={self.result.psi:.2f}"
        ]
        if not self.families:
            lines.append("no periodic structure found")
            return "\n".join(lines)
        for family in self.families[:5]:
            marker = "*" if family.base in self.significant else " "
            lines.append(
                f" {marker} base period {family.base:>5}  "
                f"confidence {family.confidence:.2f}  "
                f"harmonics {list(family.harmonics)[:4]}"
            )
        top = sorted(self.patterns_for_base(), key=lambda p: -p.support)[:5]
        for pattern in top:
            lines.append(
                f"    {pattern.to_string(self.series.alphabet)}  "
                f"support {pattern.support:.2f}"
            )
        if self.anomalies:
            worst = self.anomalies[0]
            lines.append(
                f"  {len(self.anomalies)} anomalous segment(s); worst at "
                f"positions {worst.start}-{worst.end} (score {worst.score:.2f})"
            )
        return "\n".join(lines)


class PeriodicityPipeline:
    """Configure once, run on any numeric series.

    Parameters
    ----------
    discretizer:
        Numeric-to-symbol discretizer (default: five quantile levels).
    psi:
        Periodicity threshold.
    max_period:
        Period search cap.
    algorithm:
        ``"spectral"`` or ``"convolution"``.
    max_arity:
        Pattern depth cap (pattern mining is restricted to the base
        periods, so this guards the Cartesian blow-up).
    significance_alpha:
        Alpha for the binomial period filter (``None`` disables).
    anomaly_threshold:
        Violation score at which a segment is flagged (``None``
        disables anomaly detection).
    engine:
        Exact-engine choice when ``algorithm="convolution"``; with
        ``"parallel"`` the scouting stage runs the sharded count-only
        fast path (:mod:`repro.parallel`).
    workers:
        Worker cap for ``engine="parallel"``.
    shard_timeout:
        ``engine="parallel"``: per-shard timeout in seconds before a
        hung shard is re-dispatched (``None``: no limit).
    max_retries:
        ``engine="parallel"``: re-dispatches granted to a failing
        shard per backend.
    on_fault:
        ``engine="parallel"``: ``"fallback"`` (default) degrades
        ``process -> thread -> serial`` and always completes;
        ``"raise"`` aborts on an unrecoverable shard.
    """

    def __init__(
        self,
        discretizer: Discretizer | None = None,
        psi: float = 0.5,
        max_period: int | None = None,
        algorithm: str = "spectral",
        max_arity: int | None = 6,
        significance_alpha: float | None = 1e-3,
        anomaly_threshold: float | None = 0.6,
        engine: str = "bitand",
        workers: int | None = None,
        shard_timeout: float | None = None,
        max_retries: int = 2,
        on_fault: str = "fallback",
    ) -> None:
        if not 0 < psi <= 1:
            raise ValueError("psi must lie in (0, 1]")
        self._discretizer = QuantileDiscretizer() if discretizer is None else discretizer
        self._psi = psi
        self._max_period = max_period
        self._algorithm = algorithm
        self._max_arity = max_arity
        self._alpha = significance_alpha
        self._anomaly_threshold = anomaly_threshold
        self._engine = engine
        self._workers = workers
        self._shard_timeout = shard_timeout
        self._max_retries = max_retries
        self._on_fault = on_fault

    def run_values(
        self, values: Sequence[float] | np.ndarray
    ) -> PipelineReport:
        """Discretize a numeric series and run the full pipeline."""
        return self.run(self._discretizer.discretize(values))

    def run(self, series: SymbolSequence) -> PipelineReport:
        """Run the pipeline on an already-symbolic series."""
        # Stage 1: mine the evidence table; defer pattern mining until
        # the base periods are known (Definition 3 explodes on their
        # multiples).  With the parallel convolution engine this stage
        # runs the sharded count-only fast path.
        scouting = mine(
            series,
            psi=self._psi,
            algorithm=self._algorithm,
            max_period=self._max_period,
            periods=[],
            engine=self._engine,
            workers=self._workers,
            shard_timeout=self._shard_timeout,
            max_retries=self._max_retries,
            on_fault=self._on_fault,
        )
        families = tuple(base_periods(scouting.table, self._psi))
        bases = [f.base for f in families]
        # Stage 2 re-derives patterns from the stage-1 evidence table —
        # the series is packed and mined exactly once per run.
        result = mine(
            series,
            psi=self._psi,
            algorithm=self._algorithm,
            max_period=self._max_period,
            periods=bases[:5],
            max_arity=self._max_arity,
            table=scouting.table,
        )
        significant: tuple[int, ...] = ()
        if self._alpha is not None:
            significant = tuple(
                significant_periods(
                    series, result.table, self._psi, alpha=self._alpha
                )
            )
        anomalies: tuple[SegmentAnomaly, ...] = ()
        if self._anomaly_threshold is not None and families:
            base = families[0].base
            patterns = [
                p for p in result.patterns_for(base) if p.support >= self._psi
            ]
            if patterns:
                anomalies = tuple(
                    find_anomalies(
                        series, patterns, threshold=self._anomaly_threshold
                    )
                )
        return PipelineReport(
            series=series,
            result=result,
            families=families,
            significant=significant,
            anomalies=anomalies,
        )

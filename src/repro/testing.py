"""Public test helpers for downstream users of the library.

Code that builds on ``repro`` will want to test its own periodicity
logic; these are the helpers this repository's own suite runs on,
exported as a stable surface (the ``numpy.testing`` pattern):

* :func:`random_series` — reproducible random symbol series;
* :func:`oracle_table` — the brute-force evidence table (slow, exact);
* :func:`assert_tables_equal` — rich diff on evidence mismatch;
* :func:`assert_miner_correct` — one-call conformance check for any
  object with a ``periodicity_table(series)`` method.
"""

from __future__ import annotations

import numpy as np

from .baselines.brute_force import brute_force_table
from .core.alphabet import Alphabet
from .core.periodicity import PeriodicityTable
from .core.sequence import SymbolSequence

__all__ = [
    "random_series",
    "oracle_table",
    "assert_tables_equal",
    "assert_miner_correct",
]


def random_series(
    n: int,
    sigma: int,
    seed: int | np.random.Generator = 0,
) -> SymbolSequence:
    """A reproducible i.i.d. uniform series of ``n`` symbols."""
    if n < 0:
        raise ValueError("n must be non-negative")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    codes = rng.integers(0, sigma, size=n).astype(np.int64)
    return SymbolSequence.from_codes(codes, Alphabet.of_size(sigma))


def oracle_table(
    series: SymbolSequence, max_period: int | None = None
) -> PeriodicityTable:
    """The ground-truth evidence table by exhaustive comparison."""
    return brute_force_table(series, max_period=max_period)


def assert_tables_equal(
    actual: PeriodicityTable, expected: PeriodicityTable
) -> None:
    """Assert two evidence tables are identical, with a useful diff."""
    if actual == expected:
        return
    problems: list[str] = []
    if actual.n != expected.n:
        problems.append(f"n: {actual.n} != {expected.n}")
    if actual.alphabet != expected.alphabet:
        problems.append("alphabets differ")
    periods = sorted(set(actual.periods) | set(expected.periods))
    for p in periods:
        got = actual.counts_for(p)
        want = expected.counts_for(p)
        if got != want:
            missing = {k: v for k, v in want.items() if got.get(k) != v}
            extra = {k: v for k, v in got.items() if want.get(k) != v}
            problems.append(
                f"period {p}: expected-but-wrong {missing}, got-but-wrong {extra}"
            )
        if len(problems) > 6:
            problems.append("... (truncated)")
            break
    raise AssertionError("evidence tables differ:\n  " + "\n  ".join(problems))


def assert_miner_correct(
    miner,
    trials: int = 10,
    max_length: int = 60,
    max_sigma: int = 5,
    seed: int = 0,
) -> None:
    """Conformance-check anything exposing ``periodicity_table(series)``.

    Runs the miner against the brute-force oracle on ``trials``
    reproducible random series; raises on the first mismatch.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    rng = np.random.default_rng(seed)
    for trial in range(trials):
        n = int(rng.integers(2, max_length + 1))
        sigma = int(rng.integers(1, max_sigma + 1))
        series = random_series(n, sigma, rng)
        try:
            assert_tables_equal(miner.periodicity_table(series), oracle_table(series))
        except AssertionError as error:
            raise AssertionError(
                f"miner diverged from the oracle on trial {trial} "
                f"(n={n}, sigma={sigma}): {error}"
            ) from None

"""Apriori frequent-itemset and association-rule mining.

The substrate the cyclic-rules miner runs once per time unit — the
classic algorithm of Agrawal & Srikant (VLDB 1994), which the EDBT paper
cites for its anti-monotonicity footnote.  Self-contained and small:
transactions are frozensets of hashable items.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from itertools import combinations
from typing import Hashable

__all__ = ["Rule", "frequent_itemsets", "association_rules"]

Itemset = frozenset


@dataclass(frozen=True, slots=True)
class Rule:
    """An association rule ``antecedent -> consequent``."""

    antecedent: Itemset
    consequent: Itemset
    support: float
    confidence: float

    @property
    def items(self) -> Itemset:
        """The union of both sides."""
        return self.antecedent | self.consequent

    def render(self) -> str:
        """Human-readable ``{a, b} -> {c}`` form with metrics."""
        lhs = "{" + ", ".join(map(str, sorted(self.antecedent, key=str))) + "}"
        rhs = "{" + ", ".join(map(str, sorted(self.consequent, key=str))) + "}"
        return f"{lhs} -> {rhs}  (sup {self.support:.2f}, conf {self.confidence:.2f})"


def frequent_itemsets(
    transactions: Sequence[Iterable[Hashable]],
    min_support: float,
    max_size: int | None = None,
) -> dict[Itemset, int]:
    """All itemsets with support ``>= min_support`` and their counts.

    Level-wise Apriori: candidates of size k+1 join frequent k-itemsets
    sharing a (k-1)-prefix and are pruned unless every k-subset is
    frequent, then counted in one pass over the transactions.
    """
    if not 0 < min_support <= 1:
        raise ValueError("min_support must be in (0, 1]")
    baskets = [frozenset(t) for t in transactions]
    if not baskets:
        raise ValueError("at least one transaction is required")
    threshold = min_support * len(baskets)

    counts: dict[Itemset, int] = {}
    singles: dict[Hashable, int] = {}
    for basket in baskets:
        for item in basket:
            singles[item] = singles.get(item, 0) + 1
    frequent: dict[Itemset, int] = {
        frozenset([item]): count
        for item, count in singles.items()
        if count >= threshold
    }
    counts.update(frequent)

    size = 1
    current = sorted(frequent, key=lambda s: tuple(sorted(map(str, s))))
    while current and (max_size is None or size < max_size):
        # Join step: merge sets sharing all but one item.
        candidates: set[Itemset] = set()
        frontier_set = set(current)
        for a, b in combinations(current, 2):
            union = a | b
            if len(union) == size + 1:
                if all(
                    frozenset(subset) in frontier_set
                    for subset in combinations(union, size)
                ):
                    candidates.add(union)
        if not candidates:
            break
        tally: dict[Itemset, int] = {c: 0 for c in candidates}
        for basket in baskets:
            if len(basket) <= size:
                continue
            for candidate in candidates:
                if candidate <= basket:
                    tally[candidate] += 1
        survivors = {c: n for c, n in tally.items() if n >= threshold}
        counts.update(survivors)
        current = sorted(survivors, key=lambda s: tuple(sorted(map(str, s))))
        size += 1
    return counts


def association_rules(
    itemset_counts: dict[Itemset, int],
    transaction_count: int,
    min_confidence: float,
) -> list[Rule]:
    """Rules from frequent itemsets with confidence ``>= min_confidence``.

    Every non-empty proper subset of each frequent itemset is tried as
    the antecedent; confidence is ``count(itemset) / count(antecedent)``.
    Sorted by (confidence, support) descending.
    """
    if not 0 < min_confidence <= 1:
        raise ValueError("min_confidence must be in (0, 1]")
    if transaction_count < 1:
        raise ValueError("transaction_count must be >= 1")
    rules: list[Rule] = []
    for itemset, count in itemset_counts.items():
        if len(itemset) < 2:
            continue
        support = count / transaction_count
        for size in range(1, len(itemset)):
            for antecedent_items in combinations(sorted(itemset, key=str), size):
                antecedent = frozenset(antecedent_items)
                antecedent_count = itemset_counts.get(antecedent)
                if not antecedent_count:
                    continue
                confidence = count / antecedent_count
                if confidence >= min_confidence:
                    rules.append(
                        Rule(
                            antecedent=antecedent,
                            consequent=itemset - antecedent,
                            support=support,
                            confidence=confidence,
                        )
                    )
    rules.sort(key=lambda r: (-r.confidence, -r.support, str(sorted(map(str, r.items)))))
    return rules

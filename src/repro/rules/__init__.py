"""Cyclic association rules: Apriori substrate, cycle detection, data.

The periodic-association-rules strand of related work ([17] in the
paper): rules over per-time-unit transaction bags that hold cyclically.
"""

from .apriori import Rule, association_rules, frequent_itemsets
from .cyclic import Cycle, CyclicRule, CyclicRuleMiner
from .market import MarketBasketSimulator, PlantedCycle

__all__ = [
    "Rule",
    "association_rules",
    "frequent_itemsets",
    "Cycle",
    "CyclicRule",
    "CyclicRuleMiner",
    "MarketBasketSimulator",
    "PlantedCycle",
]

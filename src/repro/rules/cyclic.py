"""Cyclic association rules (Özden, Ramaswamy, Silberschatz [17], ICDE 1998).

One of the periodicity-mining strands the EDBT paper's introduction
builds on.  The data is a *sequence of time units*, each holding a bag
of market-basket transactions; a rule ``X -> Y`` has a **cycle**
``(p, l)`` when it holds (meets the per-unit support and confidence
thresholds) in *every* unit congruent to ``l`` modulo ``p``.

Implemented as the published *sequential* algorithm: mine the rules of
each unit with Apriori, form each rule's binary validity sequence, and
detect its cycles with the cycle-elimination sieve (an observed miss of
a rule at unit ``t`` eliminates every ``(p, t mod p)`` at once).  Cycles
that merely repeat a shorter detected cycle (``p' | p`` and matching
offset) are suppressed as non-minimal, per the paper's "large cycles
are redundant" observation.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass

from .apriori import Rule, association_rules, frequent_itemsets

__all__ = ["Cycle", "CyclicRule", "CyclicRuleMiner"]


@dataclass(frozen=True, slots=True, order=True)
class Cycle:
    """A cycle ``(period, offset)``: holds in every unit ``= offset (mod period)``."""

    period: int
    offset: int


@dataclass(frozen=True, slots=True)
class CyclicRule:
    """A rule together with its detected (minimal) cycles."""

    antecedent: frozenset
    consequent: frozenset
    cycles: tuple[Cycle, ...]
    held_units: tuple[int, ...]

    def render(self) -> str:
        lhs = "{" + ", ".join(map(str, sorted(self.antecedent, key=str))) + "}"
        rhs = "{" + ", ".join(map(str, sorted(self.consequent, key=str))) + "}"
        cycles = ", ".join(f"({c.period},{c.offset})" for c in self.cycles)
        return f"{lhs} -> {rhs}  cycles: {cycles}"


class CyclicRuleMiner:
    """Detect rules that hold cyclically across time units.

    Parameters
    ----------
    min_support / min_confidence:
        Per-unit thresholds a rule must meet to "hold" in that unit.
    max_period:
        Largest cycle period examined (the published algorithm's
        ``l_max``); must be at most half the number of units so every
        reported cycle is witnessed at least twice.
    minimal_only:
        Suppress cycles implied by a shorter detected cycle of the same
        rule (default, as in the paper).
    """

    def __init__(
        self,
        min_support: float = 0.3,
        min_confidence: float = 0.6,
        max_period: int | None = None,
        minimal_only: bool = True,
    ):
        if not 0 < min_support <= 1:
            raise ValueError("min_support must be in (0, 1]")
        if not 0 < min_confidence <= 1:
            raise ValueError("min_confidence must be in (0, 1]")
        self._min_support = min_support
        self._min_confidence = min_confidence
        self._max_period = max_period
        self._minimal_only = minimal_only

    # -- per-unit rule mining -------------------------------------------------------

    def rules_per_unit(
        self, units: Sequence[Sequence[Iterable[Hashable]]]
    ) -> list[list[Rule]]:
        """Apriori rules of every time unit."""
        if not units:
            raise ValueError("at least one time unit is required")
        out: list[list[Rule]] = []
        for transactions in units:
            transactions = list(transactions)
            if not transactions:
                out.append([])
                continue
            itemsets = frequent_itemsets(transactions, self._min_support)
            out.append(
                association_rules(itemsets, len(transactions), self._min_confidence)
            )
        return out

    # -- cycle detection ---------------------------------------------------------------

    def detect_cycles(
        self, holds: Sequence[bool], max_period: int | None = None
    ) -> list[Cycle]:
        """Cycles of one binary validity sequence.

        Cycle-elimination sieve: every unit where the rule does *not*
        hold kills all ``(p, t mod p)`` in one shot; the survivors whose
        residue class is non-empty are the cycles.
        """
        total = len(holds)
        if total == 0:
            raise ValueError("the validity sequence must be non-empty")
        limit = max_period if max_period is not None else self._max_period
        if limit is None:
            limit = total // 2
        limit = min(limit, total // 2)
        eliminated: set[tuple[int, int]] = set()
        for t, held in enumerate(holds):
            if not held:
                for p in range(1, limit + 1):
                    eliminated.add((p, t % p))
        cycles = [
            Cycle(p, l)
            for p in range(1, limit + 1)
            for l in range(p)
            if (p, l) not in eliminated and l < total
        ]
        if self._minimal_only:
            cycles = self._minimal(cycles)
        return sorted(cycles)

    @staticmethod
    def _minimal(cycles: list[Cycle]) -> list[Cycle]:
        detected = {(c.period, c.offset) for c in cycles}
        out = []
        for cycle in cycles:
            implied = any(
                cycle.period % p == 0
                and p != cycle.period
                and (p, cycle.offset % p) in detected
                for p in range(1, cycle.period)
            )
            if not implied:
                out.append(cycle)
        return out

    # -- front door ----------------------------------------------------------------------

    def mine(
        self, units: Sequence[Sequence[Iterable[Hashable]]]
    ) -> list[CyclicRule]:
        """All rules with at least one cycle, strongest cycles first."""
        per_unit = self.rules_per_unit(units)
        total = len(per_unit)
        validity: dict[tuple[frozenset, frozenset], list[bool]] = {}
        for t, rules in enumerate(per_unit):
            for rule in rules:
                key = (rule.antecedent, rule.consequent)
                validity.setdefault(key, [False] * total)[t] = True
        out: list[CyclicRule] = []
        for (antecedent, consequent), holds in validity.items():
            cycles = self.detect_cycles(holds)
            if cycles:
                out.append(
                    CyclicRule(
                        antecedent=antecedent,
                        consequent=consequent,
                        cycles=tuple(cycles),
                        held_units=tuple(t for t, h in enumerate(holds) if h),
                    )
                )
        out.sort(
            key=lambda r: (
                min(c.period for c in r.cycles),
                -len(r.held_units),
                str(sorted(map(str, r.antecedent | r.consequent))),
            )
        )
        return out

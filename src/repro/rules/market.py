"""Synthetic market-basket data with planted cyclic rules.

Stand-in for the retail transaction detail behind the paper's Wal-Mart
aggregate counts: a sequence of time units (e.g. hours), each holding a
bag of transactions over a small item catalogue, with association rules
that hold only in a cyclic subset of the units (e.g. "coffee implies
pastry, but only in morning hours").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PlantedCycle", "MarketBasketSimulator"]


@dataclass(frozen=True, slots=True)
class PlantedCycle:
    """A rule planted to hold cyclically.

    In units congruent to ``offset`` modulo ``period``, transactions
    containing every item of ``antecedent`` also contain ``consequent``
    with probability ``strength``; in other units the items co-occur
    only by the background rate.
    """

    antecedent: tuple[str, ...]
    consequent: str
    period: int
    offset: int
    strength: float = 0.95

    def __post_init__(self) -> None:
        if not self.antecedent:
            raise ValueError("the antecedent needs at least one item")
        if self.consequent in self.antecedent:
            raise ValueError("the consequent must not repeat the antecedent")
        if self.period < 1:
            raise ValueError("period must be >= 1")
        if not 0 <= self.offset < self.period:
            raise ValueError("offset must lie in [0, period)")
        if not 0.0 < self.strength <= 1.0:
            raise ValueError("strength must lie in (0, 1]")


@dataclass(frozen=True, slots=True)
class MarketBasketSimulator:
    """Generate per-unit transaction bags with planted cyclic rules.

    Parameters
    ----------
    units:
        Number of time units.
    transactions_per_unit:
        Transactions in each unit.
    catalogue:
        The item names.
    base_rate:
        Probability an arbitrary item enters an arbitrary transaction.
    anchor_rate:
        Probability the planted antecedent items enter a transaction
        (kept well above ``base_rate`` so per-unit support is met).
    planted:
        The cyclic rules to embed.
    """

    units: int = 48
    transactions_per_unit: int = 120
    catalogue: tuple[str, ...] = (
        "coffee", "pastry", "milk", "bread", "eggs", "soda", "chips", "beer",
    )
    base_rate: float = 0.12
    anchor_rate: float = 0.45
    planted: tuple[PlantedCycle, ...] = (
        PlantedCycle(("coffee",), "pastry", period=4, offset=1),
    )

    def __post_init__(self) -> None:
        if self.units < 1:
            raise ValueError("units must be >= 1")
        if self.transactions_per_unit < 1:
            raise ValueError("transactions_per_unit must be >= 1")
        if not 0.0 < self.base_rate < 1.0 or not 0.0 < self.anchor_rate <= 1.0:
            raise ValueError("rates must lie in (0, 1)")
        names = set(self.catalogue)
        for plant in self.planted:
            missing = (set(plant.antecedent) | {plant.consequent}) - names
            if missing:
                raise ValueError(f"planted rule uses unknown items: {missing}")

    def generate(
        self, rng: np.random.Generator | None = None
    ) -> list[list[frozenset[str]]]:
        """The unit sequence: ``units`` lists of transaction frozensets."""
        rng = np.random.default_rng() if rng is None else rng
        anchored = {
            item for plant in self.planted for item in plant.antecedent
        }
        out: list[list[frozenset[str]]] = []
        for unit in range(self.units):
            transactions: list[frozenset[str]] = []
            for _ in range(self.transactions_per_unit):
                basket = {
                    item
                    for item in self.catalogue
                    if rng.random() < (
                        self.anchor_rate if item in anchored else self.base_rate
                    )
                }
                for plant in self.planted:
                    if unit % plant.period != plant.offset:
                        continue
                    if set(plant.antecedent) <= basket and rng.random() < plant.strength:
                        basket.add(plant.consequent)
                if basket:
                    transactions.append(frozenset(basket))
            out.append(transactions)
        return out

"""Finite alphabets of time-series symbols.

The paper (Sect. 2.1) models a time series as a string over a finite
alphabet ``Sigma = {a, b, c, ...}`` obtained either by discretizing numeric
feature values into nominal levels or by naming nominal event types.  An
:class:`Alphabet` fixes an *ordering* of the symbols, which the mining
algorithm needs: symbol ``s_k`` is mapped to the binary representation of
``2**k`` (Sect. 3.2), so the integer code ``k`` of each symbol must be
stable for the lifetime of a mining run.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Hashable

__all__ = ["Alphabet", "DEFAULT_SYMBOLS"]

#: Symbols used when an alphabet is built from a requested size only.
DEFAULT_SYMBOLS = "abcdefghijklmnopqrstuvwxyz"


class Alphabet:
    """An ordered, immutable set of symbols with integer codes.

    Parameters
    ----------
    symbols:
        The symbols in code order: ``symbols[k]`` receives code ``k``.
        Symbols may be any hashable values (typically one-character
        strings); duplicates are rejected.

    Examples
    --------
    >>> sigma = Alphabet("abc")
    >>> sigma.code("b")
    1
    >>> sigma.symbol(2)
    'c'
    >>> len(sigma)
    3
    """

    __slots__ = ("_symbols", "_codes")

    def __init__(self, symbols: Iterable[Hashable]) -> None:
        self._symbols: tuple[Hashable, ...] = tuple(symbols)
        if not self._symbols:
            raise ValueError("an alphabet needs at least one symbol")
        self._codes: dict[Hashable, int] = {
            s: k for k, s in enumerate(self._symbols)
        }
        if len(self._codes) != len(self._symbols):
            raise ValueError(f"duplicate symbols in {self._symbols!r}")

    @classmethod
    def of_size(cls, size: int) -> "Alphabet":
        """Build an alphabet of ``size`` single-character symbols.

        Sizes up to 26 use ``a..z``; larger alphabets fall back to
        ``s0, s1, ...`` names.
        """
        if size < 1:
            raise ValueError("alphabet size must be positive")
        if size <= len(DEFAULT_SYMBOLS):
            return cls(DEFAULT_SYMBOLS[:size])
        return cls(f"s{k}" for k in range(size))

    @classmethod
    def from_sequence(cls, values: Iterable[Hashable]) -> "Alphabet":
        """Build an alphabet from the distinct values of ``values``.

        Symbols are ordered by first appearance, which keeps codes
        deterministic for a given input.
        """
        seen: dict[Hashable, None] = {}
        for v in values:
            seen.setdefault(v)
        return cls(seen)

    # -- look-ups ---------------------------------------------------------

    def code(self, symbol: Hashable) -> int:
        """Return the integer code of ``symbol`` (raises ``KeyError``)."""
        return self._codes[symbol]

    def symbol(self, code: int) -> Hashable:
        """Return the symbol with integer code ``code``."""
        return self._symbols[code]

    def encode(self, symbols: Iterable[Hashable]) -> list[int]:
        """Encode an iterable of symbols into integer codes."""
        codes = self._codes
        return [codes[s] for s in symbols]

    def decode(self, codes: Iterable[int]) -> list[Hashable]:
        """Decode integer codes back into symbols."""
        symbols = self._symbols
        return [symbols[c] for c in codes]

    @property
    def symbols(self) -> tuple[Hashable, ...]:
        """The symbols in code order."""
        return self._symbols

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._symbols)

    def __contains__(self, symbol: Hashable) -> bool:
        return symbol in self._codes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return hash(self._symbols)

    def __repr__(self) -> str:
        return f"Alphabet({''.join(map(str, self._symbols))!r})"

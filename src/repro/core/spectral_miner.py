"""Scalable FFT miner producing the same evidence as the exact miner.

The paper's exact convolution carries one witness power of two per
match, which forces big-integer arithmetic.  This miner keeps the
algorithmic idea — *one* batch of FFT correlations answers every shift
at once — but replaces the witness bookkeeping with two cheap stages:

1. **Spectral stage.**  For every symbol ``s_k`` the FFT
   autocorrelation of its 0/1 indicator vector gives the aggregate
   match counts ``M_k(p) = |{j : t_j = t_{j+p} = s_k}|`` for *all*
   shifts ``p`` simultaneously — ``O(sigma n log n)`` total, one pass
   over the data.  Because ``F2(s_k, pi_{p,l}) <= M_k(p)`` and the
   support denominator is at least ``min_pairs(p)``, any ``(k, p)``
   with ``M_k(p) < psi * min_pairs(p)`` can be discarded without ever
   looking at positions.
2. **Residue stage.**  For each surviving ``(k, p)`` the per-position
   split ``F2(s_k, pi_{p,l})`` is a bincount of the match positions by
   ``j mod p`` — one vectorised pass over the occurrences of ``s_k``.

On periodic data almost every ``(k, p)`` dies in stage 1, so the total
work stays near the FFT cost; the adversarial worst case (a constant
series, where every shift of every symbol survives) degrades to the
quadratic residue stage, which ``max_period`` bounds.

With ``psi = None`` (or ``psi`` close to 0) the miner returns the full,
unpruned evidence and is then *exactly* interchangeable with
:class:`repro.core.convolution_miner.ConvolutionMiner` — the test suite
asserts equality of the tables.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..convolution.external import blocked_match_counts
from ..convolution.fft import correlate_fft
from .periodicity import PeriodicityTable
from .projection import projection_pairs
from .sequence import SymbolSequence

__all__ = ["SpectralMiner"]


class SpectralMiner:
    """FFT-based miner, interchangeable with the exact convolution miner.

    Parameters
    ----------
    psi:
        Pruning threshold for the spectral stage.  ``None`` disables
        pruning (full table, exact-miner parity).  When set, the table
        only retains ``(period, symbol)`` cells that could reach support
        ``psi`` — mining with any threshold ``>= psi`` is unaffected.
    max_period:
        Largest period to analyse; defaults to ``n // 2``.
    use_numpy_fft:
        Use numpy's C FFT (default) or the package's from-scratch
        transform.  Identical results, different speed.
    """

    def __init__(
        self,
        psi: float | None = None,
        max_period: int | None = None,
        use_numpy_fft: bool = True,
    ) -> None:
        if psi is not None and not 0 < psi <= 1:
            raise ValueError("psi must be in (0, 1] or None")
        self._psi = psi
        self._max_period = max_period
        self._use_numpy_fft = use_numpy_fft

    # -- stage 1: aggregate match counts ---------------------------------------

    def match_counts(self, series: SymbolSequence) -> np.ndarray:
        """``M_k(p)`` for every symbol and every shift ``0..max_period``.

        Shape ``(sigma, max_period + 1)``; column 0 holds occurrence
        counts.  This is the quantity one batch of FFT autocorrelations
        yields for all shifts at once.
        """
        n = series.length
        max_period = self._resolve_max_period(n)
        counts = np.zeros((series.sigma, max_period + 1), dtype=np.int64)
        if n == 0:
            return counts
        for k in range(series.sigma):
            indicator = series.indicator(k)
            if not indicator.any():
                continue
            corr = correlate_fft(indicator, use_numpy=self._use_numpy_fft)
            upto = min(max_period + 1, corr.size)
            counts[k, :upto] = np.rint(corr[:upto]).astype(np.int64)
        return counts

    def candidate_period_symbols(
        self, series: SymbolSequence, psi: float
    ) -> list[tuple[int, int]]:
        """Periodicity-detection phase only: plausible ``(period, symbol)``.

        Returns the ``(p, k)`` pairs whose aggregate match count admits a
        support ``>= psi`` at some position — everything the spectral
        stage alone can decide, and the natural unit for the Fig. 5
        timing comparison (the periodic-trends baseline likewise only
        nominates periods, not positions).
        """
        if not 0 < psi <= 1:
            raise ValueError("psi must be in (0, 1]")
        n = series.length
        max_period = self._resolve_max_period(n)
        if max_period < 1:
            return []
        counts = self.match_counts(series)
        periods = np.arange(max_period + 1)
        min_pairs = np.maximum(-(-(n - periods + 1) // np.maximum(periods, 1)) - 1, 1)
        eligible = counts >= psi * min_pairs[None, :]
        eligible[:, 0] = False
        ks, ps = np.nonzero(eligible)
        return sorted((int(p), int(k)) for k, p in zip(ks, ps))

    # -- full mining --------------------------------------------------------------

    def periodicity_table(self, series: SymbolSequence) -> PeriodicityTable:
        """Mine the ``F2`` evidence table (pruned only if ``psi`` is set)."""
        n = series.length
        max_period = self._resolve_max_period(n)
        if n < 2 or max_period < 1:
            return PeriodicityTable(n, series.alphabet, {})
        match_counts = self.match_counts(series)
        codes = series.codes
        occurrences = [np.nonzero(codes == k)[0] for k in range(series.sigma)]
        counts: dict[int, dict[tuple[int, int], int]] = {}
        for p in range(1, max_period + 1):
            table = self._residue_table(codes, occurrences, match_counts, p, n)
            if table:
                counts[p] = table
        return PeriodicityTable(n, series.alphabet, counts)

    def periodicity_table_out_of_core(
        self,
        code_blocks: Iterable[np.ndarray],
        series_for_residues: SymbolSequence,
    ) -> PeriodicityTable:
        """Variant running stage 1 through the blocked external kernel.

        ``code_blocks`` streams the same codes held by
        ``series_for_residues``; stage 1 then never materialises more
        than one block, demonstrating the paper's external-FFT remark.
        Stage 2 still needs the series (it is position-local and cheap).
        """
        n = series_for_residues.length
        max_period = self._resolve_max_period(n)
        if n < 2 or max_period < 1:
            return PeriodicityTable(n, series_for_residues.alphabet, {})
        match_counts = blocked_match_counts(
            code_blocks, series_for_residues.sigma, max_period
        )
        codes = series_for_residues.codes
        occurrences = [
            np.nonzero(codes == k)[0] for k in range(series_for_residues.sigma)
        ]
        counts: dict[int, dict[tuple[int, int], int]] = {}
        for p in range(1, max_period + 1):
            table = self._residue_table(codes, occurrences, match_counts, p, n)
            if table:
                counts[p] = table
        return PeriodicityTable(n, series_for_residues.alphabet, counts)

    # -- internals -------------------------------------------------------------------

    def _resolve_max_period(self, n: int) -> int:
        max_period = n // 2 if self._max_period is None else self._max_period
        if self._max_period is not None and self._max_period < 1:
            raise ValueError("max_period must be >= 1")
        return min(max_period, n - 1) if n > 1 else 0

    def _residue_table(
        self,
        codes: np.ndarray,
        occurrences: list[np.ndarray],
        match_counts: np.ndarray,
        p: int,
        n: int,
    ) -> dict[tuple[int, int], int]:
        """Stage 2 for one period: split surviving symbols by ``j mod p``."""
        table: dict[tuple[int, int], int] = {}
        min_pairs = projection_pairs(n, p, p - 1)
        for k, occ in enumerate(occurrences):
            total = int(match_counts[k, p])
            if total == 0:
                continue
            if self._psi is not None and total < self._psi * max(min_pairs, 1):
                continue  # no position can reach support psi
            starts = occ[occ + p < n]
            starts = starts[codes[starts + p] == codes[starts]]
            if starts.size == 0:
                continue
            f2_by_l = np.bincount(starts % p, minlength=p)
            for l in np.nonzero(f2_by_l)[0]:
                table[(int(k), int(l))] = int(f2_by_l[l])
        return table

"""Periodic patterns with don't-care positions (Definitions 2 and 3).

A *periodic pattern* of length ``p`` fixes a symbol in some positions
and leaves the rest as the don't-care symbol ``*``.  A *single-symbol*
pattern (Definition 2) fixes exactly one position; multi-symbol
candidates arise from the Cartesian product of the per-position periodic
symbol sets (Definition 3).

Support conventions, following the paper's worked examples:

* single-symbol pattern ``(s, p, l)``:
  ``F2(s, pi_{p,l}(T)) / (|pi_{p,l}(T)| - 1)``;
* multi-symbol pattern: ``|W'_p| / (ceil(n/p) - 1)`` where ``W'_p``
  aligns one witness per fixed position *within the same repetition*
  of the period — equivalently, the number of adjacent period-segment
  pairs in which every fixed position repeats its symbol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from .alphabet import Alphabet

__all__ = ["DONT_CARE", "PeriodicPattern"]

#: Rendering of the don't-care symbol.
DONT_CARE = "*"


@dataclass(frozen=True, slots=True)
class PeriodicPattern:
    """A periodic pattern: fixed symbol codes by position, plus support.

    Attributes
    ----------
    period:
        The pattern length ``p``.
    slots:
        Length-``p`` tuple; entry ``l`` is a symbol code or ``None`` for
        the don't-care symbol.
    support:
        The (estimated) support in ``[0, 1]``.  Excluded from equality
        and hashing so the same pattern mined at different thresholds
        compares equal.
    """

    period: int
    slots: tuple[int | None, ...]
    support: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError("pattern period must be >= 1")
        if len(self.slots) != self.period:
            raise ValueError(
                f"pattern of period {self.period} needs {self.period} slots, "
                f"got {len(self.slots)}"
            )
        if not 0.0 <= self.support <= 1.0:
            raise ValueError("support must lie in [0, 1]")

    # -- constructors -----------------------------------------------------------

    @classmethod
    def single(
        cls, period: int, position: int, symbol_code: int, support: float = 0.0
    ) -> "PeriodicPattern":
        """The single-symbol pattern with ``s_k`` at ``position``."""
        if not 0 <= position < period:
            raise ValueError(f"position {position} out of range for period {period}")
        slots: list[int | None] = [None] * period
        slots[position] = symbol_code
        return cls(period, tuple(slots), support)

    @classmethod
    def from_items(
        cls, period: int, items: dict[int, int], support: float = 0.0
    ) -> "PeriodicPattern":
        """Build from a ``{position: symbol_code}`` mapping."""
        slots: list[int | None] = [None] * period
        for position, code in items.items():
            if not 0 <= position < period:
                raise ValueError(
                    f"position {position} out of range for period {period}"
                )
            slots[position] = code
        return cls(period, tuple(slots), support)

    # -- structure ---------------------------------------------------------------

    @property
    def items(self) -> tuple[tuple[int, int], ...]:
        """The fixed ``(position, symbol_code)`` pairs, position-sorted."""
        return tuple(
            (l, k) for l, k in enumerate(self.slots) if k is not None
        )

    @property
    def arity(self) -> int:
        """Number of fixed (non-don't-care) positions."""
        return sum(1 for k in self.slots if k is not None)

    def with_support(self, support: float) -> "PeriodicPattern":
        """The same pattern annotated with a support value."""
        return PeriodicPattern(self.period, self.slots, support)

    def matches_segment(self, segment: tuple[int, ...]) -> bool:
        """Whether a length-``p`` code segment satisfies the pattern."""
        if len(segment) != self.period:
            raise ValueError("segment length must equal the pattern period")
        return all(
            k is None or segment[l] == k for l, k in enumerate(self.slots)
        )

    def to_string(self, alphabet: Alphabet) -> str:
        """Render as in the paper, e.g. ``'ab*'`` or ``'*b**'``."""
        rendered: list[str] = []
        for k in self.slots:
            rendered.append(DONT_CARE if k is None else str(alphabet.symbol(k)))
        return "".join(rendered)

    def symbols(self, alphabet: Alphabet) -> dict[int, Hashable]:
        """The fixed positions as ``{position: symbol}``."""
        return {l: alphabet.symbol(k) for l, k in self.items}

    def __str__(self) -> str:
        return (
            "".join(DONT_CARE if k is None else f"<{k}>" for k in self.slots)
            + f" @p={self.period} sup={self.support:.3f}"
        )

"""Parsing and matching of pattern strings.

The paper renders patterns as strings over the alphabet plus the
don't-care symbol — ``ab*``, ``aaaa****bbbbc***********aa`` — and so do
this library's reports.  This module closes the loop: parse such a
string back into a :class:`~repro.core.patterns.PeriodicPattern`, and
locate where a pattern holds (or breaks) along a series.
"""

from __future__ import annotations

import numpy as np

from .alphabet import Alphabet
from .patterns import DONT_CARE, PeriodicPattern
from .sequence import SymbolSequence

__all__ = ["parse_pattern", "segment_matches", "pattern_support_curve"]


def parse_pattern(
    text: str, alphabet: Alphabet, support: float = 0.0
) -> PeriodicPattern:
    """Parse a paper-style pattern string like ``"ab*"``.

    Each character is a symbol of ``alphabet`` or the don't-care ``*``;
    the pattern period is the string length.

    >>> pattern = parse_pattern("ab*", Alphabet("abc"))
    >>> pattern.items
    ((0, 0), (1, 1))
    """
    if not text:
        raise ValueError("a pattern string must be non-empty")
    slots: list[int | None] = []
    for char in text:
        if char == DONT_CARE:
            slots.append(None)
        else:
            try:
                slots.append(alphabet.code(char))
            except KeyError:
                raise ValueError(
                    f"symbol {char!r} is not in the alphabet"
                ) from None
    return PeriodicPattern(len(text), tuple(slots), support)


def segment_matches(
    series: SymbolSequence, pattern: PeriodicPattern
) -> np.ndarray:
    """Boolean vector: does each full period segment satisfy the pattern?

    Segment ``m`` covers positions ``[m*p, (m+1)*p)``; partial trailing
    segments are excluded.
    """
    period = pattern.period
    segments = series.length // period
    matrix = series.codes[: segments * period].reshape(segments, period)
    ok = np.ones(segments, dtype=bool)
    for l, k in pattern.items:
        ok &= matrix[:, l] == k
    return ok


def pattern_support_curve(
    series: SymbolSequence, pattern: PeriodicPattern, window_segments: int = 8
) -> np.ndarray:
    """Rolling match rate of a pattern over consecutive segment windows.

    Entry ``m`` is the fraction of matching segments among segments
    ``[m, m + window_segments)`` — the trace an operator watches to see
    a mined pattern strengthen or decay over time.
    """
    if window_segments < 1:
        raise ValueError("window_segments must be >= 1")
    matches = segment_matches(series, pattern).astype(np.float64)
    if matches.size == 0:
        return np.empty(0)
    if matches.size < window_segments:
        return np.array([matches.mean()])
    kernel = np.ones(window_segments) / window_segments
    return np.convolve(matches, kernel, mode="valid")

"""Core model and miners: the paper's primary contribution.

Public surface:

* data model — :class:`Alphabet`, :class:`SymbolSequence`, projections;
* evidence — :class:`SymbolPeriodicity`, :class:`PeriodicityTable`;
* miners — :class:`ConvolutionMiner` (exact, Fig. 2 of the paper) and
  :class:`SpectralMiner` (scalable FFT, identical output);
* patterns — :class:`PeriodicPattern`, candidate generation, and the
  :func:`mine` facade returning a :class:`MiningResult`.
"""

from .alphabet import Alphabet
from .sequence import SymbolSequence
from .projection import (
    f2,
    f2_projection,
    f2_table_for_period,
    projection,
    projection_length,
    projection_pairs,
)
from .mapping import (
    Witness,
    binary_vector,
    binary_vector_bits,
    decode_witness,
    witness_power,
    witnesses_to_f2_table,
)
from .periodicity import PeriodicityTable, SymbolPeriodicity
from .convolution_miner import ENGINES, ConvolutionMiner, Engine
from .spectral_miner import SpectralMiner
from .patterns import DONT_CARE, PeriodicPattern
from .candidates import (
    cartesian_candidates,
    mine_patterns,
    pattern_support,
    segment_match_matrix,
    single_symbol_patterns,
)
from .results import MiningResult, mine
from .segment import SegmentPeriodicity, segment_periodicities, segment_supports
from .pattern_text import parse_pattern, pattern_support_curve, segment_matches

__all__ = [
    "Alphabet",
    "SymbolSequence",
    "f2",
    "f2_projection",
    "f2_table_for_period",
    "projection",
    "projection_length",
    "projection_pairs",
    "Witness",
    "binary_vector",
    "binary_vector_bits",
    "decode_witness",
    "witness_power",
    "witnesses_to_f2_table",
    "PeriodicityTable",
    "SymbolPeriodicity",
    "ConvolutionMiner",
    "Engine",
    "ENGINES",
    "SpectralMiner",
    "DONT_CARE",
    "PeriodicPattern",
    "cartesian_candidates",
    "mine_patterns",
    "pattern_support",
    "segment_match_matrix",
    "single_symbol_patterns",
    "MiningResult",
    "mine",
    "SegmentPeriodicity",
    "segment_periodicities",
    "segment_supports",
    "parse_pattern",
    "pattern_support_curve",
    "segment_matches",
]

"""Projections and consecutive-occurrence counts (Sect. 2.2 of the paper).

The two primitives defined here fix the paper's notation:

* ``pi_{p,l}(T) = t_l, t_{l+p}, t_{l+2p}, ...`` — the *projection* of a
  time series according to a period ``p`` starting from position ``l``.
* ``F2(s, X)`` — the number of times symbol ``s`` occurs in two
  *consecutive* positions of a sequence ``X``.

A symbol ``s`` is periodic with period ``p`` at position ``l`` with
respect to a threshold ``psi`` iff::

    F2(s, pi_{p,l}(T)) / (|pi_{p,l}(T)| - 1) >= psi

The denominator is the number of adjacent pairs in the projection.  The
paper writes it ``(n - l)/p - 1``; its worked examples (e.g. support 2/3
for symbol ``a`` in ``abcabbabcb`` with ``p = 3, l = 0``) pin the intended
reading down to ``ceil((n - l)/p) - 1``, which is exactly the number of
adjacent pairs, and that is what this module computes.
"""

from __future__ import annotations

import numpy as np

from .sequence import SymbolSequence

__all__ = [
    "projection",
    "projection_length",
    "projection_pairs",
    "f2",
    "f2_projection",
    "f2_table_for_period",
]


def projection_length(n: int, p: int, l: int) -> int:
    """Number of elements of ``pi_{p,l}`` of a length-``n`` series."""
    if not 0 <= l < p:
        raise ValueError(f"position l={l} must satisfy 0 <= l < p={p}")
    if l >= n:
        return 0
    return -(-(n - l) // p)  # ceil((n - l) / p)


def projection_pairs(n: int, p: int, l: int) -> int:
    """Number of adjacent pairs in ``pi_{p,l}`` — the support denominator."""
    return max(projection_length(n, p, l) - 1, 0)


def projection(series: SymbolSequence, p: int, l: int) -> SymbolSequence:
    """Return the projection ``pi_{p,l}(T)`` as a new sequence.

    >>> T = SymbolSequence.from_string("abcabbabcb")
    >>> projection(T, 4, 1).to_string()
    'bbb'
    >>> projection(T, 3, 0).to_string()
    'aaab'
    """
    if p < 1:
        raise ValueError("period must be >= 1")
    if not 0 <= l < p:
        raise ValueError(f"position l={l} must satisfy 0 <= l < p={p}")
    return SymbolSequence(series.codes[l::p], series.alphabet)


def f2(symbol_code: int, codes: np.ndarray) -> int:
    """``F2(s, X)``: count adjacent positions of ``X`` both equal to ``s``.

    >>> T = SymbolSequence.from_string("abbaaabaa")
    >>> int(f2(T.alphabet.code("a"), T.codes))
    3
    >>> int(f2(T.alphabet.code("b"), T.codes))
    1
    """
    codes = np.asarray(codes)
    if codes.size < 2:
        return 0
    match = (codes[:-1] == symbol_code) & (codes[1:] == symbol_code)
    return int(np.count_nonzero(match))


def f2_projection(series: SymbolSequence, symbol_code: int, p: int, l: int) -> int:
    """``F2(s, pi_{p,l}(T))`` computed without materialising the projection.

    Counts positions ``j`` with ``j ≡ l (mod p)``, ``j + p < n`` and
    ``t_j = t_{j+p} = s`` — identical to applying :func:`f2` to
    :func:`projection` but in one vectorised pass.
    """
    if p < 1:
        raise ValueError("period must be >= 1")
    if not 0 <= l < p:
        raise ValueError(f"position l={l} must satisfy 0 <= l < p={p}")
    codes = series.codes
    head = codes[l:-p:p] if series.length > p + l else codes[:0]
    tail = codes[l + p :: p]
    m = min(head.size, tail.size)
    return int(np.count_nonzero((head[:m] == symbol_code) & (tail[:m] == symbol_code)))


def f2_table_for_period(series: SymbolSequence, p: int) -> dict[tuple[int, int], int]:
    """All non-zero ``F2(s_k, pi_{p,l}(T))`` for one period ``p``.

    Returns a mapping ``(symbol_code, position) -> F2`` containing only
    non-zero entries.  Vectorised: one pass over the ``n - p`` aligned
    pairs of the series.
    """
    if p < 1:
        raise ValueError("period must be >= 1")
    codes = series.codes
    n = codes.size
    if p >= n:
        return {}
    match = codes[:-p] == codes[p:]
    positions = np.nonzero(match)[0]
    if positions.size == 0:
        return {}
    symbols = codes[positions]
    residues = positions % p
    table: dict[tuple[int, int], int] = {}
    keys = np.stack([symbols, residues], axis=1)
    uniq, counts = np.unique(keys, axis=0, return_counts=True)
    for (k, l), c in zip(uniq, counts):
        table[(int(k), int(l))] = int(c)
    return table

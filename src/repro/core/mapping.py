"""The paper's symbol-to-binary mapping scheme (Sect. 3.2).

Each symbol ``s_k`` of an alphabet of size ``sigma`` is mapped to the
``sigma``-bit binary representation of ``2**k``; a series of length ``n``
becomes a 0/1 vector ``T'`` of length ``sigma * n``.  For example, with
``a:001, b:010, c:100`` the series ``acccabb`` becomes
``001 100 100 100 001 010 010``.

After the weighted convolution of ``T'`` (reversed) with itself, the
component for symbol-shift ``p`` is a sum of distinct powers of two —
the *witness set* ``W_p``.  A witness ``w`` encodes one match of a pair
``t_j = t_{j+p} = s_k``:

* ``k = w mod sigma``                       (which symbol matched),
* ``j = n - p - 1 - floor(w / sigma)``      (the earlier pair position),
* ``l = j mod p``                           (the position within the period),
* ``m = j // p``                            (which repetition of the period).

Concretely ``w = sigma * (n - 1 - (j + p)) + k``: the later element of
the pair sits at series position ``i = j + p``, whose block starts at
bit ``sigma * i`` of ``T'``, and the reversal of the convolution turns
that into the exponent above.  The functions here implement both
directions and are pinned to the paper's worked examples by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sequence import SymbolSequence

__all__ = [
    "binary_vector",
    "binary_vector_bits",
    "Witness",
    "witness_power",
    "decode_witness",
    "witnesses_to_f2_table",
]


def binary_vector(series: SymbolSequence) -> np.ndarray:
    """Map a series to its 0/1 vector ``T'`` of length ``sigma * n``.

    Block ``i`` (bits ``sigma*i .. sigma*i + sigma - 1``, leftmost
    first) holds the ``sigma``-bit binary representation of
    ``2**code(t_i)``; the most significant bit of the block comes first,
    so the set bit of block ``i`` is at offset ``sigma - 1 - k_i``.

    >>> T = SymbolSequence.from_string("acccabb")
    >>> "".join(map(str, binary_vector(T)))
    '001100100100001010010'
    """
    sigma = series.sigma
    n = series.length
    out = np.zeros(sigma * n, dtype=np.int64)
    if n:
        blocks = np.arange(n) * sigma
        out[blocks + (sigma - 1 - series.codes)] = 1
    return out


def binary_vector_bits(series: SymbolSequence) -> np.ndarray:
    """Set-bit positions of ``T'`` — one per symbol, ascending."""
    sigma = series.sigma
    positions = np.arange(series.length) * sigma + (sigma - 1 - series.codes)
    return positions.astype(np.int64)


@dataclass(frozen=True, slots=True)
class Witness:
    """A decoded witness: one match ``t_j = t_{j+p} = s_k``.

    Attributes mirror the paper's analysis of ``W_{p,k,l}``:
    ``symbol_code`` is ``k``, ``position`` is ``l = j mod p``, and
    ``repetition`` is ``m = j // p`` (the segment index used to align
    witnesses of multi-symbol candidate patterns).
    """

    power: int
    symbol_code: int
    earlier_index: int
    position: int
    repetition: int


def witness_power(n: int, sigma: int, earlier_index: int, period: int, symbol_code: int) -> int:
    """The power ``w`` that the match ``(j, j + p)`` of ``s_k`` contributes."""
    later = earlier_index + period
    if earlier_index < 0 or later >= n:
        raise ValueError("match pair out of range")
    return sigma * (n - 1 - later) + symbol_code


def decode_witness(w: int, n: int, sigma: int, period: int) -> Witness:
    """Decode a witness power from ``W_p`` (Sect. 3.2's mod/floor rules)."""
    if w < 0:
        raise ValueError("witness powers are non-negative")
    symbol_code = w % sigma
    earlier = n - period - 1 - (w // sigma)
    if earlier < 0:
        raise ValueError(
            f"power {w} does not encode a match at period {period} (n={n})"
        )
    return Witness(
        power=int(w),
        symbol_code=int(symbol_code),
        earlier_index=int(earlier),
        position=int(earlier % period),
        repetition=int(earlier // period),
    )


def witnesses_to_f2_table(
    powers: np.ndarray, n: int, sigma: int, period: int
) -> dict[tuple[int, int], int]:
    """Turn a witness set ``W_p`` into ``{(symbol, position): F2}``.

    The cardinality of ``W_{p,k,l}`` equals ``F2(s_k, pi_{p,l}(T))``
    (Sect. 3.2), so this is a grouped count of the decoded witnesses.
    """
    powers = np.asarray(powers, dtype=np.int64)
    table: dict[tuple[int, int], int] = {}
    if powers.size == 0:
        return table
    symbols = powers % sigma
    earlier = n - period - 1 - powers // sigma
    if (earlier < 0).any():
        raise ValueError("witness set contains powers outside the series")
    positions = earlier % period
    keys = np.stack([symbols, positions], axis=1)
    uniq, counts = np.unique(keys, axis=0, return_counts=True)
    for (k, l), c in zip(uniq, counts):
        table[(int(k), int(l))] = int(c)
    return table

"""Symbol periodicities and the table both miners produce.

Definition 1 of the paper: in a time series ``T`` of length ``n``, a
symbol ``s`` is *periodic with period p at position l* with respect to a
periodicity threshold ``psi`` iff::

    F2(s, pi_{p,l}(T)) / pairs(p, l) >= psi,   0 < psi <= 1

where ``pairs(p, l)`` is the number of adjacent pairs in the projection
(see :mod:`repro.core.projection`).  The left-hand side is the *support*
of the corresponding single-symbol pattern (Definition 2).

A :class:`PeriodicityTable` stores the complete evidence — the ``F2``
counts per ``(period, symbol, position)`` — produced by either mining
algorithm, and answers the threshold queries the rest of the pipeline
needs.  Both the faithful big-integer miner and the scalable spectral
miner emit this exact structure, which is what makes them interchangeable.

The module also defines the *dense layout* used by the streaming layer:
every ``(period, symbol, position)`` triple up to a period cap flattened
into one contiguous array, so evidence can be scatter-added with
``np.bincount`` instead of nested dict updates.  Period ``p``'s block
starts at ``dense_offsets(sigma, cap)[p]`` and holds ``sigma * p``
counters ordered ``code * p + position``;
:meth:`PeriodicityTable.from_dense` converts such an array back into a
table in one vectorised pass.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Mapping
from dataclasses import dataclass

import numpy as np

from .alphabet import Alphabet
from .projection import projection_pairs

__all__ = [
    "SymbolPeriodicity",
    "PeriodicityTable",
    "dense_offsets",
    "dense_size",
]


def dense_offsets(sigma: int, max_period: int) -> np.ndarray:
    """Block start of each period in the dense ``F2`` layout.

    Entry ``p`` (for ``1 <= p <= max_period``) is the flat index where
    period ``p``'s ``sigma * p`` counters begin; entry ``0`` is unused
    and zero.  The counter of ``(p, code, position)`` lives at
    ``offsets[p] + code * p + position``.
    """
    if sigma < 1 or max_period < 1:
        raise ValueError("sigma and max_period must be >= 1")
    periods = np.arange(max_period + 1, dtype=np.int64)
    return sigma * periods * (periods - 1) // 2


def dense_size(sigma: int, max_period: int) -> int:
    """Total number of counters in the dense layout."""
    if sigma < 1 or max_period < 1:
        raise ValueError("sigma and max_period must be >= 1")
    return sigma * max_period * (max_period + 1) // 2


@dataclass(frozen=True, slots=True, order=True)
class SymbolPeriodicity:
    """One detected periodicity: symbol ``s`` with period ``p`` at ``l``.

    Attributes
    ----------
    period:
        The period ``p``.
    position:
        The starting position ``l`` (``0 <= l < p``).
    symbol_code:
        Integer code of the periodic symbol.
    f2:
        The consecutive-occurrence count ``F2(s, pi_{p,l}(T))``.
    pairs:
        The support denominator (adjacent pairs of the projection).
    """

    period: int
    position: int
    symbol_code: int
    f2: int
    pairs: int

    @property
    def support(self) -> float:
        """The periodicity support ``F2 / pairs`` (0 when undefined)."""
        return self.f2 / self.pairs if self.pairs > 0 else 0.0

    def symbol(self, alphabet: Alphabet) -> Hashable:
        """Resolve the symbol code against an alphabet."""
        return alphabet.symbol(self.symbol_code)


class PeriodicityTable:
    """Complete ``F2`` evidence for every candidate period of a series.

    Parameters
    ----------
    n:
        Length of the mined series.
    alphabet:
        The series alphabet.
    counts:
        Mapping ``period -> {(symbol_code, position): f2}``.  Only
        non-zero counts need to be present.
    """

    def __init__(
        self,
        n: int,
        alphabet: Alphabet,
        counts: Mapping[int, Mapping[tuple[int, int], int]],
    ) -> None:
        self._n = n
        self._alphabet = alphabet
        self._counts: dict[int, dict[tuple[int, int], int]] = {
            int(p): {k: int(v) for k, v in table.items() if v}
            for p, table in counts.items()
        }

    @classmethod
    def from_dense(
        cls,
        n: int,
        alphabet: Alphabet,
        dense: np.ndarray,
        max_period: int,
    ) -> "PeriodicityTable":
        """Build a table from a dense flattened count array.

        ``dense`` must follow the layout of :func:`dense_offsets` for
        ``sigma = len(alphabet)`` and the given ``max_period``.  Only
        non-zero counters are materialised; the conversion is one
        vectorised pass per period, so snapshots stay cheap even when
        the dense store is large.
        """
        sigma = len(alphabet)
        offsets = dense_offsets(sigma, max_period)
        if dense.shape != (dense_size(sigma, max_period),):
            raise ValueError("dense array does not match the layout")
        counts: dict[int, dict[tuple[int, int], int]] = {}
        for p in range(1, max_period + 1):
            start = int(offsets[p])
            block = dense[start : start + sigma * p]
            nonzero = np.nonzero(block)[0]
            if nonzero.size == 0:
                continue
            codes = (nonzero // p).tolist()
            positions = (nonzero % p).tolist()
            values = block[nonzero].tolist()
            counts[p] = {
                (code, position): value
                for code, position, value in zip(codes, positions, values)
            }
        table = cls.__new__(cls)
        table._n = int(n)
        table._alphabet = alphabet
        table._counts = counts
        return table

    # -- raw access ----------------------------------------------------------

    @property
    def n(self) -> int:
        """Length of the mined series."""
        return self._n

    @property
    def alphabet(self) -> Alphabet:
        """Alphabet of the mined series."""
        return self._alphabet

    @property
    def periods(self) -> list[int]:
        """All periods with at least one non-zero ``F2`` count."""
        return sorted(p for p, t in self._counts.items() if t)

    def f2(self, period: int, symbol_code: int, position: int) -> int:
        """``F2(s_k, pi_{p,l}(T))`` — zero when not recorded."""
        return self._counts.get(period, {}).get((symbol_code, position), 0)

    def counts_for(self, period: int) -> dict[tuple[int, int], int]:
        """The ``(symbol_code, position) -> F2`` table of one period."""
        return dict(self._counts.get(period, {}))

    def support(self, period: int, symbol_code: int, position: int) -> float:
        """Support of the single-symbol pattern ``(s_k, p, l)``."""
        pairs = projection_pairs(self._n, period, position)
        if pairs <= 0:
            return 0.0
        return self.f2(period, symbol_code, position) / pairs

    # -- threshold queries -----------------------------------------------------

    def periodicities(
        self, psi: float, period: int | None = None, min_pairs: int = 1
    ) -> list[SymbolPeriodicity]:
        """All symbol periodicities with support ``>= psi`` (Definition 1).

        Restricted to one ``period`` when given; sorted by
        ``(period, position, symbol_code)``.  ``min_pairs`` (default 1,
        the paper's definition) discards periodicities whose projection
        has fewer adjacent pairs — raising it suppresses the trivial
        certainty of near-``n/2`` periods whose support denominator is 1.
        """
        if not 0 < psi <= 1:
            raise ValueError("the periodicity threshold must be in (0, 1]")
        if min_pairs < 1:
            raise ValueError("min_pairs must be >= 1")
        hits: list[SymbolPeriodicity] = []
        items: Iterator[tuple[int, dict[tuple[int, int], int]]]
        if period is None:
            items = iter(sorted(self._counts.items()))
        else:
            items = iter([(period, self._counts.get(period, {}))])
        for p, table in items:
            for (k, l), count in table.items():
                pairs = projection_pairs(self._n, p, l)
                if pairs >= min_pairs and count >= psi * pairs:
                    hits.append(SymbolPeriodicity(p, l, k, count, pairs))
        hits.sort(key=lambda h: (h.period, h.position, h.symbol_code))
        return hits

    def candidate_periods(self, psi: float, min_pairs: int = 1) -> list[int]:
        """Periods at which at least one symbol is periodic w.r.t. ``psi``."""
        return sorted({h.period for h in self.periodicities(psi, min_pairs=min_pairs)})

    def confidence(self, period: int) -> float:
        """Maximum support of any symbol/position at ``period``.

        This is the "confidence" of the paper's experimental study
        (Sect. 4.1): the minimum periodicity threshold value at which the
        period would still be detected.
        """
        table = self._counts.get(period)
        if not table:
            return 0.0
        best = 0.0
        for (k, l), count in table.items():
            pairs = projection_pairs(self._n, period, l)
            if pairs > 0:
                best = max(best, count / pairs)
        return best

    def merged_with(self, other: "PeriodicityTable") -> "PeriodicityTable":
        """Sum the ``F2`` evidence of two tables over the same alphabet.

        Used by the streaming layer to combine per-block tables.  The
        resulting ``n`` is the sum of the two lengths, which matches
        concatenation only approximately at the block seam (the seam
        pairs are accounted for separately by the online miner).
        """
        if other.alphabet != self._alphabet:
            raise ValueError("cannot merge tables over different alphabets")
        merged: dict[int, dict[tuple[int, int], int]] = {
            p: dict(t) for p, t in self._counts.items()
        }
        for p, table in other._counts.items():
            dst = merged.setdefault(p, {})
            for key, v in table.items():
                dst[key] = dst.get(key, 0) + v
        return PeriodicityTable(self._n + other.n, self._alphabet, merged)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PeriodicityTable):
            return NotImplemented
        mine = {p: t for p, t in self._counts.items() if t}
        theirs = {p: t for p, t in other._counts.items() if t}
        return (
            self._n == other._n
            and self._alphabet == other._alphabet
            and mine == theirs
        )

    def __repr__(self) -> str:
        return (
            f"PeriodicityTable(n={self._n}, sigma={len(self._alphabet)}, "
            f"periods={len(self.periods)})"
        )

"""The paper's one-pass convolution miner (Fig. 2), exactly.

Pipeline (Sect. 3):

1. map the series to the 0/1 vector ``T'`` (one ``sigma``-bit block per
   symbol, :mod:`repro.core.mapping`);
2. compute the modified convolution
   ``(x (*) y)_i = sum_j 2**j x_j y_{i-j}`` of ``reverse(T')`` with
   ``T'`` — exactly, because every match contributes one distinct power
   of two that must survive into the output;
3. read the witness set ``W_p`` out of the component for every
   symbol-shift ``p = 1 .. n/2`` and split it into the
   ``W_{p,k,l}`` sets, whose cardinalities are the
   ``F2(s_k, pi_{p,l}(T))`` counts of Definition 1.

Two exact engines compute step 2:

``"kronecker"``
    One big-integer multiplication evaluates the whole convolution at
    once (Kronecker substitution) — the literal "one convolution" of the
    paper, with Python's sub-quadratic big-int product standing in for
    the exact FFT.  The product holds ``Theta((sigma n)**2)`` bits, so
    this engine is for small-to-moderate series.

``"bitand"`` (default)
    Evaluates each component lazily.  Because the inputs are 0/1 and the
    weights are ``2**j``, the component for bit-shift ``sigma p`` of the
    reversed convolution is literally ``X & (X >> sigma p)`` where ``X``
    is ``T'`` read as one big binary number (most-significant bit =
    position 0).  Each AND is one machine-speed pass over ``sigma n``
    bits; all components follow from the same single mapping of the
    data, read once.

``"wordarray"``
    The same lazy components, computed over a numpy ``uint64`` word
    array instead of a Python integer
    (:mod:`repro.convolution.bitops`).  Wins on long series (millions
    of packed bits), where the vectorised shift/AND/decode beats Python
    big-int traffic by 2-3x; on short dense series the big-int engine's
    C fast path keeps the edge.

``"parallel"``
    The ``wordarray`` components sharded across a worker pool
    (:mod:`repro.parallel`): the packed words are exported once via
    shared memory, contiguous period shards run concurrently, and
    ``periodicity_table`` takes a **count-only fast path** that sums
    witness bits per ``(symbol, position)`` residue class instead of
    decoding positions.  The ``workers=`` knob caps the pool.  The
    engine is fault-tolerant: hung shards trip ``shard_timeout``,
    failed shards are re-dispatched up to ``max_retries`` times with
    exponential backoff, and under ``on_fault="fallback"`` (default)
    the run degrades ``process -> thread -> serial`` rather than
    abort, so the result is always identical to the serial engines;
    ``on_fault="raise"`` aborts instead.  Recovery is recorded in
    ``fault_events``.

All engines produce bit-for-bit identical witness sets (property-tested
against each other and against the quadratic reference).  For large
series where only the counts matter, use
:class:`repro.core.spectral_miner.SpectralMiner`, which trades the
witness bookkeeping for floating-point FFTs.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..convolution.bigint import (
    bit_positions,
    pack_bits,
    weighted_convolution_witnesses,
)
from ..convolution.bitops import pack_positions, shifted_self_and
from ..faults import FallbackEvent, FaultEvent, FaultPlan
from ..parallel import ParallelWitnessEngine
from .mapping import binary_vector, binary_vector_bits, witnesses_to_f2_table
from .periodicity import PeriodicityTable
from .sequence import SymbolSequence

__all__ = ["ConvolutionMiner", "Engine", "ENGINES"]

Engine = Literal["bitand", "kronecker", "wordarray", "parallel"]

#: the engine registry — the single source of truth the CLI choices,
#: the ``Engine`` alias, docs, and tests are all checked against
#: (lint rule RL004).
ENGINES: tuple[Engine, ...] = ("bitand", "kronecker", "wordarray", "parallel")

# Backwards-compatible alias; new code should import ENGINES.
_ENGINES = ENGINES

#: Kronecker products hold (sigma*n)**2 bits; past this the engine would
#: allocate gigabytes, so it refuses and points at the lazy engines.
_KRONECKER_MAX_BITS = 30_000


class ConvolutionMiner:
    """Exact miner implementing the paper's algorithm verbatim.

    Parameters
    ----------
    engine:
        ``"bitand"`` (default), ``"kronecker"``, ``"wordarray"``, or
        ``"parallel"`` — see the module docstring.  Outputs are
        identical.
    max_period:
        Largest period to analyse; defaults to ``n // 2`` per the paper's
        Fig. 2 loop.
    workers:
        Worker cap for the ``"parallel"`` engine (default: CPU count);
        ignored by the serial engines.
    shard_timeout:
        ``"parallel"`` only: seconds to wait for one shard before
        treating it as hung and re-dispatching (``None``: no limit).
    max_retries:
        ``"parallel"`` only: re-dispatches granted to a failing shard
        per backend (default 2).
    retry_backoff:
        ``"parallel"`` only: base of the exponential backoff between
        re-dispatches, in seconds.
    on_fault:
        ``"parallel"`` only: ``"fallback"`` (default) degrades
        ``process -> thread -> serial`` and always completes with a
        table identical to the serial engines; ``"raise"`` aborts with
        :class:`repro.parallel.ShardFailure`.
    fault_plan:
        ``"parallel"`` only: a deterministic
        :class:`repro.faults.FaultPlan` injected into workers (for
        tests and chaos drills; leave ``None`` in production).
    """

    def __init__(
        self,
        engine: Engine = "bitand",
        max_period: int | None = None,
        workers: int | None = None,
        *,
        shard_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.01,
        on_fault: str = "fallback",
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self._engine = engine
        self._max_period = max_period
        self._workers = workers
        # Constructed eagerly so bad knob values fail at miner
        # construction, not mid-mine; the engine is stateless until run.
        self._parallel: ParallelWitnessEngine | None = (
            ParallelWitnessEngine(
                workers=workers,
                shard_timeout=shard_timeout,
                max_retries=max_retries,
                retry_backoff=retry_backoff,
                on_fault=on_fault,
                fault_plan=fault_plan,
            )
            if engine == "parallel"
            else None
        )

    # -- public API ------------------------------------------------------------

    def witness_sets(self, series: SymbolSequence) -> dict[int, np.ndarray]:
        """The raw witness sets ``W_p`` for every period ``p``.

        Returns a mapping ``period -> ascending array of powers w`` with
        ``2**w`` present in the convolution component of that period.
        Periods with empty witness sets are omitted.
        """
        n = series.length
        max_period = self._resolve_max_period(n)
        if n < 2 or max_period < 1:
            return {}
        if self._engine == "kronecker":
            witnesses = self._kronecker_witnesses(series, max_period)
        elif self._engine == "wordarray":
            witnesses = self._wordarray_witnesses(series, max_period)
        elif self._engine == "parallel":
            witnesses = self._parallel_engine().witness_sets(
                self._packed_words(series), series.length, series.sigma, max_period
            )
        else:
            witnesses = self._bitand_witnesses(series, max_period)
        return {p: w for p, w in witnesses.items() if w.size}

    def f2_tables(
        self, series: SymbolSequence
    ) -> dict[int, dict[tuple[int, int], int]]:
        """The per-period ``F2`` tables ``{(symbol, position): count}``.

        The ``"parallel"`` engine serves this from its count-only fast
        path — witness cardinalities summed per residue class, no
        position decode; the serial engines decode witness sets and
        group them.  Results are identical.
        """
        n = series.length
        max_period = self._resolve_max_period(n)
        if self._engine == "parallel":
            if n < 2 or max_period < 1:
                return {}
            tables = self._parallel_engine().f2_tables(
                self._packed_words(series), n, series.sigma, max_period
            )
            return {p: t for p, t in tables.items() if t}
        return {
            p: witnesses_to_f2_table(w, n, series.sigma, p)
            for p, w in self.witness_sets(series).items()
        }

    def periodicity_table(self, series: SymbolSequence) -> PeriodicityTable:
        """Mine the full ``F2`` evidence table of the series."""
        return PeriodicityTable(
            series.length, series.alphabet, self.f2_tables(series)
        )

    @property
    def fault_events(self) -> tuple[FaultEvent | FallbackEvent, ...]:
        """Faults survived and fallbacks taken by the last parallel run.

        Empty for the serial engines, and for parallel runs that hit no
        faults (the overwhelmingly common case).
        """
        if self._parallel is None:
            return ()
        return self._parallel.events

    # -- engines ---------------------------------------------------------------

    def _resolve_max_period(self, n: int) -> int:
        max_period = n // 2 if self._max_period is None else self._max_period
        if self._max_period is not None and self._max_period < 1:
            raise ValueError("max_period must be >= 1")
        return min(max_period, n - 1) if n > 1 else 0

    def _bitand_witnesses(
        self, series: SymbolSequence, max_period: int
    ) -> dict[int, np.ndarray]:
        sigma = series.sigma
        total = sigma * series.length
        # Bit e of X must be x[total - 1 - e]: the series' binary vector
        # read as a number whose most significant bit is position 0.
        big_x = pack_bits(total - 1 - binary_vector_bits(series), total)
        out: dict[int, np.ndarray] = {}
        for p in range(1, max_period + 1):
            component = big_x & (big_x >> (sigma * p))
            out[p] = bit_positions(component)
        return out

    def _packed_words(self, series: SymbolSequence) -> np.ndarray:
        """The series packed as the ``uint64`` word array ``X``."""
        total = series.sigma * series.length
        return pack_positions(total - 1 - binary_vector_bits(series), total)

    def _parallel_engine(self) -> ParallelWitnessEngine:
        assert self._parallel is not None  # guarded by engine == "parallel"
        return self._parallel

    def _wordarray_witnesses(
        self, series: SymbolSequence, max_period: int
    ) -> dict[int, np.ndarray]:
        sigma = series.sigma
        words = self._packed_words(series)
        return {
            p: shifted_self_and(words, sigma * p)
            for p in range(1, max_period + 1)
        }

    def _kronecker_witnesses(
        self, series: SymbolSequence, max_period: int
    ) -> dict[int, np.ndarray]:
        vector = binary_vector(series)
        total = vector.size
        if total > _KRONECKER_MAX_BITS:
            raise ValueError(
                f"kronecker engine refuses sigma*n = {total:,} "
                f"(limit {_KRONECKER_MAX_BITS:,}): the product would hold "
                f"about {total * total:,} bits; use engine='bitand', "
                "'wordarray', or 'parallel', or the SpectralMiner"
            )
        components = weighted_convolution_witnesses(vector[::-1], vector)
        sigma = series.sigma
        out: dict[int, np.ndarray] = {}
        for p in range(1, max_period + 1):
            # Reversing the convolution output maps component i to
            # total - 1 - i; the symbol-shift-p component sits at bit
            # offset sigma * p of the reversed sequence.
            out[p] = components[total - 1 - sigma * p]
        return out

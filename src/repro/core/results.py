"""Mining results and the top-level mining facade.

:func:`mine` is the library's front door: it runs either miner over a
series, applies the periodicity threshold, and mines all candidate
patterns — the complete pipeline of the paper's Fig. 2 in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from ..faults import FaultPlan
from .alphabet import Alphabet
from .candidates import mine_patterns, single_symbol_patterns
from .convolution_miner import ConvolutionMiner
from .patterns import PeriodicPattern
from .periodicity import PeriodicityTable, SymbolPeriodicity
from .sequence import SymbolSequence
from .spectral_miner import SpectralMiner

__all__ = ["MiningResult", "mine"]

Algorithm = Literal["spectral", "convolution"]


@dataclass(frozen=True, slots=True)
class MiningResult:
    """Everything one mining run produces.

    Attributes
    ----------
    psi:
        The periodicity threshold the run used.
    table:
        The full ``F2`` evidence table (inspect for other thresholds —
        lower thresholds need a re-mine only if the spectral pruning was
        enabled above them).
    periodicities:
        Symbol periodicities meeting ``psi`` (Definition 1).
    single_patterns:
        The corresponding single-symbol patterns (Definition 2).
    patterns:
        All candidate patterns with support ``>= psi``, including the
        single-symbol ones (Definition 3).
    """

    psi: float
    table: PeriodicityTable
    periodicities: tuple[SymbolPeriodicity, ...]
    single_patterns: tuple[PeriodicPattern, ...]
    patterns: tuple[PeriodicPattern, ...]

    @property
    def alphabet(self) -> Alphabet:
        """Alphabet of the mined series."""
        return self.table.alphabet

    @property
    def candidate_periods(self) -> tuple[int, ...]:
        """Periods with at least one periodicity at ``psi``, ascending."""
        return tuple(sorted({h.period for h in self.periodicities}))

    def patterns_for(self, period: int) -> tuple[PeriodicPattern, ...]:
        """The mined patterns of one period."""
        return tuple(p for p in self.patterns if p.period == period)

    def confidence(self, period: int) -> float:
        """Best support of any symbol periodicity at ``period``."""
        return self.table.confidence(period)

    def render(self, limit: int | None = 20) -> str:
        """Human-readable summary (top patterns by support)."""
        ranked = sorted(self.patterns, key=lambda p: -p.support)
        if limit is not None:
            ranked = ranked[:limit]
        periods = list(self.candidate_periods)
        shown = periods if len(periods) <= 12 else periods[:12]
        suffix = "" if len(periods) <= 12 else f" ... (+{len(periods) - 12} more)"
        lines = [f"psi={self.psi:.2f}  periods={shown}{suffix}"]
        for pat in ranked:
            lines.append(
                f"  p={pat.period:<5} {pat.to_string(self.alphabet):<24} "
                f"support={pat.support:.3f}"
            )
        return "\n".join(lines)


def mine(
    series: SymbolSequence,
    psi: float,
    algorithm: Algorithm = "spectral",
    max_period: int | None = None,
    periods: list[int] | None = None,
    max_arity: int | None = None,
    prune: bool = True,
    engine: str = "bitand",
    workers: int | None = None,
    shard_timeout: float | None = None,
    max_retries: int = 2,
    retry_backoff: float = 0.01,
    on_fault: str = "fallback",
    fault_plan: FaultPlan | None = None,
    table: PeriodicityTable | None = None,
) -> MiningResult:
    """Mine all obscure periodic patterns of a series.

    Parameters
    ----------
    series:
        The symbol time series.
    psi:
        Periodicity threshold in ``(0, 1]``.
    algorithm:
        ``"spectral"`` (scalable FFT miner, default) or
        ``"convolution"`` (the paper's exact big-integer algorithm).
    max_period:
        Largest period to analyse; defaults to ``n // 2``.
    periods:
        Mine patterns only at these periods (the evidence table still
        covers all periods up to ``max_period``).
    max_arity:
        Cap on fixed positions per pattern.
    prune:
        Let the spectral miner drop evidence that cannot reach ``psi``
        (saves time; the returned table then only supports thresholds
        ``>= psi``).  Ignored by the convolution algorithm, which is
        always exact.
    engine:
        Exact-engine choice for ``algorithm="convolution"``
        (``"bitand"``, ``"kronecker"``, ``"wordarray"``, or
        ``"parallel"``); ignored by the spectral miner.
    workers:
        Worker cap for ``engine="parallel"``.
    shard_timeout:
        ``engine="parallel"``: per-shard timeout in seconds before a
        hung shard is re-dispatched (``None``: no limit).
    max_retries:
        ``engine="parallel"``: re-dispatches granted to a failing shard
        per backend.
    retry_backoff:
        ``engine="parallel"``: base of the exponential backoff between
        re-dispatches, in seconds.
    on_fault:
        ``engine="parallel"``: ``"fallback"`` (default) degrades
        ``process -> thread -> serial`` and always completes;
        ``"raise"`` aborts on an unrecoverable shard.
    fault_plan:
        ``engine="parallel"``: deterministic fault injection for tests
        and chaos drills (:class:`repro.faults.FaultPlan`).
    table:
        A :class:`PeriodicityTable` already mined from ``series`` —
        skips the mining pass entirely and re-derives periodicities and
        patterns from it (how the pipeline reuses its stage-1 scouting
        evidence instead of mining the series twice).

    Examples
    --------
    >>> T = SymbolSequence.from_string("abcabbabcb")
    >>> result = mine(T, psi=2 / 3)
    >>> sorted(p.to_string(result.alphabet) for p in result.patterns_for(3))
    ['*b*', 'a**', 'ab*']
    """
    if table is not None:
        pass
    elif algorithm == "spectral":
        miner = SpectralMiner(psi=psi if prune else None, max_period=max_period)
        table = miner.periodicity_table(series)
    elif algorithm == "convolution":
        table = ConvolutionMiner(
            engine=engine,
            max_period=max_period,
            workers=workers,
            shard_timeout=shard_timeout,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            on_fault=on_fault,
            fault_plan=fault_plan,
        ).periodicity_table(series)
    else:
        raise ValueError(f"unknown algorithm {algorithm!r}")
    periodicities = tuple(table.periodicities(psi))
    singles = tuple(single_symbol_patterns(table, psi))
    patterns = tuple(
        mine_patterns(series, table, psi, periods=periods, max_arity=max_arity)
    )
    return MiningResult(
        psi=psi,
        table=table,
        periodicities=periodicities,
        single_patterns=singles,
        patterns=patterns,
    )

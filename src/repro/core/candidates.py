"""Candidate periodic patterns and their support (Definition 3).

Given the per-position periodic symbol sets
``S_{p,l} = {s : s periodic with period p at position l w.r.t. psi}``,
Definition 3 forms candidates from the Cartesian product
``S_p = (S_{p,0} u {*}) x ... x (S_{p,p-1} u {*})`` and estimates each
candidate's support from aligned witnesses.

Two generators are provided:

* :func:`cartesian_candidates` — the paper-literal product (guarded by a
  hard cap, since the product is exponential in the number of non-empty
  positions);
* :func:`mine_patterns` — an Apriori level-wise search exploiting the
  anti-monotonicity the paper itself points out in its footnote ("this
  is similar to the Apriori property of the association rules"): a
  pattern's support never exceeds any sub-pattern's, so candidates are
  grown one fixed position at a time and pruned against ``psi``.

Support counting uses the *segment matrix*: entry ``(m, l)`` records the
symbol that repeated from segment ``m`` to segment ``m+1`` at offset
``l`` (or -1).  A candidate's aligned-witness count ``|W'_p|`` equals
the number of rows satisfying every fixed position — the test suite
pins this equivalence to the paper's witness-set formulation.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator

import numpy as np

from .patterns import PeriodicPattern
from .periodicity import PeriodicityTable, SymbolPeriodicity
from .projection import projection_pairs
from .sequence import SymbolSequence

__all__ = [
    "segment_match_matrix",
    "single_symbol_patterns",
    "cartesian_candidates",
    "mine_patterns",
    "pattern_support",
]

#: Refuse paper-literal Cartesian products bigger than this.
_CARTESIAN_CAP = 200_000


def segment_match_matrix(series: SymbolSequence, period: int) -> np.ndarray:
    """Matrix of symbols that repeat across adjacent period segments.

    Shape ``(R, period)`` with ``R = ceil(n / period) - 1`` rows, one per
    adjacent segment pair.  Entry ``(m, l)`` is the symbol code ``k``
    when ``t_{m p + l} = t_{(m+1) p + l} = s_k`` and ``-1`` otherwise.
    """
    if period < 1:
        raise ValueError("period must be >= 1")
    codes = series.codes
    n = codes.size
    rows = max(-(-n // period) - 1, 0)
    matrix = np.full((rows, period), -1, dtype=np.int64)
    if n <= period:
        return matrix
    j = np.arange(n - period)
    matched = codes[j] == codes[j + period]
    j = j[matched]
    matrix[j // period, j % period] = codes[j]
    return matrix


def single_symbol_patterns(
    table: PeriodicityTable, psi: float, period: int | None = None
) -> list[PeriodicPattern]:
    """All periodic single-symbol patterns w.r.t. ``psi`` (Definition 2)."""
    return [
        PeriodicPattern.single(h.period, h.position, h.symbol_code, h.support)
        for h in table.periodicities(psi, period=period)
    ]


def pattern_support(pattern: PeriodicPattern, matrix: np.ndarray) -> float:
    """Support of a (multi-symbol) pattern from a segment matrix.

    ``|W'_p| / R``: the fraction of adjacent segment pairs in which every
    fixed position of the pattern repeats its symbol.
    """
    rows = matrix.shape[0]
    if rows == 0:
        return 0.0
    ok = np.ones(rows, dtype=bool)
    for l, k in pattern.items:
        ok &= matrix[:, l] == k
    return float(np.count_nonzero(ok)) / rows


def cartesian_candidates(
    periodicities: list[SymbolPeriodicity], period: int
) -> Iterator[PeriodicPattern]:
    """Paper-literal Definition 3: the full Cartesian product for one period.

    Yields every ordered choice of "a periodic symbol or ``*``" per
    position, skipping the all-don't-care pattern.  Raises when the
    product would exceed the safety cap — use :func:`mine_patterns` for
    real data.
    """
    per_position: dict[int, list[int]] = {}
    for h in periodicities:
        if h.period == period:
            per_position.setdefault(h.position, []).append(h.symbol_code)
    choices: list[list[int | None]] = []
    size = 1
    for l in range(period):
        options: list[int | None] = [None] + sorted(per_position.get(l, []))
        size *= len(options)
        choices.append(options)
    if size > _CARTESIAN_CAP:
        raise ValueError(
            f"Cartesian product of size {size} exceeds the cap "
            f"({_CARTESIAN_CAP}); use mine_patterns"
        )
    for combo in product(*choices):
        if any(k is not None for k in combo):
            yield PeriodicPattern(period, tuple(combo))


def mine_patterns(
    series: SymbolSequence,
    table: PeriodicityTable,
    psi: float,
    periods: list[int] | None = None,
    max_arity: int | None = None,
) -> list[PeriodicPattern]:
    """Apriori-style mining of all periodic patterns with support >= psi.

    Parameters
    ----------
    series:
        The mined series (needed to count aligned segment supports).
    table:
        Evidence table from either miner.
    psi:
        Periodicity threshold in ``(0, 1]``.
    periods:
        Restrict to these periods; defaults to every candidate period
        of the table at ``psi``.
    max_arity:
        Cap on the number of fixed positions per pattern (``None`` =
        unbounded).

    Returns
    -------
    Every pattern (single- and multi-symbol) whose support is at least
    ``psi``, sorted by (period, arity, slots).  Single-symbol supports
    follow Definition 2; multi-symbol supports use the aligned-segment
    count over ``ceil(n/p) - 1``.

    Warning
    -------
    Definition 3's pattern space is exponential: if ``m`` positions of a
    period carry high-support symbols whose joint support stays above
    ``psi``, all ``2**m`` combinations qualify and *will* be returned.
    On strongly periodic data restrict ``periods`` (mining a base period
    instead of its multiples) and/or set ``max_arity``.
    """
    if not 0 < psi <= 1:
        raise ValueError("the periodicity threshold must be in (0, 1]")
    if periods is None:
        periods = table.candidate_periods(psi)
    out: list[PeriodicPattern] = []
    for p in periods:
        out.extend(_mine_period(series, table, psi, p, max_arity))
    out.sort(
        key=lambda pat: (
            pat.period,
            pat.arity,
            tuple(-1 if k is None else k for k in pat.slots),
        )
    )
    return out


def _mine_period(
    series: SymbolSequence,
    table: PeriodicityTable,
    psi: float,
    period: int,
    max_arity: int | None,
) -> list[PeriodicPattern]:
    """Level-wise search for one period."""
    hits = table.periodicities(psi, period=period)
    if not hits:
        return []
    matrix = segment_match_matrix(series, period)
    rows = matrix.shape[0]
    out: list[PeriodicPattern] = [
        PeriodicPattern.single(h.period, h.position, h.symbol_code, h.support)
        for h in hits
    ]
    if rows == 0:
        return out

    # Level 1 items with their row masks; items are (position, code).
    item_masks: dict[tuple[int, int], np.ndarray] = {}
    for h in hits:
        item_masks[(h.position, h.symbol_code)] = (
            matrix[:, h.position] == h.symbol_code
        )
    # Frontier: itemset (sorted tuple of items) -> row mask, kept only if
    # the aligned support can still reach psi.
    threshold = psi * rows
    frontier: dict[tuple[tuple[int, int], ...], np.ndarray] = {}
    for item, mask in sorted(item_masks.items()):
        if np.count_nonzero(mask) >= threshold:
            frontier[(item,)] = mask

    arity = 1
    while frontier and (max_arity is None or arity < max_arity):
        next_frontier: dict[tuple[tuple[int, int], ...], np.ndarray] = {}
        for itemset, mask in frontier.items():
            last_position = itemset[-1][0]
            for item, item_mask in item_masks.items():
                if item[0] <= last_position:
                    continue  # grow rightwards only: canonical, no dupes
                joined = mask & item_mask
                count = int(np.count_nonzero(joined))
                if count >= threshold:
                    grown = itemset + (item,)
                    next_frontier[grown] = joined
                    out.append(
                        PeriodicPattern.from_items(
                            period, dict(grown), count / rows
                        )
                    )
        frontier = next_frontier
        arity += 1
    return out

"""Symbol time series.

A :class:`SymbolSequence` is the central input type of the library: a
time series ``T = t_0, t_1, ..., t_{n-1}`` of symbols over a finite
:class:`~repro.core.alphabet.Alphabet`.  Internally the series is stored
as a compact :mod:`numpy` integer-code array, which every algorithm in the
package operates on.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Hashable

import numpy as np

from .alphabet import Alphabet

__all__ = ["SymbolSequence"]


class SymbolSequence:
    """An immutable time series of symbols over a fixed alphabet.

    Parameters
    ----------
    codes:
        Integer symbol codes, one per timestamp.
    alphabet:
        The alphabet the codes index into.

    Notes
    -----
    Construct with :meth:`from_string`, :meth:`from_symbols`, or
    :meth:`from_codes` rather than calling the constructor with raw
    arrays, unless the codes already come from another sequence.
    """

    __slots__ = ("_codes", "_alphabet")

    def __init__(self, codes: np.ndarray, alphabet: Alphabet) -> None:
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 1:
            raise ValueError("a time series must be one-dimensional")
        if codes.size and (codes.min() < 0 or codes.max() >= len(alphabet)):
            raise ValueError(
                f"codes out of range for alphabet of size {len(alphabet)}"
            )
        self._codes = codes
        self._codes.setflags(write=False)
        self._alphabet = alphabet

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_string(
        cls, text: str, alphabet: Alphabet | None = None
    ) -> "SymbolSequence":
        """Build a sequence from a string of one-character symbols.

        >>> SymbolSequence.from_string("abcabbabcb").length
        10
        """
        if alphabet is None:
            alphabet = Alphabet(sorted(set(text)))
        return cls(np.array(alphabet.encode(text), dtype=np.int64), alphabet)

    @classmethod
    def from_symbols(
        cls,
        symbols: Iterable[Hashable],
        alphabet: Alphabet | None = None,
    ) -> "SymbolSequence":
        """Build a sequence from an iterable of arbitrary symbols."""
        symbols = list(symbols)
        if alphabet is None:
            alphabet = Alphabet.from_sequence(symbols)
        return cls(np.array(alphabet.encode(symbols), dtype=np.int64), alphabet)

    @classmethod
    def from_codes(
        cls, codes: Iterable[int] | np.ndarray, alphabet: Alphabet
    ) -> "SymbolSequence":
        """Build a sequence directly from integer codes."""
        return cls(np.asarray(list(codes) if not isinstance(codes, np.ndarray) else codes, dtype=np.int64), alphabet)

    # -- basic accessors -----------------------------------------------------

    @property
    def codes(self) -> np.ndarray:
        """The (read-only) integer-code array of the series."""
        return self._codes

    @property
    def alphabet(self) -> Alphabet:
        """The alphabet of the series."""
        return self._alphabet

    @property
    def length(self) -> int:
        """The number of timestamps ``n``."""
        return int(self._codes.size)

    @property
    def sigma(self) -> int:
        """The alphabet size, written sigma in the paper."""
        return len(self._alphabet)

    def symbols(self) -> list[Hashable]:
        """The series as a list of symbols."""
        return self._alphabet.decode(self._codes)

    def to_string(self) -> str:
        """The series as a string (requires string symbols)."""
        return "".join(map(str, self.symbols()))

    # -- derived series ------------------------------------------------------

    def shifted(self, p: int) -> "SymbolSequence":
        """``T^(p)``: the series shifted by ``p`` positions (Sect. 3).

        Shifting drops the first ``p`` symbols, so ``shifted(p)[i]``
        equals ``self[i + p]``.
        """
        if not 0 <= p <= self.length:
            raise ValueError(f"shift {p} out of range for length {self.length}")
        return SymbolSequence(self._codes[p:], self._alphabet)

    def concatenated(self, other: "SymbolSequence") -> "SymbolSequence":
        """Concatenate two series over the same alphabet."""
        if other.alphabet != self._alphabet:
            raise ValueError("cannot concatenate over different alphabets")
        return SymbolSequence(
            np.concatenate([self._codes, other.codes]), self._alphabet
        )

    def indicator(self, code: int) -> np.ndarray:
        """0/1 vector marking the positions where symbol ``code`` occurs."""
        return (self._codes == code).astype(np.float64)

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return self.length

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.symbols())

    def __getitem__(self, item: int | slice) -> "SymbolSequence | Hashable":
        if isinstance(item, slice):
            return SymbolSequence(self._codes[item], self._alphabet)
        return self._alphabet.symbol(int(self._codes[item]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SymbolSequence):
            return NotImplemented
        return self._alphabet == other._alphabet and np.array_equal(
            self._codes, other._codes
        )

    def __hash__(self) -> int:
        return hash((self._alphabet, self._codes.tobytes()))

    def __repr__(self) -> str:
        preview = self.to_string() if self.length <= 32 else (
            "".join(map(str, self._alphabet.decode(self._codes[:29]))) + "..."
        )
        return f"SymbolSequence({preview!r}, n={self.length}, sigma={self.sigma})"

"""Segment periodicity: whole-period repetition scores.

The paper defines periodicity symbol by symbol (Definition 1).  Its
companion line of work (the authors' periodicity-detection follow-up)
also scores *segment periodicity* — how strongly the series repeats as a
whole at shift ``p``, regardless of which symbol matches where:

    segment_support(p) = |{ j : t_j = t_{j+p} }| / (n - p)

This drops out of the very same convolution the miner already runs —
``sum_k M_k(p)`` over the per-symbol match counts — so it costs nothing
extra and makes a convenient first-pass period screen: symbol
periodicities always imply segment evidence, never the other way
around.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sequence import SymbolSequence
from .spectral_miner import SpectralMiner

__all__ = ["SegmentPeriodicity", "segment_supports", "segment_periodicities"]


@dataclass(frozen=True, slots=True, order=True)
class SegmentPeriodicity:
    """One segment-level periodicity: shift ``period`` with its support."""

    period: int
    matches: int
    aligned: int

    @property
    def support(self) -> float:
        """Fraction of aligned positions that repeat at this shift."""
        return self.matches / self.aligned if self.aligned > 0 else 0.0


def segment_supports(
    series: SymbolSequence, max_period: int | None = None
) -> np.ndarray:
    """``segment_support(p)`` for every shift ``0..max_period``.

    Entry 0 is 1.0 by convention (a series trivially matches itself).
    One batch of per-symbol FFT autocorrelations computes all shifts.
    """
    n = series.length
    if n < 2:
        return np.ones(1)
    miner = SpectralMiner(max_period=max_period)
    counts = miner.match_counts(series)
    max_p = counts.shape[1] - 1
    totals = counts.sum(axis=0).astype(np.float64)
    aligned = n - np.arange(max_p + 1, dtype=np.float64)
    supports = np.divide(totals, aligned, out=np.zeros(max_p + 1), where=aligned > 0)
    supports[0] = 1.0
    return supports


def segment_periodicities(
    series: SymbolSequence,
    psi: float,
    max_period: int | None = None,
    min_aligned: int = 2,
) -> list[SegmentPeriodicity]:
    """All shifts whose segment support reaches ``psi``, ascending.

    ``min_aligned`` discards shifts so close to ``n`` that almost no
    positions align (where support 1.0 is vacuous).
    """
    if not 0 < psi <= 1:
        raise ValueError("the periodicity threshold must be in (0, 1]")
    if min_aligned < 1:
        raise ValueError("min_aligned must be >= 1")
    n = series.length
    supports = segment_supports(series, max_period)
    out: list[SegmentPeriodicity] = []
    for p in range(1, supports.size):
        aligned = n - p
        if aligned < min_aligned:
            break
        if supports[p] >= psi:
            out.append(
                SegmentPeriodicity(
                    period=p,
                    matches=int(round(supports[p] * aligned)),
                    aligned=aligned,
                )
            )
    return out

"""Command-line interface: mine, inspect, generate, and reproduce.

Installed as the ``repro`` console script (also ``python -m repro``):

* ``repro mine SERIES.txt --psi 0.7`` — mine obscure periodic patterns
  from a one-character-per-symbol text file;
* ``repro periods SERIES.txt --psi 0.5 [--significant]`` — list the
  candidate periods (optionally filtered by the binomial null test);
* ``repro stream SERIES.txt --psi 0.6 [--window W] [--chunk-size C]`` —
  mine through the chunked streaming layer (online or sliding-window);
* ``repro generate {synthetic,power,retail,eventlog} --out FILE`` —
  write workload files with the paper's generators;
* ``repro experiment {fig3,fig4,fig5,fig6,table1,table2,table3}`` —
  regenerate one table or figure of the paper and print it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .analysis.significance import significant_periods
from .core import ENGINES, Alphabet, SymbolSequence, mine
from .core.spectral_miner import SpectralMiner
from .parallel import FAULT_POLICIES
from .data import (
    EventLogSimulator,
    PowerConsumptionSimulator,
    RetailTransactionsSimulator,
    apply_noise,
    generate_periodic,
)
from .streaming import write_symbol_file

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The full argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Obscure periodic pattern mining in one pass (EDBT 2004).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    mine_cmd = commands.add_parser("mine", help="mine patterns from a symbol file")
    mine_cmd.add_argument("series", type=Path, help="one-character-per-symbol file")
    mine_cmd.add_argument("--psi", type=float, required=True,
                          help="periodicity threshold in (0, 1]")
    mine_cmd.add_argument("--alphabet", default=None,
                          help="symbol order, e.g. 'abcde' (default: sorted)")
    mine_cmd.add_argument("--algorithm", choices=("spectral", "convolution"),
                          default="spectral")
    mine_cmd.add_argument("--engine",
                          choices=ENGINES,
                          default="bitand",
                          help="exact engine for --algorithm convolution "
                               "(parallel = sharded worker pool)")
    mine_cmd.add_argument("--workers", type=int, default=None,
                          help="worker cap for --engine parallel "
                               "(default: CPU count)")
    mine_cmd.add_argument("--shard-timeout", type=float, default=None,
                          help="--engine parallel: seconds before a hung "
                               "shard is re-dispatched (default: no limit)")
    mine_cmd.add_argument("--max-retries", type=int, default=2,
                          help="--engine parallel: re-dispatches granted to "
                               "a failing shard per backend")
    mine_cmd.add_argument("--on-fault",
                          choices=FAULT_POLICIES,
                          default="fallback",
                          help="--engine parallel: fallback = degrade "
                               "process -> thread -> serial and always "
                               "complete; raise = abort the run")
    mine_cmd.add_argument("--max-period", type=int, default=None)
    mine_cmd.add_argument("--periods", default=None,
                          help="comma-separated periods to mine patterns at")
    mine_cmd.add_argument("--max-arity", type=int, default=None)
    mine_cmd.add_argument("--top", type=int, default=20,
                          help="patterns to print (by support)")

    periods_cmd = commands.add_parser(
        "periods", help="list candidate periods of a symbol file"
    )
    periods_cmd.add_argument("series", type=Path)
    periods_cmd.add_argument("--psi", type=float, required=True)
    periods_cmd.add_argument("--alphabet", default=None)
    periods_cmd.add_argument("--max-period", type=int, default=None)
    periods_cmd.add_argument("--min-pairs", type=int, default=1)
    periods_cmd.add_argument("--significant", action="store_true",
                             help="keep only binomially significant periods")
    periods_cmd.add_argument("--alpha", type=float, default=1e-3)
    periods_cmd.add_argument("--bases", action="store_true",
                             help="collapse harmonic families to base periods")
    periods_cmd.add_argument("--sample-seconds", type=float, default=None,
                             help="sampling interval; names periods in "
                                  "calendar units and flags DST-style variants")

    generate_cmd = commands.add_parser("generate", help="write a workload file")
    generate_cmd.add_argument(
        "workload", choices=("synthetic", "power", "retail", "eventlog")
    )
    generate_cmd.add_argument("--out", type=Path, required=True)
    generate_cmd.add_argument("--seed", type=int, default=2004)
    generate_cmd.add_argument("--length", type=int, default=10_000,
                              help="synthetic/eventlog length in symbols")
    generate_cmd.add_argument("--period", type=int, default=25,
                              help="synthetic embedded period")
    generate_cmd.add_argument("--sigma", type=int, default=10,
                              help="synthetic alphabet size")
    generate_cmd.add_argument("--distribution", choices=("uniform", "normal"),
                              default="uniform")
    generate_cmd.add_argument("--noise", type=float, default=0.0,
                              help="noise ratio in [0, 1]")
    generate_cmd.add_argument("--noise-kinds", default="R",
                              help="noise combination, e.g. R, I-D, R-I-D")
    generate_cmd.add_argument("--days", type=int, default=None,
                              help="power/retail length in days")
    generate_cmd.add_argument("--dst", action="store_true",
                              help="retail: apply the daylight-saving shift")

    stream_cmd = commands.add_parser(
        "stream",
        help="mine a symbol file through the chunked streaming layer",
    )
    stream_cmd.add_argument("series", type=Path)
    stream_cmd.add_argument("--psi", type=float, required=True,
                            help="periodicity threshold in (0, 1]")
    stream_cmd.add_argument("--alphabet", default=None,
                            help="symbol order; when given, the file is "
                                 "streamed block-by-block without ever "
                                 "loading it whole")
    stream_cmd.add_argument("--max-period", type=int, default=128,
                            help="largest period maintained (default 128)")
    stream_cmd.add_argument("--window", type=int, default=None,
                            help="sliding-window length; omit for "
                                 "whole-stream online mining")
    stream_cmd.add_argument("--chunk-size", type=int, default=None,
                            help="ingestion block size (default: the "
                                 "miners' built-in chunk size)")
    stream_cmd.add_argument("--top", type=int, default=20,
                            help="periodicities to print (by support)")

    forecast_cmd = commands.add_parser(
        "forecast", help="predict upcoming symbols from mined periodicity"
    )
    forecast_cmd.add_argument("series", type=Path)
    forecast_cmd.add_argument("--horizon", type=int, required=True)
    forecast_cmd.add_argument("--period", type=int, default=None,
                              help="condition on this period (default: discover)")
    forecast_cmd.add_argument("--max-period", type=int, default=None)
    forecast_cmd.add_argument("--alphabet", default=None)
    forecast_cmd.add_argument("--evaluate", action="store_true",
                              help="hold out the horizon and report accuracy")

    experiment_cmd = commands.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment_cmd.add_argument(
        "name",
        choices=("fig3", "fig3b", "fig4", "fig4b", "fig5", "fig6",
                 "table1", "table2", "table3", "all"),
    )
    experiment_cmd.add_argument("--quick", action="store_true",
                                help="smaller workloads (seconds, not minutes)")
    experiment_cmd.add_argument("--report", type=Path, default=None,
                                help="with 'all': also write a markdown report")
    return parser


def _load_series(path: Path, alphabet_spec: str | None) -> SymbolSequence:
    text = path.read_text(encoding="ascii").strip()
    if not text:
        raise SystemExit(f"error: {path} is empty")
    alphabet = Alphabet(alphabet_spec) if alphabet_spec else None
    try:
        return SymbolSequence.from_string(text, alphabet)
    except KeyError as error:
        raise SystemExit(f"error: symbol {error} not in the given alphabet")


def _cmd_mine(args: argparse.Namespace) -> int:
    series = _load_series(args.series, args.alphabet)
    periods = (
        [int(p) for p in args.periods.split(",")] if args.periods else None
    )
    result = mine(
        series,
        psi=args.psi,
        algorithm=args.algorithm,
        max_period=args.max_period,
        periods=periods,
        max_arity=args.max_arity,
        engine=args.engine,
        workers=args.workers,
        shard_timeout=args.shard_timeout,
        max_retries=args.max_retries,
        on_fault=args.on_fault,
    )
    print(f"series: n={series.length}, sigma={series.sigma}")
    print(result.render(limit=args.top))
    return 0


def _cmd_periods(args: argparse.Namespace) -> int:
    series = _load_series(args.series, args.alphabet)
    miner = SpectralMiner(psi=args.psi, max_period=args.max_period)
    table = miner.periodicity_table(series)
    if args.significant:
        periods = significant_periods(
            series, table, args.psi, alpha=args.alpha, min_pairs=args.min_pairs
        )
    else:
        periods = table.candidate_periods(args.psi, min_pairs=args.min_pairs)
    print(f"candidate periods at psi={args.psi:.2f}: {len(periods)}")
    if args.bases:
        from .analysis.harmonics import group_harmonics

        for family in group_harmonics(periods, table.confidence):
            harmonics = ", ".join(map(str, family.harmonics)) or "-"
            print(
                f"  base {family.base:>6}  confidence {family.confidence:.3f}"
                f"  harmonics: {harmonics}"
            )
    else:
        describe = None
        if args.sample_seconds is not None:
            from .analysis.calendar import describe_period

            describe = describe_period
        for period in periods:
            line = f"  {period:>6}  confidence {table.confidence(period):.3f}"
            if describe is not None:
                description = describe(period, args.sample_seconds)
                marker = "  [obscure]" if description.is_obscure_variant else ""
                line += f"  = {description.text}{marker}"
            print(line)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    if args.workload == "synthetic":
        series = generate_periodic(
            args.length, args.period, args.sigma, args.distribution, rng
        )
        if args.noise > 0:
            series = apply_noise(series, args.noise, args.noise_kinds, rng)
    elif args.workload == "power":
        series = PowerConsumptionSimulator(days=args.days or 365).series(rng)
    elif args.workload == "retail":
        series = RetailTransactionsSimulator(
            days=args.days or 456, dst=args.dst
        ).series(rng)
    else:
        series = EventLogSimulator(length=args.length).series(rng)
    write_symbol_file(series, args.out)
    print(f"wrote {series.length} symbols (sigma={series.sigma}) to {args.out}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from .streaming import DEFAULT_CHUNK_SIZE, ChunkedReader, OnlineMiner, SlidingWindowMiner

    chunk_size = args.chunk_size or DEFAULT_CHUNK_SIZE
    if chunk_size < 1:
        raise SystemExit("error: --chunk-size must be positive")
    if args.alphabet:
        # True one-pass mode: never hold more than a block in memory.
        alphabet = Alphabet(args.alphabet)
        reader = ChunkedReader(args.series, alphabet=alphabet,
                               block_size=chunk_size)
    else:
        series = _load_series(args.series, None)
        alphabet = series.alphabet
        reader = ChunkedReader(series, block_size=chunk_size)
    if args.window is not None:
        miner: OnlineMiner | SlidingWindowMiner = SlidingWindowMiner(
            alphabet, max_period=args.max_period, window=args.window,
            chunk_size=chunk_size,
        )
    else:
        miner = OnlineMiner(
            alphabet, max_period=args.max_period, chunk_size=chunk_size
        )
    try:
        fed = reader.feed_into(miner)
    except KeyError as error:
        raise SystemExit(f"error: symbol {error} not in the given alphabet")
    scope = (
        f"window of last {miner.size}" if isinstance(miner, SlidingWindowMiner)
        else "whole stream"
    )
    print(
        f"streamed {fed} symbols (sigma={len(alphabet)}, "
        f"chunk={chunk_size}); evidence over the {scope}"
    )
    hits = miner.periodicities(args.psi)
    hits.sort(key=lambda h: -h.support)
    print(f"periodicities at psi={args.psi:.2f}: {len(hits)}")
    for hit in hits[: args.top]:
        print(
            f"  period {hit.period:>5}  pos {hit.position:>5}  "
            f"symbol {alphabet.symbol(hit.symbol_code)!r}  "
            f"support {hit.support:.3f}"
        )
    return 0


def _cmd_forecast(args: argparse.Namespace) -> int:
    from .analysis.forecast import PeriodicForecaster, evaluate_forecaster

    series = _load_series(args.series, args.alphabet)
    if args.evaluate:
        evaluation = evaluate_forecaster(
            series, args.horizon, period=args.period, max_period=args.max_period
        )
        print(
            f"hold-out accuracy over {evaluation.horizon} symbols: "
            f"{evaluation.accuracy:.3f} "
            f"(mode baseline {evaluation.baseline_accuracy:.3f}, "
            f"lift {evaluation.lift:+.3f})"
        )
        return 0
    forecaster = PeriodicForecaster(
        period=args.period, max_period=args.max_period
    ).fit(series)
    predicted = forecaster.predict(args.horizon)
    print(f"period: {forecaster.period}")
    print("forecast: " + "".join(map(str, predicted)))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.name == "all":
        from .experiments import run_all, write_report

        results = run_all(quick=args.quick)
        for name, text in results.items():
            print(f"==== {name} ====")
            print(text)
            print()
        if args.report is not None:
            path = write_report(results, args.report)
            print(f"report written to {path}")
        return 0

    from .experiments import (
        Fig3Config, Fig4Config, Fig5Config, Fig6Config,
        Table1Config, Table2Config, Table3Config,
        render_fig3, render_fig4, render_fig5, render_fig6,
        render_table1, render_table2, render_table3,
    )

    quick = args.quick
    renderers = {
        "fig3": lambda: render_fig3(
            Fig3Config(runs=1, length=10_000) if quick else Fig3Config()
        ),
        "fig3b": lambda: render_fig3(
            Fig3Config(noisy=True, runs=1, length=10_000)
            if quick else Fig3Config(noisy=True)
        ),
        "fig4": lambda: render_fig4(
            Fig4Config(runs=1, length=4_000, method="exact")
            if quick else Fig4Config()
        ),
        "fig4b": lambda: render_fig4(
            Fig4Config(noisy=True, runs=1, length=4_000, method="exact")
            if quick else Fig4Config(noisy=True)
        ),
        "fig5": lambda: render_fig5(
            Fig5Config(sizes=(4_096, 8_192, 16_384), repeats=2)
            if quick else Fig5Config()
        ),
        "fig6": lambda: render_fig6(
            Fig6Config(runs=1, length=10_000, ratios=(0.0, 0.2, 0.4))
            if quick else Fig6Config()
        ),
        "table1": lambda: render_table1(
            Table1Config(retail_days=120, retail_max_period=200)
            if quick else Table1Config()
        ),
        "table2": lambda: render_table2(
            Table2Config(retail_days=120) if quick else Table2Config()
        ),
        "table3": lambda: render_table3(
            Table3Config(retail_days=120) if quick else Table3Config()
        ),
    }
    print(renderers[args.name]())
    return 0


_HANDLERS = {
    "mine": _cmd_mine,
    "periods": _cmd_periods,
    "generate": _cmd_generate,
    "stream": _cmd_stream,
    "forecast": _cmd_forecast,
    "experiment": _cmd_experiment,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that's a clean exit.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""repro.lint — static analysis of this repository's own invariants.

The test suite samples behaviour; these analyzers enforce the
structural invariants the exact miner's correctness rests on — packed
``uint64`` arithmetic discipline, shared-memory lifecycle, picklable
process-pool targets, engine-registry parity, and library hygiene —
over every scanned file, statically.  Run with::

    python -m repro.lint [paths]      # default: src
    python -m repro.lint --list-rules

Suppress a finding on one line with ``# repro-lint: ignore[RL001]``
(or bare ``# repro-lint: ignore`` for every rule).  The companion
annotation gate (``python -m repro.lint.annotations``) backs the
``make typecheck`` target when mypy is not installed.
"""

from .framework import FileContext, Finding, ProjectRule, Rule
from .rules import FILE_RULES, PROJECT_RULES, all_rules
from .runner import collect_files, lint_paths, lint_sources, main

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "ProjectRule",
    "FILE_RULES",
    "PROJECT_RULES",
    "all_rules",
    "collect_files",
    "lint_paths",
    "lint_sources",
    "main",
]

"""``python -m repro.lint`` — run the static analyzers."""

import sys

from .runner import main

if __name__ == "__main__":
    sys.exit(main())

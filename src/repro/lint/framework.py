"""Core machinery of the repro static analyzer.

A *rule* inspects one parsed file (:class:`Rule`) or the whole scanned
file set at once (:class:`ProjectRule`, for cross-file invariants like
the engine-registry parity check) and yields :class:`Finding` records.
Findings are suppressed per line with a trailing comment::

    risky_line()  # repro-lint: ignore[RL001]
    risky_line()  # repro-lint: ignore[RL001, RL002]
    risky_line()  # repro-lint: ignore

The bare form suppresses every rule on that line.  Suppressions are
collected with :mod:`tokenize` so they work anywhere a comment can
appear, including inside multi-line expressions (the comment's own line
is the one matched against the finding).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "ProjectRule",
    "parse_suppressions",
    "SUPPRESS_ALL",
]

#: sentinel rule id meaning "every rule" in a suppression set.
SUPPRESS_ALL = "*"

_SUPPRESSION = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
)


@dataclass(frozen=True, slots=True, order=True)
class Finding:
    """One rule violation, pointing at a file position."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The conventional ``path:line:col: RULE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Per-line suppressed rule ids from ``# repro-lint: ignore`` comments."""
    out: dict[int, frozenset[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError):  # pragma: no cover - defensive
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION.search(tok.string)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressed = frozenset((SUPPRESS_ALL,))
        else:
            suppressed = frozenset(
                r.strip().upper() for r in rules.split(",") if r.strip()
            )
            if not suppressed:
                suppressed = frozenset((SUPPRESS_ALL,))
        line = tok.start[0]
        out[line] = out.get(line, frozenset()) | suppressed
    return out


class FileContext:
    """One scanned Python file: path, source, AST, and suppressions."""

    __slots__ = ("path", "source", "tree", "suppressions")

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.suppressions = parse_suppressions(source)

    @classmethod
    def from_source(cls, source: str, path: str = "<string>") -> "FileContext":
        """Parse a source string (raises ``SyntaxError`` on bad input)."""
        return cls(path, source, ast.parse(source, filename=path))

    @classmethod
    def from_path(cls, path: Path) -> "FileContext":
        """Read and parse a file from disk."""
        return cls.from_source(
            path.read_text(encoding="utf-8"), path=str(path)
        )

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is suppressed on ``line`` of this file."""
        suppressed = self.suppressions.get(line)
        if not suppressed:
            return False
        return SUPPRESS_ALL in suppressed or rule.upper() in suppressed

    def finding(
        self, rule: "Rule | ProjectRule", node: ast.AST, message: str
    ) -> Finding:
        """A :class:`Finding` of ``rule`` anchored at ``node``."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule.id,
            message=message,
        )


class Rule:
    """A single-file analyzer.  Subclasses set the metadata and
    implement :meth:`check`."""

    #: short stable identifier, e.g. ``"RL001"``.
    id: str = ""
    #: one-line human name.
    name: str = ""
    #: why the invariant matters for this repository.
    rationale: str = ""

    def applies(self, path: str) -> bool:
        """Whether the rule scans ``path`` at all (default: every file)."""
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every violation in one file."""
        raise NotImplementedError

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        """:meth:`check` filtered through the file's suppressions."""
        if not self.applies(ctx.path):
            return
        for finding in self.check(ctx):
            if not ctx.is_suppressed(finding.rule, finding.line):
                yield finding


class ProjectRule:
    """A cross-file analyzer over the whole scanned set.

    ``docs`` maps the path of each scanned documentation file (markdown)
    to its text, so registry-parity style rules can reach beyond code.
    """

    id: str = ""
    name: str = ""
    rationale: str = ""

    def check_project(
        self, contexts: list[FileContext], docs: dict[str, str]
    ) -> Iterator[Finding]:
        """Yield every violation across the scanned file set."""
        raise NotImplementedError

    def run_project(
        self, contexts: list[FileContext], docs: dict[str, str]
    ) -> Iterator[Finding]:
        """:meth:`check_project` filtered through per-file suppressions."""
        by_path = {ctx.path: ctx for ctx in contexts}
        for finding in self.check_project(contexts, docs):
            ctx = by_path.get(finding.path)
            if ctx is None or not ctx.is_suppressed(finding.rule, finding.line):
                yield finding

"""File collection, rule execution, and the CLI of ``repro.lint``.

``python -m repro.lint [paths]`` scans the given files/directories
(default: ``src``), runs every registered rule, prints findings as
``path:line:col: RULE message``, and exits non-zero when anything was
found.  Markdown files in the scanned set feed the cross-file rules
(engine-registry parity checks documentation too).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Iterable, Sequence
from pathlib import Path

from .framework import FileContext, Finding
from .rules import FILE_RULES, PROJECT_RULES, all_rules

__all__ = ["collect_files", "lint_paths", "lint_sources", "main"]

#: directories never scanned, even when nested under a given path.
_SKIP_DIRS = frozenset({
    ".git", "__pycache__", ".pytest_cache", "build", "dist", ".eggs",
})


def collect_files(paths: Sequence[str | Path]) -> tuple[list[Path], list[Path]]:
    """Expand paths into ``(python_files, markdown_files)``, sorted."""
    python: set[Path] = set()
    markdown: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in path.rglob("*"):
                if any(part in _SKIP_DIRS for part in child.parts):
                    continue
                if child.suffix == ".py":
                    python.add(child)
                elif child.suffix == ".md":
                    markdown.add(child)
        elif path.suffix == ".py":
            python.add(path)
        elif path.suffix == ".md":
            markdown.add(path)
    return sorted(python), sorted(markdown)


def _select(rule_id: str, selected: frozenset[str] | None) -> bool:
    return selected is None or rule_id in selected


def lint_sources(
    contexts: list[FileContext],
    docs: dict[str, str] | None = None,
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Run every rule over already-parsed contexts (the library API)."""
    selected = (
        frozenset(r.upper() for r in select) if select is not None else None
    )
    findings: list[Finding] = []
    for ctx in contexts:
        for rule in FILE_RULES:
            if _select(rule.id, selected):
                findings.extend(rule.run(ctx))
    for project_rule in PROJECT_RULES:
        if _select(project_rule.id, selected):
            findings.extend(project_rule.run_project(contexts, docs or {}))
    return sorted(findings)


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
) -> list[Finding]:
    """Scan files/directories and return every finding, sorted."""
    python_files, markdown_files = collect_files(paths)
    contexts: list[FileContext] = []
    findings: list[Finding] = []
    for path in python_files:
        try:
            contexts.append(FileContext.from_path(path))
        except SyntaxError as error:
            findings.append(
                Finding(
                    path=str(path),
                    line=error.lineno or 1,
                    col=(error.offset or 0) + 1,
                    rule="PARSE",
                    message=f"syntax error: {error.msg}",
                )
            )
    docs = {
        str(path): path.read_text(encoding="utf-8")
        for path in markdown_files
    }
    findings.extend(lint_sources(contexts, docs, select=select))
    return sorted(findings)


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"       {rule.rationale}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro.lint``; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Static analysis of this repository's own invariants.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    select = (
        [r.strip() for r in args.select.split(",") if r.strip()]
        if args.select
        else None
    )
    findings = lint_paths(args.paths, select=select)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0

"""Small AST helpers shared by the lint rules."""

from __future__ import annotations

import ast
from collections.abc import Iterator

__all__ = [
    "call_name",
    "dotted_name",
    "is_int_literal",
    "walk_functions",
    "pytest_raises_ranges",
    "line_in_ranges",
]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """The trailing identifier of a call target (``np.uint64`` -> ``uint64``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def is_int_literal(node: ast.AST) -> bool:
    """An ``int`` constant, possibly under unary ``-``/``+``/``~``."""
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd, ast.Invert)
    ):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    )


def walk_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function definition in the tree, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def pytest_raises_ranges(tree: ast.AST) -> list[tuple[int, int]]:
    """Line ranges of ``with pytest.raises(...)`` bodies.

    Negative tests legitimately feed invalid literals to the code under
    test; registry-parity style rules skip anything inside these ranges.
    """
    ranges: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Call)
                and dotted_name(expr.func) in ("pytest.raises", "raises")
            ):
                end = getattr(node, "end_lineno", None) or node.lineno
                ranges.append((node.lineno, end))
                break
    return ranges


def line_in_ranges(line: int, ranges: list[tuple[int, int]]) -> bool:
    """Whether ``line`` falls inside any inclusive ``(lo, hi)`` range."""
    return any(lo <= line <= hi for lo, hi in ranges)

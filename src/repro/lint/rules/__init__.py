"""The rule registry of the repro static analyzer.

Adding a rule: implement :class:`~repro.lint.framework.Rule` (one file)
or :class:`~repro.lint.framework.ProjectRule` (cross-file) in a new
``rlNNN_*.py`` module, give it a unique ``id``, and list an instance
here.  See ``docs/development.md`` for the full walkthrough.
"""

from __future__ import annotations

from ..framework import ProjectRule, Rule
from .rl001_uint64 import Uint64Safety
from .rl002_sharedmem import SharedMemoryLifecycle
from .rl003_picklable import PicklableExecutorTargets
from .rl004_engines import EngineRegistryParity
from .rl005_hygiene import LibraryHygiene

__all__ = ["FILE_RULES", "PROJECT_RULES", "all_rules"]

FILE_RULES: tuple[Rule, ...] = (
    Uint64Safety(),
    SharedMemoryLifecycle(),
    PicklableExecutorTargets(),
    LibraryHygiene(),
)

PROJECT_RULES: tuple[ProjectRule, ...] = (EngineRegistryParity(),)


def all_rules() -> tuple[Rule | ProjectRule, ...]:
    """Every registered rule, file-scoped first, ordered by id."""
    return tuple(
        sorted(FILE_RULES + PROJECT_RULES, key=lambda rule: rule.id)
    )

"""RL003 — process-pool targets must be picklable.

``ProcessPoolExecutor.submit``/``map`` pickle the callable into the
worker.  Lambdas, functions defined inside another function (closures),
and ``self.method`` bound methods all fail that pickling — but only at
*runtime*, on the first submit, often long after the code path was
written (the parallel engine falls back to threads on small inputs, so
the process path is easy to leave untested locally).  The rule tracks
names bound to ``ProcessPoolExecutor(...)`` (assignments and
``with ... as pool``) and flags submissions whose target is:

* a ``lambda`` expression,
* a ``self.``/``cls.``-bound method,
* a function defined inside the submitting function (a closure).

Module-level functions — the repo convention
(:func:`repro.parallel.engine._mine_shard_shm`) — pass.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..asttools import call_name
from ..framework import FileContext, Finding, Rule

__all__ = ["PicklableExecutorTargets"]

_SUBMIT_METHODS = frozenset({"submit", "map"})


def _pool_bindings(tree: ast.AST) -> set[str]:
    """Names bound to a ``ProcessPoolExecutor(...)`` anywhere in the file."""
    pools: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            if _is_process_pool(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        pools.add(target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if (
                    _is_process_pool(item.context_expr)
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    pools.add(item.optional_vars.id)
    return pools


def _is_process_pool(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and call_name(node) == "ProcessPoolExecutor"
    )


class PicklableExecutorTargets(Rule):
    """Flag unpicklable callables handed to a process pool."""

    id = "RL003"
    name = "picklable executor targets"
    rationale = (
        "lambdas/closures/bound methods break at pickling time on the "
        "first process-pool submit, which local thread-pool fallbacks hide"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if "ProcessPoolExecutor" not in ctx.source:
            return
        pools = _pool_bindings(ctx.tree)
        if not pools:
            return
        # Map each function to the names of functions nested inside it,
        # so closure targets can be recognised.
        for scope in ast.walk(ctx.tree):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = {
                    inner.name
                    for stmt in ast.walk(scope)
                    for inner in [stmt]
                    if isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    and inner is not scope
                }
                yield from self._check_scope(ctx, scope, pools, nested)
        yield from self._check_scope(ctx, ctx.tree, pools, set())

    def _check_scope(
        self,
        ctx: FileContext,
        scope: ast.AST,
        pools: set[str],
        nested: set[str],
    ) -> Iterator[Finding]:
        for node in self._own_nodes(scope):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _SUBMIT_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in pools
            ):
                continue
            if not node.args:
                continue
            target = node.args[0]
            if isinstance(target, ast.Lambda):
                yield ctx.finding(
                    self,
                    target,
                    "lambda submitted to a process pool cannot be pickled; "
                    "use a module-level function",
                )
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in ("self", "cls")
            ):
                yield ctx.finding(
                    self,
                    target,
                    "bound method submitted to a process pool cannot be "
                    "pickled; use a module-level function",
                )
            elif isinstance(target, ast.Name) and target.id in nested:
                yield ctx.finding(
                    self,
                    target,
                    f"closure {target.id!r} submitted to a process pool "
                    "cannot be pickled; move it to module level",
                )

    @staticmethod
    def _own_nodes(scope: ast.AST) -> Iterator[ast.AST]:
        """Nodes of ``scope`` excluding nested function/class bodies."""
        stack: list[ast.AST] = (
            list(scope.body)
            if isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
            )
            else [scope]
        )
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested scope: analysed on its own
            yield node
            stack.extend(ast.iter_child_nodes(node))

"""RL002 — every ``SharedMemory`` handle must reach ``close()``.

The parallel witness engine ships the packed word array to workers via
:mod:`multiprocessing.shared_memory`.  A handle that is not closed on
*every* path — including the exception path — pins the mapping: the
parent's ``unlink`` then leaks the segment until process exit, and on
platforms with small ``/dev/shm`` a long-running miner eventually
fails all allocations.  The repo's convention
(:mod:`repro.parallel.transport`) is: the owner closes in a
``try/finally`` (or a context manager), or transfers ownership by
returning the handle.

The rule flags any function where a handle is acquired —
``SharedMemory(...)`` directly, or through an attach helper like
``attach_words(...)`` (last element of the unpacked tuple) — and

* the handle is never assigned to a name (nothing can close it), or
* the name's ``close()`` is not called from the ``finally`` block of a
  ``try`` statement, and the handle is neither returned/yielded
  (ownership transfer), stored on ``self`` (class-managed lifecycle),
  nor used as a context manager.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..asttools import call_name
from ..framework import FileContext, Finding, Rule

__all__ = ["SharedMemoryLifecycle"]

#: helpers that return an attached handle as the last tuple element.
_ATTACH_HELPERS = frozenset({"attach_words"})


def _is_shared_memory_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and call_name(node) == "SharedMemory"


def _is_attach_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and call_name(node) in _ATTACH_HELPERS


class _FunctionFacts:
    """Everything RL002 needs to know about one function body."""

    def __init__(self, body: list[ast.stmt]) -> None:
        #: name -> acquisition node, for handles bound to simple names.
        self.handles: dict[str, ast.AST] = {}
        #: acquisition calls whose handle is never bound to a name.
        self.unbound: list[ast.AST] = []
        #: names whose ``.close()`` is called inside some ``finally``.
        self.closed_in_finally: set[str] = set()
        #: names that escape: returned, yielded, or used in ``with``.
        self.escaped: set[str] = set()
        self._collect(body, in_finally=False)

    def _collect(self, body: list[ast.stmt], in_finally: bool) -> None:
        for stmt in body:
            self._collect_stmt(stmt, in_finally)

    def _collect_stmt(self, stmt: ast.stmt, in_finally: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are analysed on their own
        if in_finally:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "close"
                    and isinstance(node.func.value, ast.Name)
                ):
                    self.closed_in_finally.add(node.func.value.id)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._bind(target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, stmt.value)
        elif isinstance(stmt, ast.Return):
            self._mark_escaped(stmt.value)
            if stmt.value is not None:
                # `return SharedMemory(...)` (possibly in a tuple)
                # transfers ownership; a handle buried deeper — e.g.
                # `return bytes(SharedMemory(...).buf)` — leaks.
                top_level = [stmt.value]
                if isinstance(stmt.value, (ast.Tuple, ast.List)):
                    top_level = list(stmt.value.elts)
                for expr in top_level:
                    if not _is_shared_memory_call(expr):
                        self._scan_value(expr, bound=False)
        elif isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, (ast.Yield, ast.YieldFrom)):
                self._mark_escaped(value.value)
            else:
                self._scan_value(value, bound=False)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name):
                    # `with shm:` / `with closing(shm)`-style usage is
                    # approximated as managed.
                    self.escaped.add(expr.id)
        if isinstance(stmt, ast.Try):
            self._collect(stmt.body, in_finally)
            for handler in stmt.handlers:
                self._collect(handler.body, in_finally)
            self._collect(stmt.orelse, in_finally)
            self._collect(stmt.finalbody, in_finally=True)
            return
        for field in ("body", "orelse"):
            inner = getattr(stmt, field, None)
            if inner:
                self._collect(inner, in_finally)

    def _bind(self, target: ast.AST, value: ast.AST) -> None:
        if _is_shared_memory_call(value):
            if isinstance(target, ast.Name):
                self.handles.setdefault(target.id, value)
            elif isinstance(target, ast.Attribute):
                pass  # self._shm = SharedMemory(...): class-managed
            else:
                self.unbound.append(value)
        elif _is_attach_call(value):
            if isinstance(target, (ast.Tuple, ast.List)) and target.elts:
                last = target.elts[-1]
                if isinstance(last, ast.Name):
                    self.handles.setdefault(last.id, value)
            # bound whole (pair = attach_words(...)) or to an attribute:
            # the tuple owner is responsible; nothing to track by name.
        else:
            self._scan_value(value, bound=False)

    def _scan_value(self, value: ast.AST, bound: bool) -> None:
        """Find acquisition calls buried in an expression.

        ``return SharedMemory(...)`` transfers ownership; a bare
        ``SharedMemory(...).buf`` read leaks the handle.
        """
        for node in ast.walk(value):
            if _is_shared_memory_call(node) and not bound:
                self.unbound.append(node)

    def _mark_escaped(self, value: ast.AST | None) -> None:
        # Only a handle returned/yielded *itself* (possibly in a tuple)
        # transfers ownership; `return bytes(shm.buf)` merely reads
        # through the handle and still leaks it.
        if value is None:
            return
        top_level = [value]
        if isinstance(value, (ast.Tuple, ast.List)):
            top_level = list(value.elts)
        for expr in top_level:
            if isinstance(expr, ast.Starred):
                expr = expr.value
            if isinstance(expr, ast.Name):
                self.escaped.add(expr.id)


class SharedMemoryLifecycle(Rule):
    """Flag ``SharedMemory`` handles that can leak on an exception path."""

    id = "RL002"
    name = "shared-memory lifecycle"
    rationale = (
        "a worker exception must not pin the parent's shared-memory "
        "mapping; close() belongs in try/finally or a context manager"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # Skip files that never touch shared memory (cheap pre-filter).
        if "SharedMemory" not in ctx.source and not any(
            helper in ctx.source for helper in _ATTACH_HELPERS
        ):
            return
        scopes: list[list[ast.stmt]] = [ctx.tree.body]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node.body)
        for body in scopes:
            facts = _FunctionFacts(body)
            for call in facts.unbound:
                yield ctx.finding(
                    self,
                    call,
                    "SharedMemory handle is never bound to a name, so no "
                    "path can close() it",
                )
            for name, acquisition in facts.handles.items():
                if name in facts.closed_in_finally or name in facts.escaped:
                    continue
                yield ctx.finding(
                    self,
                    acquisition,
                    f"shared-memory handle {name!r} is not closed in a "
                    "try/finally (and is neither returned nor used as a "
                    "context manager); an exception would pin the mapping",
                )

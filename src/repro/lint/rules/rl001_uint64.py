"""RL001 — packed-word arithmetic must stay in ``uint64``.

The exact engines evaluate the paper's convolution components as
``X & (X >> sigma*p)`` over packed ``uint64`` word arrays
(:mod:`repro.convolution.bitops`).  Mixing such an array with an
untyped Python ``int`` is the classic silent-corruption footgun: numpy
promotes ``uint64 <op> int`` to ``float64`` or ``object`` depending on
version and value, which either rounds 64-bit words or falls back to
Python bigints — and either way the ``F2`` witness counts behind the
paper's Definition 1 threshold come out wrong without any exception.

The rule tracks, per function scope, which names are known to hold
``uint64`` data (cast via ``np.uint64``, created with
``dtype=np.uint64``, returned by the packed-word kernels, or derived
through shape-preserving helpers like ``zeros_like``) and flags:

* any arithmetic/bitwise ``BinOp`` combining a tracked ``uint64``
  operand with a bare ``int`` literal;
* a shift (``<<``/``>>``) of a tracked ``uint64`` operand by anything
  not itself known to be ``uint64`` (wrap the amount in
  ``np.uint64(...)``).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..asttools import call_name, dotted_name, is_int_literal
from ..framework import FileContext, Finding, Rule

__all__ = ["Uint64Safety"]

#: packed-word kernels whose return value is a uint64 array.
_UINT64_PRODUCERS = frozenset(
    {"pack_positions", "shift_right", "word_and", "shifted_self_and"}
)

#: shape-preserving helpers that keep the dtype of their first argument.
_PASSTHROUGH = frozenset(
    {"zeros_like", "empty_like", "ones_like", "copy", "abs", "copyto"}
)

_BIT_OPS = (ast.LShift, ast.RShift, ast.BitAnd, ast.BitOr, ast.BitXor)
_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod)
_SHIFT_OPS = (ast.LShift, ast.RShift)


def _is_uint64_dtype_node(node: ast.AST) -> bool:
    """``np.uint64`` / ``uint64`` / ``"uint64"`` used as a dtype value."""
    name = dotted_name(node)
    if name is not None:
        return name.rsplit(".", 1)[-1] == "uint64"
    return isinstance(node, ast.Constant) and node.value == "uint64"


class _ScopeTracker:
    """Names known to hold uint64 data within one function/module scope."""

    def __init__(self, inherited: frozenset[str] = frozenset()) -> None:
        self.names: set[str] = set(inherited)

    def is_uint64(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Subscript):
            return self.is_uint64(node.value)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Invert):
            return self.is_uint64(node.operand)
        if isinstance(node, ast.BinOp):
            return self.is_uint64(node.left) and self.is_uint64(node.right)
        if isinstance(node, ast.Call):
            return self._call_is_uint64(node)
        return False

    def _call_is_uint64(self, node: ast.Call) -> bool:
        name = call_name(node)
        if name == "uint64":
            return True
        if name == "astype" and node.args:
            return _is_uint64_dtype_node(node.args[0])
        for keyword in node.keywords:
            if keyword.arg == "dtype" and _is_uint64_dtype_node(keyword.value):
                return True
        if name in _UINT64_PRODUCERS:
            return True
        if name in _PASSTHROUGH and node.args:
            return self.is_uint64(node.args[0])
        return False

    def assign(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if self.is_uint64(value):
                self.names.add(target.id)
            else:
                self.names.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # Tuple unpacking loses the inference; drop every name.
            for element in target.elts:
                self.assign(element, ast.Constant(value=None))


class Uint64Safety(Rule):
    """Flag packed-word arithmetic that can leave ``uint64``."""

    id = "RL001"
    name = "uint64-dtype safety"
    rationale = (
        "uint64 <op> untyped int promotes to float64/object and silently "
        "corrupts the F2 witness counts (paper Def. 1)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_scope = _ScopeTracker()
        yield from self._check_body(ctx, ctx.tree.body, module_scope)

    def _check_body(
        self,
        ctx: FileContext,
        body: list[ast.stmt],
        scope: _ScopeTracker,
    ) -> Iterator[Finding]:
        for stmt in body:
            yield from self._check_stmt(ctx, stmt, scope)

    def _check_stmt(
        self, ctx: FileContext, stmt: ast.stmt, scope: _ScopeTracker
    ) -> Iterator[Finding]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = _ScopeTracker(frozenset(scope.names))
            yield from self._check_body(ctx, stmt.body, inner)
            return
        if isinstance(stmt, ast.ClassDef):
            yield from self._check_body(ctx, stmt.body, _ScopeTracker())
            return
        if isinstance(
            stmt,
            (ast.If, ast.While, ast.For, ast.AsyncFor, ast.With, ast.AsyncWith,
             ast.Try),
        ):
            # Scan only the header expressions here; the bodies are
            # recursed into so the scope keeps evolving statement by
            # statement (and nested defs still open fresh scopes).
            for header in self._header_exprs(stmt):
                yield from self._scan_expr(ctx, header, scope)
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                scope.assign(stmt.target, ast.Constant(value=None))
            for field in ("body", "orelse", "finalbody"):
                inner_body = getattr(stmt, field, None)
                if inner_body:
                    yield from self._check_body(ctx, inner_body, scope)
            for handler in getattr(stmt, "handlers", []):
                yield from self._check_body(ctx, handler.body, scope)
            return
        # Simple statement: scan its expressions, then update the scope
        # afterwards so `x = x & 3` still flags against the old binding.
        if isinstance(stmt, ast.AugAssign):
            yield from self._check_augassign(ctx, stmt, scope)
        yield from self._scan_expr(ctx, stmt, scope)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                scope.assign(target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            scope.assign(stmt.target, stmt.value)

    @staticmethod
    def _header_exprs(stmt: ast.stmt) -> list[ast.expr]:
        if isinstance(stmt, (ast.If, ast.While)):
            return [stmt.test]
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        return []

    def _scan_expr(
        self, ctx: FileContext, root: ast.AST, scope: _ScopeTracker
    ) -> Iterator[Finding]:
        for node in ast.walk(root):
            if isinstance(node, ast.BinOp):
                yield from self._check_binop(ctx, node, scope)

    def _check_binop(
        self, ctx: FileContext, node: ast.BinOp, scope: _ScopeTracker
    ) -> Iterator[Finding]:
        if not isinstance(node.op, _BIT_OPS + _ARITH_OPS):
            return
        left_u64 = scope.is_uint64(node.left)
        right_u64 = scope.is_uint64(node.right)
        if left_u64 == right_u64:
            return
        other = node.right if left_u64 else node.left
        if is_int_literal(other):
            yield ctx.finding(
                self,
                node,
                "uint64 packed-word operand mixed with an untyped int "
                "literal; wrap it in np.uint64(...)",
            )
        elif isinstance(node.op, _SHIFT_OPS) and left_u64:
            yield ctx.finding(
                self,
                node,
                "shift amount applied to a uint64 packed array is not "
                "known to be uint64; cast it with np.uint64(...)",
            )

    def _check_augassign(
        self, ctx: FileContext, node: ast.AugAssign, scope: _ScopeTracker
    ) -> Iterator[Finding]:
        if not isinstance(node.op, _BIT_OPS + _ARITH_OPS):
            return
        if not scope.is_uint64(node.target):
            return
        if is_int_literal(node.value):
            yield ctx.finding(
                self,
                node,
                "in-place uint64 packed-word update with an untyped int "
                "literal; wrap it in np.uint64(...)",
            )
        elif isinstance(node.op, _SHIFT_OPS) and not scope.is_uint64(node.value):
            yield ctx.finding(
                self,
                node,
                "in-place shift of a uint64 packed array by an amount not "
                "known to be uint64; cast it with np.uint64(...)",
            )

"""RL004 — the engine registry is the single source of truth.

:data:`repro.core.convolution_miner.ENGINES` names the exact engines.
The CLI's ``--engine`` choices, the ``Engine`` ``Literal`` alias, every
``engine="..."`` literal in code/tests, and the engine names quoted in
the documentation must all agree with it — a drifted literal either
advertises an engine that raises ``ValueError`` at runtime or hides one
from users and from the cross-engine property tests.

Checks, in both directions:

* the ``Engine = Literal[...]`` alias next to the registry matches it
  exactly;
* any literal ``choices=`` tuple on an ``--engine`` argparse option
  matches the registry (a derived expression such as ``choices=ENGINES``
  always passes — that is the recommended spelling), and a literal
  ``default=`` is a registry member;
* every ``engine=<string>`` keyword argument in scanned Python files
  names a registry engine — except inside ``with pytest.raises(...)``
  bodies, where invalid names are the point of the test;
* every ``engine="..."`` / ``--engine ...`` mention in scanned markdown
  names a registry engine;
* reverse direction: when tests (resp. docs) are part of the scanned
  set, every registry engine appears in at least one test ``engine=``
  literal (resp. somewhere in the documentation text).

The parallel engine's fault-handling registries are held to the same
standard.  :data:`repro.parallel.engine.FAULT_POLICIES` names the
``on_fault`` policies and :data:`~repro.parallel.engine.FALLBACK_CHAIN`
the backend degradation order; when ``engine.py`` is in the scanned
set:

* literal ``choices=`` / ``default=`` on an ``--on-fault`` argparse
  option must match ``FAULT_POLICIES`` (spell it
  ``choices=FAULT_POLICIES``);
* every ``on_fault=<string>`` keyword argument and every
  ``on_fault="..."`` / ``--on-fault ...`` mention in the docs must
  name a registry policy (``pytest.raises`` bodies exempt);
* reverse direction: every policy appears in the docs and in at least
  one test ``on_fault=`` literal, and every backend of the fallback
  chain is mentioned somewhere in the documentation.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from pathlib import Path

from ..asttools import line_in_ranges, pytest_raises_ranges
from ..framework import FileContext, Finding, ProjectRule

__all__ = ["EngineRegistryParity"]

#: module holding the canonical registry.
_REGISTRY_FILE = "convolution_miner.py"
_REGISTRY_NAMES = ("ENGINES", "_ENGINES")

#: module holding the fault-handling registries of the parallel engine.
_POLICY_FILE = "engine.py"
_POLICY_NAMES = ("FAULT_POLICIES",)
_CHAIN_NAMES = ("FALLBACK_CHAIN",)

_DOC_ENGINE = re.compile(r"""engine\s*=\s*\(?["'`]([A-Za-z_]+)["'`]""")
_DOC_ENGINE_EXTRA = re.compile(r"""["'](\w+)["']\s*\|""")
_DOC_CLI_ENGINE = re.compile(r"--engine[= ]\s*([A-Za-z_]+)")
_DOC_POLICY = re.compile(r"""on_fault\s*=\s*\(?["'`]([A-Za-z_]+)["'`]""")
_DOC_CLI_POLICY = re.compile(r"--on-fault[= ]\s*([A-Za-z_]+)")


def _registry_from(
    ctx: FileContext, names: tuple[str, ...] = _REGISTRY_NAMES
) -> tuple[list[str], ast.AST] | None:
    """A module-level ``names`` tuple literal of ``ctx``, if present."""
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign):
            targets: list[ast.expr] = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id in names
                and isinstance(node.value, (ast.Tuple, ast.List))
            ):
                names = [
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ]
                return names, node
    return None


def _literal_alias(ctx: FileContext) -> tuple[set[str], ast.AST] | None:
    """The ``Engine = Literal[...]`` members of the registry module."""
    for node in ctx.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "Engine"
            and isinstance(node.value, ast.Subscript)
        ):
            members = {
                element.value
                for element in ast.walk(node.value.slice)
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            }
            return members, node
    return None


class EngineRegistryParity(ProjectRule):
    """Keep miner, CLI, docs, and tests in engine-registry lockstep."""

    id = "RL004"
    name = "engine-registry parity"
    rationale = (
        "a drifted engine literal advertises an engine that raises at "
        "runtime or hides one from the cross-engine property tests"
    )

    def check_project(
        self, contexts: list[FileContext], docs: dict[str, str]
    ) -> Iterator[Finding]:
        yield from self._check_engine_registry(contexts, docs)
        yield from self._check_fault_registries(contexts, docs)

    def _check_engine_registry(
        self, contexts: list[FileContext], docs: dict[str, str]
    ) -> Iterator[Finding]:
        registry_ctx = next(
            (
                ctx
                for ctx in contexts
                if Path(ctx.path).name == _REGISTRY_FILE
                and _registry_from(ctx) is not None
            ),
            None,
        )
        if registry_ctx is None:
            return  # registry not in the scanned set; nothing to compare
        found = _registry_from(registry_ctx)
        assert found is not None
        engines, _ = found
        known = set(engines)

        alias = _literal_alias(registry_ctx)
        if alias is not None:
            members, node = alias
            if members != known:
                yield registry_ctx.finding(
                    self,
                    node,
                    f"Engine Literal members {sorted(members)} do not match "
                    f"the ENGINES registry {sorted(known)}",
                )

        tested: set[str] = set()
        any_tests = False
        for ctx in contexts:
            is_test = self._is_test_path(ctx.path)
            any_tests = any_tests or is_test
            raises = pytest_raises_ranges(ctx.tree)
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                yield from self._check_engine_kwargs(
                    ctx, node, known, raises, is_test, tested
                )
                yield from self._check_argparse(ctx, node, known)

        for path, text in docs.items():
            yield from self._check_doc(path, text, known)
        if docs:
            text_all = "\n".join(docs.values())
            for engine in engines:
                if not re.search(rf"\b{re.escape(engine)}\b", text_all):
                    yield Finding(
                        path=registry_ctx.path,
                        line=1,
                        col=1,
                        rule=self.id,
                        message=(
                            f"engine {engine!r} is in the registry but "
                            "never mentioned in the scanned documentation"
                        ),
                    )
        if any_tests:
            for engine in engines:
                if engine not in tested:
                    yield Finding(
                        path=registry_ctx.path,
                        line=1,
                        col=1,
                        rule=self.id,
                        message=(
                            f"engine {engine!r} is in the registry but no "
                            "scanned test exercises engine=\""
                            f"{engine}\""
                        ),
                    )

    def _check_fault_registries(
        self, contexts: list[FileContext], docs: dict[str, str]
    ) -> Iterator[Finding]:
        policy_ctx = next(
            (
                ctx
                for ctx in contexts
                if Path(ctx.path).name == _POLICY_FILE
                and _registry_from(ctx, _POLICY_NAMES) is not None
            ),
            None,
        )
        if policy_ctx is None:
            return  # parallel engine not in the scanned set
        found = _registry_from(policy_ctx, _POLICY_NAMES)
        assert found is not None
        policies, _ = found
        known = set(policies)

        tested: set[str] = set()
        any_tests = False
        for ctx in contexts:
            is_test = self._is_test_path(ctx.path)
            any_tests = any_tests or is_test
            raises = pytest_raises_ranges(ctx.tree)
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                yield from self._check_policy_kwargs(
                    ctx, node, known, raises, is_test, tested
                )
                yield from self._check_policy_argparse(ctx, node, known)

        for path, text in docs.items():
            yield from self._check_policy_doc(path, text, known)
        if docs:
            text_all = "\n".join(docs.values())
            for policy in policies:
                if not re.search(rf"\b{re.escape(policy)}\b", text_all):
                    yield Finding(
                        path=policy_ctx.path,
                        line=1,
                        col=1,
                        rule=self.id,
                        message=(
                            f"fault policy {policy!r} is in FAULT_POLICIES "
                            "but never mentioned in the scanned documentation"
                        ),
                    )
            chain = _registry_from(policy_ctx, _CHAIN_NAMES)
            if chain is not None:
                for backend in chain[0]:
                    if not re.search(rf"\b{re.escape(backend)}\b", text_all):
                        yield Finding(
                            path=policy_ctx.path,
                            line=1,
                            col=1,
                            rule=self.id,
                            message=(
                                f"fallback backend {backend!r} is in "
                                "FALLBACK_CHAIN but never mentioned in the "
                                "scanned documentation"
                            ),
                        )
        if any_tests:
            for policy in policies:
                if policy not in tested:
                    yield Finding(
                        path=policy_ctx.path,
                        line=1,
                        col=1,
                        rule=self.id,
                        message=(
                            f"fault policy {policy!r} is in FAULT_POLICIES "
                            "but no scanned test exercises on_fault=\""
                            f"{policy}\""
                        ),
                    )

    def _check_policy_kwargs(
        self,
        ctx: FileContext,
        node: ast.Call,
        known: set[str],
        raises: list[tuple[int, int]],
        is_test: bool,
        tested: set[str],
    ) -> Iterator[Finding]:
        for keyword in node.keywords:
            if keyword.arg != "on_fault":
                continue
            value = keyword.value
            if not (
                isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                continue
            if value.value in known:
                if is_test:
                    tested.add(value.value)
                continue
            if line_in_ranges(value.lineno, raises):
                continue  # negative test: the invalid policy is the point
            yield ctx.finding(
                self,
                value,
                f"fault policy {value.value!r} is not in the FAULT_POLICIES "
                f"registry ({sorted(known)})",
            )

    def _check_policy_argparse(
        self, ctx: FileContext, node: ast.Call, known: set[str]
    ) -> Iterator[Finding]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "add_argument"):
            return
        if not (
            node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == "--on-fault"
        ):
            return
        for keyword in node.keywords:
            if keyword.arg == "choices" and isinstance(
                keyword.value, (ast.Tuple, ast.List, ast.Set)
            ):
                literal = {
                    element.value
                    for element in keyword.value.elts
                    if isinstance(element, ast.Constant)
                }
                if literal != known:
                    yield ctx.finding(
                        self,
                        keyword.value,
                        "--on-fault choices are hand-listed and drift from "
                        f"the FAULT_POLICIES registry ({sorted(known)}); "
                        "derive them with choices=FAULT_POLICIES",
                    )
            elif keyword.arg == "default" and isinstance(
                keyword.value, ast.Constant
            ):
                if (
                    isinstance(keyword.value.value, str)
                    and keyword.value.value not in known
                ):
                    yield ctx.finding(
                        self,
                        keyword.value,
                        f"--on-fault default {keyword.value.value!r} is not "
                        "in the FAULT_POLICIES registry",
                    )

    def _check_policy_doc(
        self, path: str, text: str, known: set[str]
    ) -> Iterator[Finding]:
        for lineno, line in enumerate(text.splitlines(), start=1):
            mentioned = set(_DOC_POLICY.findall(line))
            mentioned |= set(_DOC_CLI_POLICY.findall(line))
            for name in sorted(mentioned - known):
                yield Finding(
                    path=path,
                    line=lineno,
                    col=1,
                    rule=self.id,
                    message=(
                        f"documentation names fault policy {name!r}, which "
                        "is not in the FAULT_POLICIES registry "
                        f"({sorted(known)})"
                    ),
                )

    @staticmethod
    def _is_test_path(path: str) -> bool:
        parts = Path(path).parts
        return "tests" in parts or Path(path).name.startswith("test_")

    def _check_engine_kwargs(
        self,
        ctx: FileContext,
        node: ast.Call,
        known: set[str],
        raises: list[tuple[int, int]],
        is_test: bool,
        tested: set[str],
    ) -> Iterator[Finding]:
        for keyword in node.keywords:
            if keyword.arg != "engine":
                continue
            value = keyword.value
            if not (
                isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                continue
            if value.value in known:
                if is_test:
                    tested.add(value.value)
                continue
            if line_in_ranges(value.lineno, raises):
                continue  # negative test: the invalid name is the point
            yield ctx.finding(
                self,
                value,
                f"engine {value.value!r} is not in the ENGINES registry "
                f"({sorted(known)})",
            )

    def _check_argparse(
        self, ctx: FileContext, node: ast.Call, known: set[str]
    ) -> Iterator[Finding]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "add_argument"):
            return
        if not (
            node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == "--engine"
        ):
            return
        for keyword in node.keywords:
            if keyword.arg == "choices" and isinstance(
                keyword.value, (ast.Tuple, ast.List, ast.Set)
            ):
                literal = {
                    element.value
                    for element in keyword.value.elts
                    if isinstance(element, ast.Constant)
                }
                if literal != known:
                    yield ctx.finding(
                        self,
                        keyword.value,
                        "--engine choices are hand-listed and drift from "
                        f"the ENGINES registry ({sorted(known)}); derive "
                        "them with choices=ENGINES",
                    )
            elif keyword.arg == "default" and isinstance(
                keyword.value, ast.Constant
            ):
                if (
                    isinstance(keyword.value.value, str)
                    and keyword.value.value not in known
                ):
                    yield ctx.finding(
                        self,
                        keyword.value,
                        f"--engine default {keyword.value.value!r} is not "
                        "in the ENGINES registry",
                    )

    def _check_doc(
        self, path: str, text: str, known: set[str]
    ) -> Iterator[Finding]:
        for lineno, line in enumerate(text.splitlines(), start=1):
            mentioned = set(_DOC_ENGINE.findall(line))
            if "engine" in line:
                mentioned |= set(_DOC_ENGINE_EXTRA.findall(line))
                mentioned |= set(_DOC_CLI_ENGINE.findall(line))
            for name in sorted(mentioned - known):
                yield Finding(
                    path=path,
                    line=lineno,
                    col=1,
                    rule=self.id,
                    message=(
                        f"documentation names engine {name!r}, which is "
                        f"not in the ENGINES registry ({sorted(known)})"
                    ),
                )

"""RL005 — library hygiene: no mutable default args, no bare ``except``.

Scoped to the installable package (paths under ``src/``).  A mutable
default is shared across every call of the function — state leaks
between unrelated mining runs, which is fatal for a library meant to be
driven concurrently.  A bare ``except:`` swallows ``KeyboardInterrupt``
and ``SystemExit``, turning a user's Ctrl-C inside a long convolution
sweep into a silently-retried loop.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from ..asttools import call_name, walk_functions
from ..framework import FileContext, Finding, Rule

__all__ = ["LibraryHygiene"]

_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    return isinstance(node, ast.Call) and call_name(node) in _MUTABLE_CALLS


class LibraryHygiene(Rule):
    """Flag mutable default arguments and bare ``except`` in ``src/``."""

    id = "RL005"
    name = "library hygiene"
    rationale = (
        "mutable defaults leak state across concurrent mining runs; bare "
        "except swallows KeyboardInterrupt/SystemExit"
    )

    def applies(self, path: str) -> bool:
        return "src" in Path(path).parts

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for function in walk_functions(ctx.tree):
            defaults = list(function.args.defaults) + [
                d for d in function.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield ctx.finding(
                        self,
                        default,
                        f"mutable default argument in {function.name!r}; "
                        "use None and construct inside the function",
                    )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self,
                    node,
                    "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                    "catch a concrete exception type",
                )

"""Strict annotation gate — the stdlib backstop behind ``make typecheck``.

The typing policy (``docs/development.md``) requires complete signatures
across the strict modules: every parameter (including ``*args`` /
``**kwargs``, excluding ``self``/``cls``) and every return type must be
annotated, mirroring mypy's ``disallow_untyped_defs`` +
``disallow_incomplete_defs``.  When mypy is installed (the CI path,
via the ``dev`` extra) ``scripts/typecheck.py`` runs it with the strict
``[tool.mypy]`` configuration; in environments without mypy this gate
enforces the annotation-completeness half with nothing but ``ast``, so
``make typecheck`` always means something.

Run directly::

    python -m repro.lint.annotations src/repro/core src/repro/cli.py
"""

from __future__ import annotations

import argparse
import ast
import sys
from collections.abc import Sequence
from pathlib import Path

from .framework import FileContext, Finding
from .runner import collect_files

__all__ = ["check_annotations", "annotation_findings", "main"]

_RULE = "ANN001"


def _missing_in(function: ast.FunctionDef | ast.AsyncFunctionDef,
                is_method: bool) -> list[str]:
    args = function.args
    named = args.posonlyargs + args.args
    missing = []
    for index, arg in enumerate(named):
        if is_method and index == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    missing.extend(
        arg.arg for arg in args.kwonlyargs if arg.annotation is None
    )
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append(f"*{args.vararg.arg}")
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append(f"**{args.kwarg.arg}")
    if function.returns is None:
        missing.append("return")
    return missing


def annotation_findings(ctx: FileContext) -> list[Finding]:
    """Every incomplete signature in one parsed file."""
    findings: list[Finding] = []
    method_lines: set[int] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    method_lines.add(stmt.lineno)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        missing = _missing_in(node, is_method=node.lineno in method_lines)
        if not missing:
            continue
        findings.append(
            Finding(
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset + 1,
                rule=_RULE,
                message=(
                    f"function {node.name!r} has unannotated "
                    f"{', '.join(missing)}"
                ),
            )
        )
    return findings


def check_annotations(paths: Sequence[str | Path]) -> list[Finding]:
    """Scan files/directories for incomplete signatures."""
    python_files, _ = collect_files(paths)
    findings: list[Finding] = []
    for path in python_files:
        try:
            ctx = FileContext.from_path(path)
        except SyntaxError as error:
            findings.append(
                Finding(
                    path=str(path),
                    line=error.lineno or 1,
                    col=(error.offset or 0) + 1,
                    rule="PARSE",
                    message=f"syntax error: {error.msg}",
                )
            )
            continue
        for finding in annotation_findings(ctx):
            if not ctx.is_suppressed(_RULE, finding.line):
                findings.append(finding)
    return sorted(findings)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro.lint.annotations``."""
    parser = argparse.ArgumentParser(
        prog="repro.lint.annotations",
        description="Require complete type annotations (mypy fallback).",
    )
    parser.add_argument("paths", nargs="+", help="files/directories to check")
    args = parser.parse_args(argv)
    findings = check_annotations(args.paths)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} incomplete signature(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Loading series from common on-disk formats.

Minimal, dependency-free loaders so real measurements reach the
pipeline without ceremony: a CSV column of numeric values (for
:class:`repro.pipeline.PeriodicityPipeline`) or of symbols (for the
miners directly).  Symbol *files* (one character per symbol) are handled
by :mod:`repro.streaming.reader`.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path

import numpy as np

from ..core.alphabet import Alphabet
from ..core.sequence import SymbolSequence

__all__ = ["load_csv_values", "load_csv_symbols"]


def _read_column(path: str | os.PathLike, column: str | int) -> list[str]:
    path = Path(path)
    with open(path, "r", encoding="utf-8", newline="") as handle:
        if isinstance(column, int):
            reader = csv.reader(handle)
            rows = list(reader)
            if not rows:
                raise ValueError(f"{path} is empty")
            start = 0
            # Tolerate a header row when the first cell is not numeric-ish.
            first = rows[0][column] if column < len(rows[0]) else ""
            if first and not _looks_numeric(first):
                start = 1
            out = []
            for line_number, row in enumerate(rows[start:], start=start + 1):
                if not row:
                    continue
                if column >= len(row):
                    raise ValueError(
                        f"{path}:{line_number} has no column {column}"
                    )
                out.append(row[column])
            return out
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or column not in reader.fieldnames:
            raise ValueError(f"{path} has no column named {column!r}")
        return [row[column] for row in reader if row.get(column) not in (None, "")]


def _looks_numeric(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def load_csv_values(
    path: str | os.PathLike, column: str | int = 0
) -> np.ndarray:
    """Load one numeric CSV column as a float array.

    ``column`` is a header name or a 0-based index; with an index, a
    non-numeric first row is treated as a header and skipped.
    """
    cells = _read_column(path, column)
    if not cells:
        raise ValueError(f"column {column!r} of {path} is empty")
    try:
        return np.array([float(cell) for cell in cells], dtype=np.float64)
    except ValueError as error:
        raise ValueError(f"non-numeric cell in column {column!r}: {error}") from None


def load_csv_symbols(
    path: str | os.PathLike,
    column: str | int = 0,
    alphabet: Alphabet | None = None,
) -> SymbolSequence:
    """Load one CSV column of symbol labels as a series.

    The alphabet defaults to the distinct labels in order of first
    appearance.
    """
    cells = _read_column(path, column)
    if not cells:
        raise ValueError(f"column {column!r} of {path} is empty")
    return SymbolSequence.from_symbols(cells, alphabet)

"""CIMEG-like power-consumption data (synthetic stand-in, Sect. 4).

The paper's first real dataset is a CIMEG database of "daily power
consumption rates of some customers over a period of one year",
discretized into five levels: "very low corresponds to less than 6000
Watts/Day, and each level has a 2000 Watts range".  That database is not
available, so this simulator generates series with the same *mined
structure* the paper reports:

* a weekly (period-7) consumption profile, hence symbol periodicities at
  7 and its multiples;
* one habitual low-consumption day (the paper finds the single-symbol
  pattern "very low on the 4th day of the week" at threshold 50%),
  modelled as a persistent Markov habit so its consecutive-week support
  sits in the partially-periodic regime rather than at 0 or 1;
* day-level Gaussian fluctuation plus occasional vacation weeks, which
  keep the remaining supports below 1 like real consumption data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.sequence import SymbolSequence
from .discretize import FIVE_LEVELS, ThresholdDiscretizer

__all__ = ["CIMEG_THRESHOLDS", "PowerConsumptionSimulator"]

#: The paper's CIMEG discretization: very low < 6000 W/day, 2000 W bands.
CIMEG_THRESHOLDS = (6000.0, 8000.0, 10000.0, 12000.0)


@dataclass(frozen=True, slots=True)
class PowerConsumptionSimulator:
    """Generate daily power-consumption series for one customer.

    Parameters
    ----------
    days:
        Series length in days (the paper's database spans one year).
    weekly_profile:
        Mean consumption per weekday, Watts/day, length 7.  The default
        puts distinct levels on most days and a bimodal "thrifty" day at
        index 3.
    low_day:
        Index of the habitual low-consumption day.
    low_day_level:
        Mean consumption on the low day while the habit is active.
    habit_persistence / lapse_persistence:
        Week-to-week probabilities of *staying* active and of *staying*
        lapsed — a two-state Markov chain.  The defaults put the habit
        active ~80% of weeks in runs, so its consecutive-week (F2)
        support lands in the partially-periodic 50-70% band where the
        paper's CIMEG habitual-day pattern surfaces.
    vacation_rate:
        Probability that any given week is a vacation (whole week drops
        to a very low level).
    daily_noise_sd:
        Gaussian day-to-day fluctuation, Watts.
    """

    days: int = 365
    weekly_profile: tuple[float, ...] = (
        8600.0,   # day 0: high-ish  -> level c/d boundary region
        10500.0,  # day 1: high      -> d
        9000.0,   # day 2: medium    -> c (the paper's (b,2) analogue lives
                  #                     in level b only for thriftier homes;
                  #                     supports vary with the noise draw)
        8500.0,   # day 3: bimodal thrifty day (see low_day_level)
        9200.0,   # day 4: medium    -> c
        11800.0,  # day 5: high      -> d
        12800.0,  # day 6: very high -> e
    )
    low_day: int = 3
    low_day_level: float = 4800.0
    habit_persistence: float = 0.9
    lapse_persistence: float = 0.6
    vacation_rate: float = 0.04
    vacation_level: float = 3500.0
    daily_noise_sd: float = 420.0
    thresholds: tuple[float, ...] = CIMEG_THRESHOLDS

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValueError("days must be >= 1")
        if len(self.weekly_profile) != 7:
            raise ValueError("weekly_profile must have 7 entries")
        if not 0 <= self.low_day < 7:
            raise ValueError("low_day must be a weekday index")
        for name in ("habit_persistence", "lapse_persistence"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1]")
        if not 0.0 <= self.vacation_rate <= 1.0:
            raise ValueError("vacation_rate must lie in [0, 1]")

    @property
    def discretizer(self) -> ThresholdDiscretizer:
        """The paper's five-level CIMEG discretizer."""
        return ThresholdDiscretizer(self.thresholds, FIVE_LEVELS)

    def values(self, rng: np.random.Generator | None = None) -> np.ndarray:
        """Numeric daily consumption values, Watts/day."""
        rng = np.random.default_rng() if rng is None else rng
        weeks = -(-self.days // 7)
        profile = np.asarray(self.weekly_profile, dtype=np.float64)
        consumption = np.tile(profile, weeks)[: self.days].copy()

        # Two-state Markov habit on the low day.
        habit_active = True
        for week in range(weeks):
            stay = self.habit_persistence if habit_active else self.lapse_persistence
            if rng.random() > stay:
                habit_active = not habit_active
            if habit_active:
                day = week * 7 + self.low_day
                if day < self.days:
                    consumption[day] = self.low_day_level

        # Vacation weeks flatten to a very low level.
        for week in range(weeks):
            if rng.random() < self.vacation_rate:
                start = week * 7
                consumption[start : min(start + 7, self.days)] = self.vacation_level

        consumption += rng.normal(0.0, self.daily_noise_sd, size=self.days)
        return np.maximum(consumption, 0.0)

    def series(self, rng: np.random.Generator | None = None) -> SymbolSequence:
        """The discretized five-level symbol series."""
        return self.discretizer.discretize(self.values(rng))

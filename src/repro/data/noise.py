"""Noise models for time-series symbols (Sect. 4 of the paper).

"Types of noise include replacement, insertion, deletion, or any
combination of them. [...] Noise is introduced randomly and uniformly
over the whole time series.  Replacement noise is introduced by altering
the symbol at a randomly selected position in the time series by
another.  Insertion or deletion noise is introduced by inserting a new
symbol or deleting the current symbol at a randomly selected position."

Combinations split the noise ratio equally among their members; the
experiment legends use the paper's shorthand — ``"R"``, ``"I"``, ``"D"``,
``"R-I"``, ``"R-I-D"`` and so on.
"""

from __future__ import annotations

import numpy as np

from ..core.sequence import SymbolSequence

__all__ = [
    "NOISE_KINDS",
    "parse_noise_spec",
    "replace_noise",
    "insert_noise",
    "delete_noise",
    "apply_noise",
]

#: The three primitive noise kinds, keyed by the paper's single letters.
NOISE_KINDS = {"R": "replacement", "I": "insertion", "D": "deletion"}


def parse_noise_spec(spec: str) -> tuple[str, ...]:
    """Parse a legend label like ``"R-I-D"`` into primitive kinds.

    Accepts hyphen/space/comma separators and is case-insensitive.

    >>> parse_noise_spec("r-i-d")
    ('replacement', 'insertion', 'deletion')
    """
    letters = [part for part in spec.upper().replace(",", "-").replace(" ", "-").split("-") if part]
    if not letters:
        raise ValueError("empty noise specification")
    kinds = []
    for letter in letters:
        if letter not in NOISE_KINDS:
            raise ValueError(f"unknown noise kind {letter!r} in {spec!r}")
        kind = NOISE_KINDS[letter]
        if kind in kinds:
            raise ValueError(f"duplicate noise kind {letter!r} in {spec!r}")
        kinds.append(kind)
    return tuple(kinds)


def _noise_positions(n: int, count: int, rng: np.random.Generator) -> np.ndarray:
    """``count`` distinct positions chosen uniformly over ``0..n-1``."""
    return rng.choice(n, size=min(count, n), replace=False)


def replace_noise(
    series: SymbolSequence, ratio: float, rng: np.random.Generator | None = None
) -> SymbolSequence:
    """Alter ``ratio * n`` randomly chosen symbols to *different* symbols."""
    _check_ratio(ratio)
    rng = np.random.default_rng() if rng is None else rng
    codes = series.codes.copy()
    n = codes.size
    count = int(round(ratio * n))
    if count == 0 or n == 0:
        return series
    if series.sigma < 2:
        raise ValueError("replacement noise needs at least two symbols")
    positions = _noise_positions(n, count, rng)
    # Draw a uniformly random *other* symbol: shift by 1..sigma-1 mod sigma.
    offsets = rng.integers(1, series.sigma, size=positions.size)
    codes[positions] = (codes[positions] + offsets) % series.sigma
    return SymbolSequence.from_codes(codes, series.alphabet)


def insert_noise(
    series: SymbolSequence, ratio: float, rng: np.random.Generator | None = None
) -> SymbolSequence:
    """Insert ``ratio * n`` random symbols at random positions."""
    _check_ratio(ratio)
    rng = np.random.default_rng() if rng is None else rng
    n = series.length
    count = int(round(ratio * n))
    if count == 0:
        return series
    insert_at = np.sort(rng.integers(0, n + 1, size=count))
    inserted = rng.integers(0, series.sigma, size=count)
    codes = np.insert(series.codes, insert_at, inserted)
    return SymbolSequence.from_codes(codes, series.alphabet)


def delete_noise(
    series: SymbolSequence, ratio: float, rng: np.random.Generator | None = None
) -> SymbolSequence:
    """Delete ``ratio * n`` randomly chosen symbols."""
    _check_ratio(ratio)
    rng = np.random.default_rng() if rng is None else rng
    n = series.length
    count = int(round(ratio * n))
    if count == 0:
        return series
    if count >= n:
        raise ValueError("deletion noise would remove the whole series")
    positions = _noise_positions(n, count, rng)
    codes = np.delete(series.codes, positions)
    return SymbolSequence.from_codes(codes, series.alphabet)


_APPLIERS = {
    "replacement": replace_noise,
    "insertion": insert_noise,
    "deletion": delete_noise,
}


def apply_noise(
    series: SymbolSequence,
    ratio: float,
    kinds: str | tuple[str, ...] = "R",
    rng: np.random.Generator | None = None,
) -> SymbolSequence:
    """Apply a noise combination, splitting ``ratio`` equally among kinds.

    ``kinds`` is either a legend label (``"R-I-D"``) or a tuple of
    primitive kind names.  Matching the paper, e.g. ``"I-D"`` at ratio
    0.3 applies 15% insertions and 15% deletions.

    >>> T = SymbolSequence.from_string("abcabcabc")
    >>> apply_noise(T, 0.0, "R-I-D").to_string()
    'abcabcabc'
    """
    _check_ratio(ratio)
    if isinstance(kinds, str):
        kinds = parse_noise_spec(kinds)
    else:
        for kind in kinds:
            if kind not in _APPLIERS:
                raise ValueError(f"unknown noise kind {kind!r}")
        if len(set(kinds)) != len(kinds):
            raise ValueError("duplicate noise kinds")
    rng = np.random.default_rng() if rng is None else rng
    share = ratio / len(kinds)
    noisy = series
    for kind in kinds:
        noisy = _APPLIERS[kind](noisy, share, rng)
    return noisy


def _check_ratio(ratio: float) -> None:
    if not 0.0 <= ratio <= 1.0:
        raise ValueError("noise ratio must lie in [0, 1]")

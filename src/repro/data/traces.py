"""Numeric trace generator: seasonality + trend + noise + events.

The paper's pipeline starts from numeric feature values (power rates,
transaction counts) that are discretized before mining.  This generator
produces such raw traces with controllable structure — repeating
seasonal profiles, drift, spikes, regime shifts — to exercise the
discretizer-to-miner pipeline end to end, including the failure modes
(a trend migrating values across level boundaries, a regime shift
breaking a pattern midway).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SeasonalTrace"]


@dataclass(frozen=True, slots=True)
class SeasonalTrace:
    """Numeric trace: seasonal profile(s) + trend + noise + events.

    Parameters
    ----------
    length:
        Trace length in samples.
    profiles:
        One or more repeating numeric profiles, each tiled over the
        trace and summed (e.g. a daily shape plus a weekly modulation).
    level:
        Constant baseline added to every sample.
    trend:
        Linear drift per sample.
    noise_sd:
        Gaussian observation noise.
    spike_rate:
        Probability per sample of an additive spike.
    spike_size:
        Spike magnitude (sign chosen at random).
    regime_shift_at:
        Sample index where the baseline jumps by ``regime_shift_size``
        (``None`` disables).
    """

    length: int = 2_000
    profiles: tuple[tuple[float, ...], ...] = (
        (0.0, 2.0, 5.0, 9.0, 7.0, 4.0, 1.0, 0.0),
    )
    level: float = 10.0
    trend: float = 0.0
    noise_sd: float = 0.5
    spike_rate: float = 0.0
    spike_size: float = 10.0
    regime_shift_at: int | None = None
    regime_shift_size: float = 0.0

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("length must be >= 1")
        if not self.profiles:
            raise ValueError("at least one seasonal profile is required")
        for profile in self.profiles:
            if not profile:
                raise ValueError("profiles must be non-empty")
        if self.noise_sd < 0:
            raise ValueError("noise_sd must be non-negative")
        if not 0.0 <= self.spike_rate <= 1.0:
            raise ValueError("spike_rate must lie in [0, 1]")
        if self.regime_shift_at is not None and not (
            0 <= self.regime_shift_at < self.length
        ):
            raise ValueError("regime_shift_at must lie inside the trace")

    @property
    def seasonal_period(self) -> int:
        """The combined seasonal period (lcm of the profile lengths)."""
        period = 1
        for profile in self.profiles:
            period = int(np.lcm(period, len(profile)))
        return period

    def values(self, rng: np.random.Generator | None = None) -> np.ndarray:
        """One sampled trace."""
        rng = np.random.default_rng() if rng is None else rng
        t = np.arange(self.length, dtype=np.float64)
        trace = np.full(self.length, self.level) + self.trend * t
        for profile in self.profiles:
            tiles = -(-self.length // len(profile))
            trace += np.tile(np.asarray(profile, dtype=np.float64), tiles)[
                : self.length
            ]
        if self.noise_sd:
            trace += rng.normal(0.0, self.noise_sd, size=self.length)
        if self.spike_rate:
            spikes = rng.random(self.length) < self.spike_rate
            signs = rng.choice((-1.0, 1.0), size=self.length)
            trace[spikes] += signs[spikes] * self.spike_size
        if self.regime_shift_at is not None:
            trace[self.regime_shift_at :] += self.regime_shift_size
        return trace

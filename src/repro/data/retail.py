"""Wal-Mart-like hourly transaction data (synthetic stand-in, Sect. 4).

The paper's second real dataset is a 70 GB Wal-Mart database with
"timed sales transactions for some Wal-Mart stores over a period of 15
months", aggregated to transactions per hour and discretized into five
levels: "very low corresponds to zero transactions per hour, low
corresponds to less than 200 transactions per hour, and each level has a
200 transactions range".

The proprietary data is unavailable; this simulator embeds exactly the
generative mechanisms behind everything the paper mines from it:

* an hour-of-day profile with overnight closure — the period-24
  periodicities, including the very-low overnight single-symbol patterns
  at high thresholds;
* a day-of-week modulation — the period-168 (24*7) periodicity;
* an optional daylight-saving shift of the whole profile by one hour
  twice a year, the mechanism the paper credits for its obscure
  3961-hour ("5.5 months plus one hour") period;
* seasonal drift and Poisson sampling, which keep supports realistic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.sequence import SymbolSequence
from .discretize import FIVE_LEVELS, ThresholdDiscretizer

__all__ = ["WALMART_THRESHOLDS", "RetailTransactionsSimulator", "DEFAULT_HOURLY_PROFILE"]

#: The paper's retail discretization: 0 tx/h = very low, then 200-tx bands.
WALMART_THRESHOLDS = (0.5, 200.0, 400.0, 600.0)

#: Mean transactions per hour for a mid-week day, hours 0..23.
DEFAULT_HOURLY_PROFILE = (
    0.0, 0.0, 0.0, 0.0, 0.0, 0.0,      # 00-05: closed
    30.0, 120.0,                        # 06-07: opening ramp (b band)
    260.0, 390.0,                       # 08-09: morning build (c band)
    480.0, 560.0,                       # 10-11: late morning (d band)
    700.0, 740.0, 720.0,                # 12-14: midday peak (e band)
    640.0, 610.0, 660.0,                # 15-17: afternoon (e/d band)
    520.0, 430.0,                       # 18-19: evening (d/c band)
    250.0, 120.0,                       # 20-21: wind-down (c/b band)
    0.0, 0.0,                           # 22-23: closed
)


@dataclass(frozen=True, slots=True)
class RetailTransactionsSimulator:
    """Generate hourly transaction-count series for one store.

    Parameters
    ----------
    days:
        Series length in days (the paper spans 15 months, ~456 days).
    hourly_profile:
        Mean transactions per hour, length 24.
    weekday_factors:
        Multiplier per weekday (Mon..Sun), giving the weekly period.
    seasonal_amplitude:
        Relative amplitude of a yearly sinusoid on the open-hours volume.
    dst:
        Apply daylight-saving time: shift the profile one hour earlier
        between the spring-forward and fall-back days of each simulated
        year, so mining sees the paper's "daylight savings hour" effect.
    noise:
        ``"poisson"`` samples counts; ``"none"`` returns the means
        (useful for deterministic tests).
    holiday_rate:
        Probability that a day is a holiday with the store closed all
        day (deflates the daytime pattern supports, as in real data).
    overnight_activity_rate:
        Probability that a night has stocktake/cleaning crews producing
        transactions during the closed hours — this keeps the overnight
        "very low" patterns below support 1, so they surface at the
        paper's 90-95% thresholds instead of trivially at 100%.
    hour_jitter_rate:
        Probability that a day's whole profile slips by one hour
        (staffing variation), blurring boundary hours.
    """

    days: int = 456
    hourly_profile: tuple[float, ...] = DEFAULT_HOURLY_PROFILE
    weekday_factors: tuple[float, ...] = (0.92, 0.88, 0.90, 0.95, 1.10, 1.25, 1.05)
    seasonal_amplitude: float = 0.15
    dst: bool = False
    dst_spring_day: int = 70   # ~mid March
    dst_fall_day: int = 308    # ~early November
    noise: str = "poisson"
    holiday_rate: float = 0.02
    overnight_activity_rate: float = 0.035
    overnight_activity_level: float = 150.0
    hour_jitter_rate: float = 0.12
    thresholds: tuple[float, ...] = WALMART_THRESHOLDS

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ValueError("days must be >= 1")
        if len(self.hourly_profile) != 24:
            raise ValueError("hourly_profile must have 24 entries")
        if len(self.weekday_factors) != 7:
            raise ValueError("weekday_factors must have 7 entries")
        if min(self.hourly_profile) < 0 or min(self.weekday_factors) <= 0:
            raise ValueError("profile values must be non-negative")
        if self.noise not in ("poisson", "none"):
            raise ValueError("noise must be 'poisson' or 'none'")
        for rate in (self.holiday_rate, self.overnight_activity_rate, self.hour_jitter_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rates must lie in [0, 1]")
        if not 0 <= self.dst_spring_day < self.dst_fall_day < 366:
            raise ValueError("DST days must satisfy 0 <= spring < fall < 366")

    @property
    def hours(self) -> int:
        """Series length in hours."""
        return self.days * 24

    @property
    def discretizer(self) -> ThresholdDiscretizer:
        """The paper's five-level retail discretizer."""
        return ThresholdDiscretizer(self.thresholds, FIVE_LEVELS)

    def expected_values(self) -> np.ndarray:
        """Mean transactions per hour for every hour, before sampling."""
        profile = np.asarray(self.hourly_profile, dtype=np.float64)
        day_index = np.arange(self.days)
        weekday = day_index % 7
        factors = np.asarray(self.weekday_factors)[weekday]
        season = 1.0 + self.seasonal_amplitude * np.sin(
            2.0 * np.pi * day_index / 365.0
        )
        means = profile[None, :] * (factors * season)[:, None]
        if self.dst:
            in_dst = (day_index % 365 >= self.dst_spring_day) & (
                day_index % 365 < self.dst_fall_day
            )
            # Local clocks jump forward: the store's activity appears one
            # hour earlier in standard time during the DST window.
            means[in_dst] = np.roll(means[in_dst], -1, axis=1)
        return means.reshape(-1)

    def values(self, rng: np.random.Generator | None = None) -> np.ndarray:
        """Sampled hourly transaction counts (with day-level irregularities).

        ``noise="none"`` skips both the Poisson sampling and the random
        day-level effects, returning :meth:`expected_values` verbatim.
        """
        means = self.expected_values()
        if self.noise == "none":
            return means
        rng = np.random.default_rng() if rng is None else rng
        by_day = means.reshape(self.days, 24).copy()

        closed = np.asarray(self.hourly_profile) == 0.0
        holidays = rng.random(self.days) < self.holiday_rate
        by_day[holidays] = 0.0

        stocktake = (rng.random(self.days) < self.overnight_activity_rate) & ~holidays
        by_day[np.ix_(stocktake, closed)] = self.overnight_activity_level

        jitter = rng.random(self.days) < self.hour_jitter_rate
        directions = rng.choice((-1, 1), size=self.days)
        for day in np.nonzero(jitter)[0]:
            by_day[day] = np.roll(by_day[day], directions[day])

        return rng.poisson(by_day.reshape(-1)).astype(np.float64)

    def series(self, rng: np.random.Generator | None = None) -> SymbolSequence:
        """The discretized five-level symbol series."""
        return self.discretizer.discretize(self.values(rng))

"""Data substrate: generators, noise models, and discretizers.

* :mod:`repro.data.synthetic` — the paper's controlled synthetic data;
* :mod:`repro.data.noise` — replacement/insertion/deletion noise;
* :mod:`repro.data.discretize` — numeric-to-symbol discretizers;
* :mod:`repro.data.power` — CIMEG-like daily power consumption;
* :mod:`repro.data.retail` — Wal-Mart-like hourly transactions;
* :mod:`repro.data.eventlog` — slotted event logs with planted periods.
"""

from .synthetic import generate_pattern, generate_periodic, generate_random
from .noise import (
    NOISE_KINDS,
    apply_noise,
    delete_noise,
    insert_noise,
    parse_noise_spec,
    replace_noise,
)
from .discretize import (
    FIVE_LEVELS,
    Discretizer,
    EqualWidthDiscretizer,
    GaussianDiscretizer,
    QuantileDiscretizer,
    ThresholdDiscretizer,
)
from .power import CIMEG_THRESHOLDS, PowerConsumptionSimulator
from .retail import (
    DEFAULT_HOURLY_PROFILE,
    RetailTransactionsSimulator,
    WALMART_THRESHOLDS,
)
from .eventlog import EventLogSimulator, PlantedEvent
from .traces import SeasonalTrace
from .loaders import load_csv_symbols, load_csv_values

__all__ = [
    "generate_pattern",
    "generate_periodic",
    "generate_random",
    "NOISE_KINDS",
    "apply_noise",
    "delete_noise",
    "insert_noise",
    "parse_noise_spec",
    "replace_noise",
    "FIVE_LEVELS",
    "Discretizer",
    "EqualWidthDiscretizer",
    "GaussianDiscretizer",
    "QuantileDiscretizer",
    "ThresholdDiscretizer",
    "CIMEG_THRESHOLDS",
    "PowerConsumptionSimulator",
    "DEFAULT_HOURLY_PROFILE",
    "RetailTransactionsSimulator",
    "WALMART_THRESHOLDS",
    "EventLogSimulator",
    "PlantedEvent",
    "SeasonalTrace",
    "load_csv_symbols",
    "load_csv_values",
]

"""Discretizing numeric feature values into nominal symbol levels.

Sect. 2.1 of the paper assumes the time series has been discretized into
nominal levels ("high, medium, low"), and its real-data experiments use
five levels with domain-specific thresholds.  The paper treats the
choice of discretizer as orthogonal; this module supplies the standard
options so numeric series can be fed to the miners:

* :class:`ThresholdDiscretizer` — explicit breakpoints (the paper's
  domain-expert scheme, e.g. "very low < 6000 Watts/Day");
* :class:`EqualWidthDiscretizer` — equal-width bins over the data range;
* :class:`QuantileDiscretizer` — equal-frequency bins;
* :class:`GaussianDiscretizer` — equiprobable bins under a normal fit
  (the SAX-style breakpoints).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.alphabet import Alphabet
from ..core.sequence import SymbolSequence

__all__ = [
    "Discretizer",
    "ThresholdDiscretizer",
    "EqualWidthDiscretizer",
    "QuantileDiscretizer",
    "GaussianDiscretizer",
    "FIVE_LEVELS",
]

#: The paper's five nominal levels, in ascending order.
FIVE_LEVELS = ("a", "b", "c", "d", "e")  # very low, low, medium, high, very high


class Discretizer:
    """Base class: maps numeric values to symbol codes via breakpoints.

    Subclasses provide breakpoints; value ``v`` maps to the number of
    breakpoints ``<= v`` (so ``k`` breakpoints produce ``k + 1`` levels).
    """

    def __init__(self, levels: Sequence[str] | int = FIVE_LEVELS):
        if isinstance(levels, int):
            alphabet = Alphabet.of_size(levels)
        else:
            alphabet = Alphabet(levels)
        self._alphabet = alphabet

    @property
    def alphabet(self) -> Alphabet:
        """The level alphabet, ascending."""
        return self._alphabet

    def breakpoints(self, values: np.ndarray) -> np.ndarray:
        """Ascending breakpoints separating the levels (len = levels-1)."""
        raise NotImplementedError

    def codes(self, values: Sequence[float] | np.ndarray) -> np.ndarray:
        """Discretize to integer level codes."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError("values must be one-dimensional")
        if values.size == 0:
            raise ValueError("cannot discretize an empty series")
        breaks = np.asarray(self.breakpoints(values), dtype=np.float64)
        if breaks.size != len(self._alphabet) - 1:
            raise ValueError(
                f"{breaks.size} breakpoints cannot produce "
                f"{len(self._alphabet)} levels"
            )
        if np.any(np.diff(breaks) < 0):
            raise ValueError("breakpoints must be ascending")
        return np.searchsorted(breaks, values, side="right").astype(np.int64)

    def discretize(self, values: Sequence[float] | np.ndarray) -> SymbolSequence:
        """Discretize to a :class:`SymbolSequence` over the level alphabet."""
        return SymbolSequence.from_codes(self.codes(values), self._alphabet)


class ThresholdDiscretizer(Discretizer):
    """Explicit domain thresholds (the paper's expert-driven scheme).

    ``thresholds[i]`` is the smallest value mapped to level ``i + 1``;
    e.g. for CIMEG: ``[6000, 8000, 10000, 12000]`` — very low is
    "less than 6000 Watts/Day, and each level has a 2000 Watts range".
    """

    def __init__(
        self,
        thresholds: Sequence[float],
        levels: Sequence[str] | int = FIVE_LEVELS,
    ):
        super().__init__(levels)
        self._thresholds = np.asarray(thresholds, dtype=np.float64)
        if self._thresholds.size != len(self.alphabet) - 1:
            raise ValueError(
                f"{self._thresholds.size} thresholds cannot produce "
                f"{len(self.alphabet)} levels"
            )
        if np.any(np.diff(self._thresholds) < 0):
            raise ValueError("thresholds must be ascending")

    def breakpoints(self, values: np.ndarray) -> np.ndarray:
        # Map v -> level via "first threshold strictly above v", i.e. the
        # searchsorted(side='right') convention with breaks just below
        # each threshold: v < thresholds[0] is level 0.
        return self._thresholds - 1e-12 * np.maximum(np.abs(self._thresholds), 1.0)


class EqualWidthDiscretizer(Discretizer):
    """Equal-width bins spanning ``[min, max]`` of the data."""

    def breakpoints(self, values: np.ndarray) -> np.ndarray:
        lo, hi = float(values.min()), float(values.max())
        k = len(self.alphabet)
        if lo == hi:
            return np.full(k - 1, lo)
        return lo + (hi - lo) * np.arange(1, k) / k


class QuantileDiscretizer(Discretizer):
    """Equal-frequency bins (quantile breakpoints)."""

    def breakpoints(self, values: np.ndarray) -> np.ndarray:
        k = len(self.alphabet)
        return np.quantile(values, np.arange(1, k) / k)


class GaussianDiscretizer(Discretizer):
    """Equiprobable bins under a normal fit of the data (SAX breakpoints)."""

    def breakpoints(self, values: np.ndarray) -> np.ndarray:
        k = len(self.alphabet)
        mean = float(values.mean())
        std = float(values.std())
        if std == 0.0:
            return np.full(k - 1, mean)
        quantiles = np.arange(1, k) / k
        return mean + std * _normal_ppf(quantiles)


def _normal_ppf(q: np.ndarray) -> np.ndarray:
    """Standard normal inverse CDF (Acklam's rational approximation).

    Implemented locally so the core library does not require scipy;
    absolute error is below 1.2e-9 over (0, 1), far tighter than any
    discretization boundary needs.
    """
    q = np.asarray(q, dtype=np.float64)
    if np.any((q <= 0) | (q >= 1)):
        raise ValueError("quantiles must lie strictly inside (0, 1)")
    a = [-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00]
    b = [-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00]
    p_low, p_high = 0.02425, 1 - 0.02425
    out = np.empty_like(q)

    low = q < p_low
    if low.any():
        r = np.sqrt(-2 * np.log(q[low]))
        out[low] = (
            ((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r + c[5]
        ) / ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1)

    mid = (~low) & (q <= p_high)
    if mid.any():
        r = q[mid] - 0.5
        s = r * r
        out[mid] = (
            (((((a[0] * s + a[1]) * s + a[2]) * s + a[3]) * s + a[4]) * s + a[5])
            * r
            / (((((b[0] * s + b[1]) * s + b[2]) * s + b[3]) * s + b[4]) * s + 1)
        )

    high = q > p_high
    if high.any():
        r = np.sqrt(-2 * np.log(1 - q[high]))
        out[high] = -(
            ((((c[0] * r + c[1]) * r + c[2]) * r + c[3]) * r + c[4]) * r + c[5]
        ) / ((((d[0] * r + d[1]) * r + d[2]) * r + d[3]) * r + 1)
    return out

"""Event-log data: nominal event types on a timeline (Sect. 2.1).

The paper's second data model is "a sequence of n timestamped events
drawn from a finite set of nominal event types, e.g., the event log in a
computer network".  This generator produces such logs with planted
periodic behaviours — a heartbeat event every ``p`` slots, cron-like
bursts — mixed into background traffic, which is the workload the
event-log example application mines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.alphabet import Alphabet
from ..core.sequence import SymbolSequence

__all__ = ["PlantedEvent", "EventLogSimulator"]


@dataclass(frozen=True, slots=True)
class PlantedEvent:
    """A periodic event planted into the log.

    Attributes
    ----------
    event:
        The event-type symbol.
    period:
        The slot period of the event.
    phase:
        The slot offset within the period.
    reliability:
        Probability that each scheduled occurrence actually fires
        (missed beats model monitoring gaps).
    """

    event: str
    period: int
    phase: int
    reliability: float = 1.0

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError("event period must be >= 1")
        if not 0 <= self.phase < self.period:
            raise ValueError("phase must lie in [0, period)")
        if not 0.0 < self.reliability <= 1.0:
            raise ValueError("reliability must lie in (0, 1]")


@dataclass(frozen=True, slots=True)
class EventLogSimulator:
    """Generate a slotted event log with planted periodic events.

    Each time slot holds one event type: a planted event if one fires in
    that slot (later plants shadow earlier ones), otherwise a background
    event drawn uniformly from ``background_events``.
    """

    length: int = 5000
    planted: tuple[PlantedEvent, ...] = (
        PlantedEvent("H", period=60, phase=0, reliability=0.98),   # heartbeat
        PlantedEvent("B", period=15, phase=7, reliability=0.90),   # poller
    )
    background_events: tuple[str, ...] = ("x", "y", "z", "w")

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("length must be >= 1")
        if not self.background_events:
            raise ValueError("at least one background event type is required")
        names = [p.event for p in self.planted]
        if len(set(names)) != len(names):
            raise ValueError("planted event types must be distinct")
        overlap = set(names) & set(self.background_events)
        if overlap:
            raise ValueError(f"planted events shadow background events: {overlap}")

    @property
    def alphabet(self) -> Alphabet:
        """Background event types first, then planted ones."""
        return Alphabet(tuple(self.background_events) + tuple(p.event for p in self.planted))

    def series(self, rng: np.random.Generator | None = None) -> SymbolSequence:
        """Generate one log as a symbol series."""
        rng = np.random.default_rng() if rng is None else rng
        alphabet = self.alphabet
        codes = rng.integers(0, len(self.background_events), size=self.length)
        for plant in self.planted:
            slots = np.arange(plant.phase, self.length, plant.period)
            fired = rng.random(slots.size) <= plant.reliability
            codes[slots[fired]] = alphabet.code(plant.event)
        return SymbolSequence.from_codes(codes.astype(np.int64), alphabet)

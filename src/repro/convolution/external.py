"""Out-of-core (external-memory) convolution kernels.

Sect. 3.1 of the paper notes that "an external FFT algorithm [Vitter's
survey] can be used for large sizes of databases mined while on disk".
This module supplies that substrate: blocked kernels that stream the
series through bounded memory while producing exactly the same numbers
as the in-memory transforms.

* :func:`convolve_overlap_add` — classic overlap-add FFT convolution of
  a long signal against a short kernel, block by block.
* :func:`blocked_match_counts` — the quantity the miners actually need
  from the convolution: per-symbol shifted-match counts
  ``M_k(p) = |{j : t_j = t_{j+p} = s_k}|`` for every lag ``p`` up to
  ``max_lag``, computed from a *stream of chunks* with
  ``O(block + max_lag)`` resident memory.

The blocked counting scheme: keep the trailing ``max_lag`` symbols as an
overlap tail.  For each arriving block, autocorrelate ``tail + block``
and subtract the autocorrelation of ``tail`` alone; every match pair is
then counted exactly once — in the block where its *later* element first
appears.  This requires blocks at least ``max_lag`` long, which the
function enforces by re-chunking internally.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from .fft import correlate_fft, convolve_fft, next_pow2

__all__ = ["convolve_overlap_add", "blocked_match_counts", "rechunk"]


def convolve_overlap_add(
    signal_blocks: Iterable[np.ndarray],
    kernel: np.ndarray,
    block_size: int = 1 << 15,
) -> Iterator[np.ndarray]:
    """Full convolution of a streamed signal with an in-memory kernel.

    Yields the convolution in order as blocks; concatenating the yielded
    arrays gives ``numpy.convolve(signal, kernel)`` exactly (up to float
    rounding).  Memory use is ``O(block_size + len(kernel))``.
    """
    kernel = np.asarray(kernel, dtype=np.float64)
    if kernel.size == 0:
        raise ValueError("kernel must be non-empty")
    carry = np.zeros(kernel.size - 1)
    saw_data = False
    for block in rechunk(signal_blocks, block_size):
        saw_data = True
        part = convolve_fft(block, kernel, use_numpy=True)
        part[: carry.size] += carry
        yield part[: block.size]
        carry = part[block.size :]
    if not saw_data:
        raise ValueError("signal must be non-empty")
    if carry.size:
        yield carry


def rechunk(blocks: Iterable[np.ndarray], size: int) -> Iterator[np.ndarray]:
    """Re-chunk an iterable of 1-D arrays into blocks of exactly ``size``.

    The final block may be shorter.  Used to guarantee the minimum block
    length :func:`blocked_match_counts` needs.
    """
    if size < 1:
        raise ValueError("chunk size must be positive")
    buffer: list[np.ndarray] = []
    buffered = 0
    for block in blocks:
        block = np.asarray(block)
        if block.ndim != 1:
            raise ValueError("chunks must be one-dimensional")
        buffer.append(block)
        buffered += block.size
        while buffered >= size:
            merged = np.concatenate(buffer)
            yield merged[:size]
            rest = merged[size:]
            buffer = [rest] if rest.size else []
            buffered = rest.size
    if buffered:
        yield np.concatenate(buffer)


def blocked_match_counts(
    code_blocks: Iterable[np.ndarray],
    sigma: int,
    max_lag: int,
    block_size: int | None = None,
) -> np.ndarray:
    """Per-symbol shifted-match counts from a streamed code sequence.

    Parameters
    ----------
    code_blocks:
        Iterable of 1-D integer arrays; their concatenation is the
        series' code sequence.
    sigma:
        Alphabet size (codes must lie in ``[0, sigma)``).
    max_lag:
        Largest shift ``p`` to count.
    block_size:
        Processing block length; defaults to ``max(4 * max_lag, 2**15)``.

    Returns
    -------
    ndarray of shape ``(sigma, max_lag + 1)`` where entry ``[k, p]`` is
    ``M_k(p) = |{j : t_j = t_{j+p} = s_k}|``; column 0 holds the plain
    occurrence counts.
    """
    if max_lag < 0:
        raise ValueError("max_lag must be non-negative")
    if block_size is None:
        block_size = max(4 * max_lag, 1 << 15)
    block_size = max(block_size, max_lag, 1)
    counts = np.zeros((sigma, max_lag + 1), dtype=np.int64)
    tail = np.empty(0, dtype=np.int64)
    for block in rechunk(code_blocks, block_size):
        block = np.asarray(block, dtype=np.int64)
        if block.size and (block.min() < 0 or block.max() >= sigma):
            raise ValueError(f"codes out of range for sigma={sigma}")
        buf = np.concatenate([tail, block])
        for k in range(sigma):
            counts[k] += _autocorr_counts(buf == k, max_lag)
            if tail.size:
                counts[k] -= _autocorr_counts(tail == k, max_lag)
        tail = buf[-max_lag:] if max_lag else buf[:0]
    return counts


def _autocorr_counts(indicator: np.ndarray, max_lag: int) -> np.ndarray:
    """Integer autocorrelation of a boolean vector at lags ``0..max_lag``."""
    out = np.zeros(max_lag + 1, dtype=np.int64)
    if not indicator.any():
        return out
    corr = correlate_fft(indicator.astype(np.float64), use_numpy=True)
    upto = min(max_lag + 1, corr.size)
    out[:upto] = np.rint(corr[:upto]).astype(np.int64)
    return out

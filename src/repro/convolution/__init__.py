"""Convolution substrate: every engine the miners are built on.

* :mod:`repro.convolution.direct` — quadratic reference kernels.
* :mod:`repro.convolution.fft` — from-scratch radix-2 / Bluestein FFT
  and FFT convolution/correlation.
* :mod:`repro.convolution.bigint` — exact big-integer convolution
  (Kronecker substitution) carrying the paper's power-of-two witnesses.
* :mod:`repro.convolution.external` — out-of-core blocked kernels for
  disk-resident series (the paper's "external FFT" remark).
"""

from .direct import (
    convolve_direct,
    convolve_full_direct,
    correlate_direct,
    weighted_convolve_direct,
)
from .fft import (
    convolve_fft,
    correlate_fft,
    fft,
    fft_bluestein,
    fft_pow2,
    ifft,
    next_pow2,
)
from .bigint import (
    bit_positions,
    convolve_exact,
    pack_bits,
    weighted_convolution_witnesses,
    weighted_convolve_kronecker,
)
from .external import blocked_match_counts, convolve_overlap_add, rechunk

__all__ = [
    "convolve_direct",
    "convolve_full_direct",
    "correlate_direct",
    "weighted_convolve_direct",
    "convolve_fft",
    "correlate_fft",
    "fft",
    "fft_bluestein",
    "fft_pow2",
    "ifft",
    "next_pow2",
    "bit_positions",
    "convolve_exact",
    "pack_bits",
    "weighted_convolution_witnesses",
    "weighted_convolve_kronecker",
    "blocked_match_counts",
    "convolve_overlap_add",
    "rechunk",
]

"""Bit-parallel witness extraction over packed word arrays.

The exact miner's ``bitand`` engine evaluates the paper's convolution
component for shift ``p`` as ``X & (X >> sigma*p)`` on one huge Python
integer.  This module re-implements the same computation over a numpy
``uint64`` array, which scales the *faithful* algorithm to millions of
symbols: shifting a packed word array by ``b`` bits is two vectorised
shifts and an OR, and witness decoding is a vectorised bit scan.

Bit convention (matches :mod:`repro.core.convolution_miner`): bit ``e``
of the packed array — bit ``e % 64`` of word ``e // 64`` — equals entry
``total - 1 - e`` of the binary vector ``T'``, i.e. the series is read
as one big binary number whose most significant bit is position 0.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_positions",
    "shift_right",
    "word_and",
    "set_bit_positions",
    "shifted_self_and",
    "unpack_bits",
    "popcount",
]

_WORD = 64

#: bits set in each possible byte value, for the vectorised popcount.
_BYTE_POPCOUNT = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1).astype(np.int64)


def pack_positions(positions: np.ndarray, total_bits: int) -> np.ndarray:
    """Pack set-bit positions into a little-endian ``uint64`` word array.

    Equivalent to :func:`repro.convolution.bigint.pack_bits` but returns
    the words instead of one Python integer.  Grouped ``reduceat`` pack:
    the per-word masks are OR-reduced in one vectorised pass instead of
    the scalar inner loop of ``np.bitwise_or.at``, which matters because
    packing is on the hot path of every exact engine.
    """
    positions = np.asarray(positions, dtype=np.int64)
    words = np.zeros((total_bits + _WORD - 1) // _WORD, dtype=np.uint64)
    if positions.size == 0:
        return words
    if positions.min() < 0 or positions.max() >= total_bits:
        raise ValueError("bit position out of range")
    if positions.size > 1 and (np.diff(positions) < 0).any():
        positions = np.sort(positions)
    index = positions // _WORD
    masks = np.uint64(1) << (positions % _WORD).astype(np.uint64)
    starts = np.flatnonzero(np.diff(index)) + 1
    starts = np.concatenate([np.zeros(1, dtype=starts.dtype), starts])
    words[index[starts]] = np.bitwise_or.reduceat(masks, starts)
    return words


def shift_right(words: np.ndarray, bits: int) -> np.ndarray:
    """The packed array logically shifted right by ``bits`` (``>>``)."""
    if bits < 0:
        raise ValueError("shift must be non-negative")
    words = np.asarray(words, dtype=np.uint64)
    word_shift, bit_shift = divmod(bits, _WORD)
    if word_shift >= words.size:
        return np.zeros_like(words)
    shifted = np.zeros_like(words)
    shifted[: words.size - word_shift] = words[word_shift:]
    if bit_shift:
        carry = np.zeros_like(shifted)
        carry[:-1] = shifted[1:] << np.uint64(_WORD - bit_shift)
        shifted = (shifted >> np.uint64(bit_shift)) | carry
    return shifted


def word_and(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise AND of two packed arrays."""
    return np.asarray(a, dtype=np.uint64) & np.asarray(b, dtype=np.uint64)


def set_bit_positions(words: np.ndarray) -> np.ndarray:
    """Ascending set-bit positions of a packed array (bit 0 = LSB of word 0)."""
    words = np.asarray(words, dtype=np.uint64)
    nonzero = np.nonzero(words)[0]
    if nonzero.size == 0:
        return np.empty(0, dtype=np.int64)
    # Expand only the non-zero words into bits (bounded by 64x blowup of
    # the sparse part, not of the whole array).
    bytes_view = words[nonzero].view(np.uint8).reshape(nonzero.size, 8)
    bits = np.unpackbits(bytes_view, axis=1, bitorder="little")
    local = np.nonzero(bits)
    # np.nonzero on the 2D bit matrix is row-major — rows (words) ascend,
    # and within a row the little-endian bit columns ascend — so the
    # positions come out already sorted; no extra sort pass.
    return (nonzero[local[0]] * _WORD + local[1]).astype(np.int64)


def unpack_bits(words: np.ndarray, total_bits: int) -> np.ndarray:
    """Dense 0/1 expansion of the first ``total_bits`` bits, as ``uint8``.

    Entry ``e`` of the result is bit ``e`` of the packed array — the
    inverse of :func:`pack_positions` read densely.  One vectorised
    ``unpackbits`` pass; the count-only witness path builds its residue
    classes on top of this instead of decoding sparse positions.
    """
    if total_bits < 0:
        raise ValueError("total_bits must be non-negative")
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if total_bits > words.size * _WORD:
        raise ValueError("packed array holds fewer than total_bits bits")
    n_words = (total_bits + _WORD - 1) // _WORD
    bits = np.unpackbits(words[:n_words].view(np.uint8), bitorder="little")
    return bits[:total_bits]


def popcount(words: np.ndarray) -> int:
    """Total number of set bits, via a vectorised per-byte table lookup."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.size == 0:
        return 0
    return int(_BYTE_POPCOUNT[words.view(np.uint8)].sum())


def shifted_self_and(words: np.ndarray, bits: int) -> np.ndarray:
    """Witness positions of ``X & (X >> bits)`` — one exact component.

    This is the paper's modified-convolution component for a bit shift
    of ``bits``, computed entirely with vectorised word operations.
    """
    return set_bit_positions(word_and(words, shift_right(words, bits)))

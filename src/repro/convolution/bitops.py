"""Bit-parallel witness extraction over packed word arrays.

The exact miner's ``bitand`` engine evaluates the paper's convolution
component for shift ``p`` as ``X & (X >> sigma*p)`` on one huge Python
integer.  This module re-implements the same computation over a numpy
``uint64`` array, which scales the *faithful* algorithm to millions of
symbols: shifting a packed word array by ``b`` bits is two vectorised
shifts and an OR, and witness decoding is a vectorised bit scan.

Bit convention (matches :mod:`repro.core.convolution_miner`): bit ``e``
of the packed array — bit ``e % 64`` of word ``e // 64`` — equals entry
``total - 1 - e`` of the binary vector ``T'``, i.e. the series is read
as one big binary number whose most significant bit is position 0.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_positions",
    "shift_right",
    "word_and",
    "set_bit_positions",
    "shifted_self_and",
]

_WORD = 64


def pack_positions(positions: np.ndarray, total_bits: int) -> np.ndarray:
    """Pack set-bit positions into a little-endian ``uint64`` word array.

    Equivalent to :func:`repro.convolution.bigint.pack_bits` but returns
    the words instead of one Python integer.
    """
    positions = np.asarray(positions, dtype=np.int64)
    if positions.size and (positions.min() < 0 or positions.max() >= total_bits):
        raise ValueError("bit position out of range")
    words = np.zeros((total_bits + _WORD - 1) // _WORD, dtype=np.uint64)
    if positions.size:
        np.bitwise_or.at(
            words,
            positions // _WORD,
            np.uint64(1) << (positions % _WORD).astype(np.uint64),
        )
    return words


def shift_right(words: np.ndarray, bits: int) -> np.ndarray:
    """The packed array logically shifted right by ``bits`` (``>>``)."""
    if bits < 0:
        raise ValueError("shift must be non-negative")
    words = np.asarray(words, dtype=np.uint64)
    word_shift, bit_shift = divmod(bits, _WORD)
    if word_shift >= words.size:
        return np.zeros_like(words)
    shifted = np.zeros_like(words)
    shifted[: words.size - word_shift] = words[word_shift:]
    if bit_shift:
        carry = np.zeros_like(shifted)
        carry[:-1] = shifted[1:] << np.uint64(_WORD - bit_shift)
        shifted = (shifted >> np.uint64(bit_shift)) | carry
    return shifted


def word_and(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise AND of two packed arrays."""
    return np.asarray(a, dtype=np.uint64) & np.asarray(b, dtype=np.uint64)


def set_bit_positions(words: np.ndarray) -> np.ndarray:
    """Ascending set-bit positions of a packed array (bit 0 = LSB of word 0)."""
    words = np.asarray(words, dtype=np.uint64)
    nonzero = np.nonzero(words)[0]
    if nonzero.size == 0:
        return np.empty(0, dtype=np.int64)
    # Expand only the non-zero words into bits (bounded by 64x blowup of
    # the sparse part, not of the whole array).
    chunks = []
    bytes_view = words[nonzero].view(np.uint8).reshape(nonzero.size, 8)
    bits = np.unpackbits(bytes_view, axis=1, bitorder="little")
    local = np.nonzero(bits)
    chunks = nonzero[local[0]] * _WORD + local[1]
    return np.sort(chunks.astype(np.int64))


def shifted_self_and(words: np.ndarray, bits: int) -> np.ndarray:
    """Witness positions of ``X & (X >> bits)`` — one exact component.

    This is the paper's modified-convolution component for a bit shift
    of ``bits``, computed entirely with vectorised word operations.
    """
    return set_bit_positions(word_and(words, shift_right(words, bits)))

"""Exact big-integer convolution (Kronecker substitution) and bit tools.

The paper's modified convolution ``(x (*) y)_i = sum_j 2**j x_j y_{i-j}``
packs one *witness power of two per match* into each component, so the
components are Theta(n)-bit integers and must be computed exactly — a
floating-point FFT cannot carry them.  Two exact engines are provided:

* :func:`convolve_exact` / :func:`weighted_convolve_kronecker` — the
  whole convolution as **one big-integer multiplication** (Kronecker
  substitution: evaluate both polynomials at ``2**digit_bits`` and read
  the product's digits).  This preserves the paper's "one convolution"
  structure literally: Python's sub-quadratic big-int multiplication
  plays the role of the exact FFT.
* bitwise-AND component extraction (see
  :mod:`repro.core.convolution_miner`), which evaluates single
  components lazily; it rests on :func:`pack_bits` / :func:`bit_positions`
  from this module.

Both engines are cross-checked against the quadratic reference in
:mod:`repro.convolution.direct`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "pack_bits",
    "bit_positions",
    "convolve_exact",
    "weighted_convolve_kronecker",
    "weighted_convolution_witnesses",
]


def pack_bits(positions: Sequence[int] | np.ndarray, total_bits: int) -> int:
    """Build the integer whose set bits are exactly ``positions``.

    Bit ``e`` of the result is 1 iff ``e`` appears in ``positions``
    (LSB = bit 0).  Vectorised through ``numpy.packbits`` so building a
    multi-megabit integer costs one pass, not one shift per bit.
    """
    positions = np.asarray(positions, dtype=np.int64)
    if positions.size == 0:
        return 0
    if positions.min() < 0 or positions.max() >= total_bits:
        raise ValueError("bit position out of range")
    n_bytes = (total_bits + 7) // 8
    bits = np.zeros(n_bytes * 8, dtype=np.uint8)
    bits[positions] = 1
    packed = np.packbits(bits, bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


def bit_positions(value: int) -> np.ndarray:
    """Set-bit indices of a non-negative integer, ascending (LSB = 0).

    The inverse of :func:`pack_bits`; this is how the miner reads the
    witness powers ``W_p`` out of a convolution component.
    """
    if value < 0:
        raise ValueError("value must be non-negative")
    if value == 0:
        return np.empty(0, dtype=np.int64)
    raw = value.to_bytes((value.bit_length() + 7) // 8, "little")
    bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")
    return np.nonzero(bits)[0].astype(np.int64)


def _pack_radix(coeffs: Sequence[int], digit_bits: int) -> int:
    """Evaluate ``sum_j coeffs[j] * 2**(j*digit_bits)`` exactly."""
    value = 0
    for j in range(len(coeffs) - 1, -1, -1):
        value = (value << digit_bits) | int(coeffs[j])
    return value


def convolve_exact(x: Sequence[int], y: Sequence[int]) -> list[int]:
    """Exact full convolution of non-negative integer sequences.

    Kronecker substitution: with a digit width ``b`` exceeding the bit
    length of any convolution component, the digits of
    ``X(2**b) * Y(2**b)`` *are* the convolution — a single big-int
    multiplication replaces the n**2 coefficient products.
    """
    x = [int(v) for v in x]
    y = [int(v) for v in y]
    if not x or not y:
        raise ValueError("convolution inputs must be non-empty")
    if min(x) < 0 or min(y) < 0:
        raise ValueError("Kronecker convolution requires non-negative inputs")
    max_x = max(x)
    max_y = max(y)
    out_len = len(x) + len(y) - 1
    if max_x == 0 or max_y == 0:
        return [0] * out_len
    # Component bound: max_x * max_y * min(len(x), len(y)).
    bound = max_x * max_y * min(len(x), len(y))
    digit_bits = bound.bit_length() + 1
    product = _pack_radix(x, digit_bits) * _pack_radix(y, digit_bits)
    mask = (1 << digit_bits) - 1
    out = []
    for _ in range(out_len):
        out.append(product & mask)
        product >>= digit_bits
    return out


def weighted_convolve_kronecker(x: Sequence[int], y: Sequence[int]) -> list[int]:
    """The paper's modified convolution, exactly, as one multiplication.

    ``(x (*) y)_i = sum_j 2**j x_j y_{i-j}`` for ``i = 0 .. n-1`` equals
    the plain convolution of ``u`` and ``y`` with ``u_j = 2**j x_j``, so
    one Kronecker multiplication yields every component of the paper's
    Sect. 3.2 sequence at once.
    """
    x = [int(v) for v in x]
    y = [int(v) for v in y]
    if len(x) != len(y):
        raise ValueError("the paper's convolution is between equal-length sequences")
    u = [xj << j for j, xj in enumerate(x)]
    return convolve_exact(u, y)[: len(x)]


def weighted_convolution_witnesses(
    x: Sequence[int] | np.ndarray, y: Sequence[int] | np.ndarray
) -> list[np.ndarray]:
    """Witness powers of every modified-convolution component, fast.

    For **0/1 inputs** (the binary vectors of the mapping scheme) every
    term of ``(x (*) y)_i`` contributes a *distinct* power of two, so the
    component is carry-free and its set bits are exactly the witness set
    ``W_i`` of Sect. 3.2.  This function performs the single Kronecker
    multiplication and then reads all witness sets out of the product in
    one vectorised bit pass.

    Returns a list of ``n`` ascending ``int64`` arrays; entry ``i`` holds
    the powers ``w`` with ``2**w`` present in component ``i``.
    """
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    if x.size != y.size:
        raise ValueError("the paper's convolution is between equal-length sequences")
    bad = ((x != 0) & (x != 1)) | ((y != 0) & (y != 1))
    if bad.any():
        raise ValueError("witness extraction requires 0/1 sequences")
    n = int(x.size)
    digit_bits = n + 1  # components are sums of distinct 2**j, j < n
    x_pos = np.nonzero(x)[0]
    y_pos = np.nonzero(y)[0]
    total = (2 * n - 1) * digit_bits
    big_x = pack_bits(x_pos * digit_bits + x_pos, total)  # u_j = 2**j at digit j
    big_y = pack_bits(y_pos * digit_bits, total)
    product = big_x * big_y
    out: list[np.ndarray] = [np.empty(0, dtype=np.int64) for _ in range(n)]
    if product == 0:
        return out
    set_bits = bit_positions(product)
    digits = set_bits // digit_bits
    within = set_bits % digit_bits
    keep = digits < n  # the paper truncates the convolution to length n
    digits, within = digits[keep], within[keep]
    order = np.argsort(digits, kind="stable")
    digits, within = digits[order], within[order]
    boundaries = np.nonzero(np.diff(digits))[0] + 1
    groups = np.split(within, boundaries)
    uniq = digits[np.concatenate([[0], boundaries])] if digits.size else []
    out = [np.empty(0, dtype=np.int64) for _ in range(n)]
    for d, grp in zip(uniq, groups):
        out[int(d)] = np.sort(grp.astype(np.int64))
    return out

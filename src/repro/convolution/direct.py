"""Direct (quadratic) convolution and correlation reference kernels.

These are the semantic ground truth the faster engines in this package
are tested against.  All definitions follow Sect. 3.1 of the paper:

* plain convolution of two length-``n`` sequences,
  ``(x * y)_i = sum_{j=0..i} x_j y_{i-j}``, truncated to length ``n``;
* the paper's *modified* (weighted) convolution,
  ``(x (*) y)_i = sum_{j=0..i} 2**j x_j y_{i-j}``, computed exactly with
  Python integers;
* cross-correlation at every lag, which is what the reverse trick of the
  paper turns convolution into.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "convolve_direct",
    "convolve_full_direct",
    "weighted_convolve_direct",
    "correlate_direct",
]


def convolve_full_direct(x: Sequence[float], y: Sequence[float]) -> np.ndarray:
    """Full linear convolution (length ``len(x) + len(y) - 1``)."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size == 0 or y.size == 0:
        raise ValueError("convolution inputs must be non-empty")
    out = np.zeros(x.size + y.size - 1)
    for j, xj in enumerate(x):
        if xj:
            out[j : j + y.size] += xj * y
    return out


def convolve_direct(x: Sequence[float], y: Sequence[float]) -> np.ndarray:
    """The paper's equal-length convolution: full convolution cut to ``n``.

    Sect. 3.1 defines ``(x * y)_i`` only for ``i = 0 .. n-1``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ValueError("the paper's convolution is between equal-length sequences")
    return convolve_full_direct(x, y)[: x.size]


def weighted_convolve_direct(x: Sequence[int], y: Sequence[int]) -> list[int]:
    """Exact modified convolution ``(x (*) y)_i = sum_j 2**j x_j y_{i-j}``.

    Operates on Python integers so the power-of-two witnesses never lose
    precision; components can be ``Theta(n)``-bit numbers.
    """
    x = list(map(int, x))
    y = list(map(int, y))
    if len(x) != len(y):
        raise ValueError("the paper's convolution is between equal-length sequences")
    n = len(x)
    out = [0] * n
    for j, xj in enumerate(x):
        if xj:
            wj = xj << j  # 2**j * x_j
            for i in range(j, n):
                if y[i - j]:
                    out[i] += wj * y[i - j]
    return out


def correlate_direct(x: Sequence[float], y: Sequence[float]) -> np.ndarray:
    """Cross-correlation ``c_i = sum_j y_j x_{j+i}`` for lags ``0..n-1``.

    With ``y = x`` this counts, for 0/1 indicator inputs, the matches
    between the series and its ``i``-shifted self — the quantity the
    paper obtains by reversing one input of the convolution.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ValueError("correlation inputs must have equal length")
    n = x.size
    out = np.zeros(n)
    for i in range(n):
        out[i] = float(np.dot(y[: n - i], x[i:]))
    return out

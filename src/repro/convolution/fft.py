"""Fast Fourier transform built from scratch, plus FFT convolution.

The paper computes its convolution through the classic identity
``x * y = IFFT(FFT(x) . FFT(y))``.  This module provides:

* an iterative radix-2 Cooley-Tukey FFT (power-of-two sizes),
* Bluestein's chirp-z algorithm for arbitrary sizes,
* :func:`fft` / :func:`ifft` front doors selecting between the two,
* :func:`convolve_fft`, linear convolution via zero-padded FFTs.

Everything is vectorised with numpy but uses no ``numpy.fft`` routine,
so the transform itself is part of the reproduction.  The test suite
cross-validates against ``numpy.fft``; the performance-critical paths of
the miners use :func:`repro.convolution.fft.correlate_fft`, which can be
switched between this implementation and numpy's.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "fft",
    "ifft",
    "fft_pow2",
    "fft_bluestein",
    "next_pow2",
    "convolve_fft",
    "correlate_fft",
]


def next_pow2(n: int) -> int:
    """Smallest power of two ``>= n``."""
    if n < 1:
        raise ValueError("n must be positive")
    return 1 << (n - 1).bit_length()


def _bit_reverse_permutation(n: int) -> np.ndarray:
    """Indices in bit-reversed order for a power-of-two ``n``."""
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


def fft_pow2(x: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Iterative radix-2 Cooley-Tukey FFT; ``len(x)`` must be 2**k.

    The inverse variant omits the ``1/n`` normalisation (applied by
    :func:`ifft`).
    """
    x = np.asarray(x, dtype=np.complex128)
    n = x.size
    if n & (n - 1):
        raise ValueError(f"fft_pow2 requires a power-of-two size, got {n}")
    if n == 1:
        return x.copy()
    out = x[_bit_reverse_permutation(n)]
    sign = 1.0 if inverse else -1.0
    half = 1
    while half < n:
        step = half * 2
        twiddle = np.exp(sign * 2j * np.pi * np.arange(half) / step)
        blocks = out.reshape(-1, step)
        even = blocks[:, :half].copy()  # copy: the butterfly overwrites in place
        odd = blocks[:, half:] * twiddle
        blocks[:, :half] = even + odd
        blocks[:, half:] = even - odd
        half = step
    return out


def fft_bluestein(x: np.ndarray, inverse: bool = False) -> np.ndarray:
    """Bluestein chirp-z FFT for arbitrary sizes.

    Re-expresses the DFT as a convolution of chirp-modulated sequences,
    evaluated with the radix-2 transform at a padded power-of-two size.
    """
    x = np.asarray(x, dtype=np.complex128)
    n = x.size
    if n == 0:
        raise ValueError("cannot transform an empty sequence")
    sign = 1.0 if inverse else -1.0
    k = np.arange(n)
    chirp = np.exp(sign * 1j * np.pi * (k * k % (2 * n)) / n)
    m = next_pow2(2 * n - 1)
    a = np.zeros(m, dtype=np.complex128)
    a[:n] = x * chirp
    b = np.zeros(m, dtype=np.complex128)
    b[:n] = np.conj(chirp)
    b[m - n + 1 :] = np.conj(chirp[1:][::-1])
    conv = fft_pow2(fft_pow2(a) * fft_pow2(b), inverse=True) / m
    return conv[:n] * chirp


def fft(x: np.ndarray) -> np.ndarray:
    """Discrete Fourier transform of ``x`` (any size)."""
    x = np.asarray(x, dtype=np.complex128)
    if x.size and not (x.size & (x.size - 1)):
        return fft_pow2(x)
    return fft_bluestein(x)


def ifft(x: np.ndarray) -> np.ndarray:
    """Inverse DFT with the ``1/n`` normalisation."""
    x = np.asarray(x, dtype=np.complex128)
    if x.size and not (x.size & (x.size - 1)):
        return fft_pow2(x, inverse=True) / x.size
    return fft_bluestein(x, inverse=True) / x.size


def convolve_fft(
    x: np.ndarray, y: np.ndarray, use_numpy: bool = False
) -> np.ndarray:
    """Full linear convolution via zero-padded FFTs.

    Parameters
    ----------
    use_numpy:
        Use ``numpy.fft`` instead of the from-scratch transform.  The
        result is identical up to rounding; numpy's C transform is the
        production default of the miners, this module's transform is the
        reproduction reference.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size == 0 or y.size == 0:
        raise ValueError("convolution inputs must be non-empty")
    out_len = x.size + y.size - 1
    m = next_pow2(out_len)
    if use_numpy:
        fx = np.fft.rfft(x, m)
        fy = np.fft.rfft(y, m)
        conv = np.fft.irfft(fx * fy, m)
    else:
        xa = np.zeros(m, dtype=np.complex128)
        xa[: x.size] = x
        ya = np.zeros(m, dtype=np.complex128)
        ya[: y.size] = y
        conv = (fft_pow2(fft_pow2(xa) * fft_pow2(ya), inverse=True) / m).real
    return conv[:out_len]


def correlate_fft(
    x: np.ndarray, y: np.ndarray | None = None, use_numpy: bool = True
) -> np.ndarray:
    """Cross-correlation ``c_i = sum_j y_j x_{j+i}`` for lags ``0..n-1``.

    With ``y`` omitted this is the autocorrelation of ``x`` — the
    workhorse of the spectral miner and of every FFT-based baseline.
    Implemented as ``convolve(reverse(y), x)`` read off at the aligned
    lags, exactly the reverse trick of Sect. 3.1.
    """
    x = np.asarray(x, dtype=np.float64)
    y = x if y is None else np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ValueError("correlation inputs must have equal length")
    n = x.size
    conv = convolve_fft(y[::-1], x, use_numpy=use_numpy)
    return conv[n - 1 :]
